"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. on machines where ``pip install -e .`` is unavailable because the
``wheel`` package is missing).  When the package *is* installed this is a
harmless no-op: the installed path simply wins if it comes first.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "hotpath: hot-path performance smoke checks "
        "(also runnable via `python benchmarks/run_bench.py --smoke`)",
    )
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection suite exercising retries, breakers, "
        "deadlines and partial answers under deterministic failure schedules",
    )
    config.addinivalue_line(
        "markers",
        "soak: short deterministic variant of the sustained-load chaos soak "
        "(admission control, quotas, shedding, post-soak drain)",
    )
