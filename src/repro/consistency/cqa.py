"""Consistent query answering over key-violating federated sources.

Under primary-key constraints a dirty instance stands for the set of its
**repairs** — maximal consistent sub-instances keeping exactly one tuple per
conflict cluster (the tuples sharing a key value).  A *certain* answer is a
row produced by the query on **every** repair; a *possible* answer is one
produced on **at least one** (Arenas/Bertossi/Chomicki; Koutris & Wijsen show
the certain answers of many key-constrained queries are first-order
rewritable).

Two strategies implement the semantics exactly:

* **rewrite** — for self-join-free SELECT branches touching at most one
  key-constrained relation, joined to clean relations only through its key
  columns: the classical rewrite quantifies over each conflict cluster
  ("*every* tuple of some cluster satisfies the condition and projects to
  this row").  It executes as a *companion plan* on the ordinary pipeline
  (the original branch with the conjuncts over the dirty relation's non-key
  columns lifted out) followed by a streaming group-quantified filter — the
  ``NOT EXISTS`` of the textbook rewrite, evaluated as a grouped anti-join
  because the dialect pushes no correlated subqueries to sources.  Cost: one
  ordinary execution per branch, no repair enumeration.
* **fallback** — when the rewriting condition fails (self-joins, several
  dirty relations in one branch, a dirty relation shared by several UNION
  branches, aggregates, LIMIT, subqueries): bounded enumeration over the
  conflict clusters.  Every repair is evaluated with the local SQL processor
  over the fetched extents; certain = intersection, possible = union.  The
  enumeration refuses to exceed ``max_repairs`` (the definition is
  exponential; the bound keeps the fallback an explicit, observable cost).

Only :class:`~repro.consistency.constraints.PrimaryKey` constraints induce
repairs; functional-dependency, inclusion and denial constraints are scanned
(:mod:`repro.consistency.violations`) but do not define the repair space.
Certain/possible answers use set semantics, as in the CQA literature.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConsistencyError, PlanningError, RepairEnumerationError
from repro.consistency.constraints import PrimaryKey
from repro.engine.executor import EngineResult, ExecutionReport
from repro.relational.compile import ExpressionCompiler
from repro.relational.eval import expression_type
from repro.relational.query import QueryProcessor, _group_key as value_key, expand_star_items, output_names
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema
from repro.sql.ast import (
    ColumnRef,
    Exists,
    Literal,
    Select,
    SelectItem,
    Star,
    Subquery,
    TableRef,
    conjoin,
    conjuncts,
    is_aggregate_call,
    transform,
    walk,
)

#: Consistency modes accepted by ``Federation.query``/``prepare``.
CONSISTENCY_MODES = ("raw", "certain", "possible")

#: Default bound on enumerated repairs in the fallback strategy.
DEFAULT_MAX_REPAIRS = 512


def validate_mode(consistency: str) -> str:
    if consistency not in CONSISTENCY_MODES:
        raise ConsistencyError(
            f"unknown consistency mode {consistency!r}; expected one of "
            f"{', '.join(CONSISTENCY_MODES)}"
        )
    return consistency


@dataclass
class _BranchAnalysis:
    """Static structure of one branch, seen through the key constraints."""

    select: Select
    #: binding (lower-cased) -> relation name.
    bindings: Dict[str, str]
    #: Distinct key-constrained relations the branch reads (subqueries included).
    keyed_relations: Tuple[str, ...] = ()
    #: The single key-constrained FROM binding, or None when the branch is clean.
    keyed_binding: Optional[str] = None
    key: Optional[PrimaryKey] = None
    #: Why the branch cannot take the rewrite strategy (None = it can).
    ineligible: Optional[str] = None


class MaterializedStream:
    """A stream-shaped view over already-computed rows.

    Consistent answers are group- or repair-quantified, so they cannot leave
    before the quantification completes; this adapter lets ``stream=True``
    consumers (cursors, the chunked HTTP endpoint, the ODBC driver) drive
    them through the exact same fetch surface as a live
    :class:`~repro.engine.stream.ResultStream`.
    """

    def __init__(self, relation: Relation, report: ExecutionReport):
        self.schema = relation.schema
        self.report = report
        self._rows = list(relation.rows)
        self._position = 0
        self._closed = False
        self._callbacks: List[Callable[[ExecutionReport], None]] = []

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._rows)

    @property
    def closed(self) -> bool:
        return self._closed

    def __iter__(self) -> "MaterializedStream":
        return self

    def __next__(self) -> Row:
        if self.exhausted:
            self.close()
            raise StopIteration
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchone(self) -> Optional[Row]:
        try:
            return next(self)
        except StopIteration:
            return None

    def fetchmany(self, size: int = 1) -> List[Row]:
        rows = []
        for _ in range(max(0, size)):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> List[Row]:
        rows = self._rows[self._position:]
        self._position = len(self._rows)
        self.close()
        return rows

    def to_relation(self, name: Optional[str] = None) -> Relation:
        relation = Relation(self.schema, name=name)
        relation.rows = self.fetchall()
        return relation

    def on_close(self, callback: Callable[[ExecutionReport], None]) -> None:
        self._callbacks.append(callback)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self.report)


class ConsistentQueryExecutor:
    """Executes a compiled :class:`~repro.pipeline.MediatedPlan` under a
    consistency mode, choosing rewrite or fallback per statement."""

    def __init__(self, engine, max_repairs: int = DEFAULT_MAX_REPAIRS):
        self.engine = engine
        self.max_repairs = max(1, int(max_repairs))

    # -- public API --------------------------------------------------------------

    def execute(self, prepared, mode: str,
                force_strategy: Optional[str] = None,
                timeout_seconds: Optional[float] = None) -> EngineResult:
        """Answer ``prepared`` (a MediatedPlan) with certain/possible rows.

        ``force_strategy="fallback"`` bypasses strategy selection and always
        enumerates repairs — the brute-force evaluation of the definition,
        used by tests and benchmarks to verify the rewrite's exactness.
        ``timeout_seconds`` bounds the *whole* consistent answer: every
        sub-execution (companion plans, extent fetches) runs under one
        shared deadline.
        """
        validate_mode(mode)
        deadline = self.engine.controller.resilience.deadline(timeout_seconds)
        if mode == "raw":  # pragma: no cover - callers route raw elsewhere
            return self.engine.execute(prepared.plan, deadline=deadline)

        started = time.perf_counter()
        report = ExecutionReport()
        # CQA refuses partial answers (certainty cannot be quantified over a
        # degraded branch set), so the statement-level block is always "fail";
        # counters from every sub-execution fold in via _merge_subreport.
        report.resilience.mode = "fail"
        report.resilience.timeout_seconds = deadline.timeout_seconds
        branches = [branch.select for branch in prepared.plan.branches]
        analyses = [self._analyse(select) for select in branches]

        strategy = force_strategy or self._statement_strategy(analyses)
        if strategy == "clean":
            result = self.engine.execute(prepared.plan, deadline=deadline)
            self._merge_subreport(report, result.report)
            relation = self._dedup(result.relation)
            consistency: Dict[str, object] = {
                "mode": mode, "strategy": "clean",
                "constrained_relations": 0, "clusters": 0,
                "repairs_enumerated": 0, "rows_raw": len(relation),
                "tuples_dropped": 0,
            }
        elif strategy == "rewrite":
            relation, consistency = self._execute_rewrite(analyses, report, mode,
                                                          deadline)
        else:
            relation, consistency = self._execute_fallback(
                prepared.plan.statement, analyses, report, mode, deadline
            )

        consistency["mode"] = mode
        report.consistency = consistency
        report.result_rows = len(relation)
        report.elapsed_seconds = time.perf_counter() - started
        report.resilience.deadline_remaining_seconds = deadline.remaining()
        return EngineResult(relation=relation, plan=prepared.plan, report=report)

    # -- analysis ----------------------------------------------------------------

    def _analyse(self, select: Select) -> _BranchAnalysis:
        planner = self.engine.planner
        catalog = self.engine.catalog
        bindings = planner._bindings(select)
        analysis = _BranchAnalysis(select=select, bindings=bindings)

        # Key-constrained relations anywhere in the branch — subqueries
        # included, since repairs would change their results too.
        keyed_relations: List[str] = []
        for node in walk(select):
            if isinstance(node, TableRef) and catalog.has_relation(node.name):
                if (catalog.key_of(node.name) is not None
                        and node.name.lower() not in keyed_relations):
                    keyed_relations.append(node.name.lower())
        analysis.keyed_relations = tuple(keyed_relations)

        keyed = {
            binding: catalog.key_of(relation)
            for binding, relation in bindings.items()
            if catalog.key_of(relation) is not None
        }
        if len(keyed) == 1 and len(keyed_relations) == 1:
            analysis.keyed_binding, analysis.key = next(iter(keyed.items()))

        relations = [relation.lower() for relation in bindings.values()]
        if len(set(relations)) != len(relations):
            analysis.ineligible = "self-join over a catalogued relation"
        elif len(keyed_relations) > 1:
            analysis.ineligible = "several key-constrained relations in one branch"
        elif select.group_by or select.having is not None or any(
            is_aggregate_call(node) for node in walk(select)
        ):
            analysis.ineligible = "aggregation"
        elif select.limit is not None or select.offset is not None:
            analysis.ineligible = "LIMIT/OFFSET"
        elif any(isinstance(node, (Subquery, Exists)) for node in walk(select)):
            analysis.ineligible = "subquery"
        elif keyed:
            binding, key = next(iter(keyed.items()))
            key_columns = {column.lower() for column in key.columns}
            for condition in conjuncts(select.where):
                referenced = self._refs_by_binding(condition, analysis)
                if referenced is None:
                    analysis.ineligible = "unresolvable column reference"
                    break
                if len(referenced) > 1 and any(
                    column not in key_columns
                    for column in referenced.get(binding, set())
                ):
                    analysis.ineligible = (
                        "join through a non-key column of the dirty relation"
                    )
                    break
            # Select items face the same separability requirement: an item
            # mixing the dirty relation's non-key columns with another
            # binding's columns makes a projected value depend on (cluster
            # member × clean row) jointly, and per-group unanimity can no
            # longer see cross-group coincidences (a value certain through
            # *different* clean partners in different repairs).  Items over
            # the dirty key columns are cluster-constant and stay eligible.
            if analysis.ineligible is None:
                for item in select.items:
                    referenced = self._refs_by_binding(item.expr, analysis)
                    if referenced is None:
                        analysis.ineligible = "unresolvable column reference"
                        break
                    if len(referenced) > 1 and any(
                        column not in key_columns
                        for column in referenced.get(binding, set())
                    ):
                        analysis.ineligible = (
                            "select item mixes the dirty relation's non-key "
                            "columns with another relation"
                        )
                        break
            if analysis.ineligible is None and select.order_by:
                if self._order_keys(select) is None:
                    analysis.ineligible = "ORDER BY key outside the select list"
        return analysis

    def _refs_by_binding(self, condition, analysis: _BranchAnalysis,
                         ) -> Optional[Dict[str, Set[str]]]:
        """binding -> referenced column names (lower-cased) in ``condition``."""
        planner = self.engine.planner
        referenced: Dict[str, Set[str]] = {}
        for node in walk(condition):
            if isinstance(node, ColumnRef):
                try:
                    binding = planner._resolve_binding(node, analysis.bindings)
                except PlanningError:
                    return None
                if binding is not None:
                    referenced.setdefault(binding, set()).add(node.name.lower())
        return referenced

    @staticmethod
    def _statement_strategy(analyses: Sequence[_BranchAnalysis]) -> str:
        if all(not analysis.keyed_relations for analysis in analyses):
            # No involved relation carries a key constraint: repairs cannot
            # change the answer, so certain = possible = raw (as a set).
            return "clean"
        if any(analysis.ineligible is not None for analysis in analyses):
            return "fallback"
        # A dirty relation feeding several UNION branches defeats branch-local
        # reasoning: a row can be certain for the union while certain for no
        # single branch (its witness flips between branches across repairs).
        seen: Set[str] = set()
        for analysis in analyses:
            for relation in analysis.keyed_relations:
                if relation in seen:
                    return "fallback"
                seen.add(relation)
        return "rewrite"

    # -- the first-order rewrite ---------------------------------------------------

    def _execute_rewrite(self, analyses: Sequence[_BranchAnalysis],
                         report: ExecutionReport, mode: str,
                         deadline=None) -> Tuple[Relation, Dict[str, object]]:
        certain_rows: List[Row] = []
        possible_rows: List[Row] = []
        seen_certain: Set[Tuple] = set()
        seen_possible: Set[Tuple] = set()
        schema: Optional[Schema] = None
        clusters = 0
        constrained = 0

        for analysis in analyses:
            if analysis.keyed_binding is None:
                branch_schema, rows = self._execute_clean_branch(analysis, report,
                                                                 deadline)
                branch_certain = branch_possible = rows
                branch_clusters = 0
            else:
                constrained += 1
                branch_schema, branch_certain, branch_possible, branch_clusters = (
                    self._rewrite_branch(analysis, report, deadline)
                )
            if schema is None:
                schema = branch_schema
            clusters += branch_clusters
            for row in branch_certain:
                key = tuple(value_key(value) for value in row)
                if key not in seen_certain:
                    seen_certain.add(key)
                    certain_rows.append(row)
            for row in branch_possible:
                key = tuple(value_key(value) for value in row)
                if key not in seen_possible:
                    seen_possible.add(key)
                    possible_rows.append(row)

        rows = certain_rows if mode == "certain" else possible_rows
        if len(analyses) == 1 and analyses[0].select.order_by:
            rows = self._apply_order(analyses[0].select, rows)
        relation = Relation(schema if schema is not None else Schema([]))
        relation.rows = rows
        consistency = {
            "strategy": "rewrite",
            "constrained_relations": constrained,
            "clusters": clusters,
            "repairs_enumerated": 0,
            "rows_raw": len(possible_rows),
            "tuples_dropped": len(possible_rows) - len(certain_rows),
        }
        return relation, consistency

    def _execute_clean_branch(self, analysis: _BranchAnalysis,
                              report: ExecutionReport,
                              deadline=None) -> Tuple[Schema, List[Row]]:
        result = self.engine.execute(
            self.engine.planner.plan_branches([analysis.select]),
            deadline=deadline,
        )
        self._merge_subreport(report, result.report)
        return result.relation.schema, list(result.relation.rows)

    def _rewrite_branch(self, analysis: _BranchAnalysis, report: ExecutionReport,
                        deadline=None) -> Tuple[Schema, List[Row], List[Row], int]:
        """One keyed branch: companion plan + group-quantified certain filter.

        Returns (output schema, certain rows, raw/possible rows, conflict
        clusters touched by the query).
        """
        select = analysis.select
        planner = self.engine.planner
        bindings = analysis.bindings
        keyed_binding = analysis.keyed_binding
        key_columns = [column.lower() for column in analysis.key.columns]

        qualified = self._qualify(select, analysis)

        # Partition WHERE: conjuncts reading the dirty relation's non-key
        # columns are lifted (each cluster member must be checked against
        # them); everything else stays in the companion and is evaluated by
        # sources/joins exactly as in the raw plan.
        kept: List = []
        lifted: List = []
        for condition in conjuncts(qualified.where):
            referenced = self._refs_by_binding(condition, analysis) or {}
            if any(column not in key_columns
                   for column in referenced.get(keyed_binding, set())):
                lifted.append(condition)
            else:
                kept.append(condition)

        # Every column the branch reads, plus the dirty relation's key.
        needed: Dict[str, Set[str]] = {binding: set() for binding in bindings}

        def note(binding: str, column: str) -> None:
            needed[binding].add(column.lower())

        for column in analysis.key.columns:
            note(keyed_binding, column)
        for node in walk(qualified):
            if isinstance(node, ColumnRef) and node.table is not None:
                note(node.table.lower(), node.name)
            elif isinstance(node, Star):
                stars = (
                    [node.table.lower()] if node.table is not None
                    else list(bindings)
                )
                for binding in stars:
                    for name in self.engine.catalog.schema_of(bindings[binding]).names:
                        note(binding, name)

        # Companion columns in FROM order, each binding's in schema order, so
        # star expansion over the local schema matches the raw finalizer's.
        ordered: List[Tuple[str, str]] = [
            (binding, column)
            for binding in bindings
            for column in self.engine.catalog.schema_of(bindings[binding]).names
            if column.lower() in needed[binding]
        ]
        companion = Select(
            items=tuple(
                SelectItem(ColumnRef(name=column, table=binding))
                for binding, column in ordered
            ),
            tables=select.tables,
            where=conjoin(kept),
        )
        result = self.engine.execute(planner.plan_branches([companion]),
                                     deadline=deadline)
        self._merge_subreport(report, result.report)

        local_schema = Schema(
            Attribute(
                name=column,
                type=self.engine.catalog.schema_of(bindings[binding])
                .attribute(column).type,
                qualifier=binding,
            )
            for binding, column in ordered
        )
        compiler = ExpressionCompiler(local_schema)
        predicate = (
            compiler.predicate(conjoin(lifted)) if lifted else (lambda row: True)
        )
        items = expand_star_items(list(qualified.items), local_schema)
        project = compiler.projection([item.expr for item in items])
        output_schema = Schema(
            Attribute(name=name, type=expression_type(item.expr, local_schema))
            for name, item in zip(output_names(items), items)
        )

        # Group companion rows by (clean-side values, dirty key): each group
        # holds every cluster member joined against one clean combination.
        group_positions = [
            index for index, (binding, column) in enumerate(ordered)
            if binding != keyed_binding or column.lower() in key_columns
        ]
        groups: Dict[Tuple, List[Row]] = {}
        group_order: List[Tuple] = []
        dirty_positions = [
            index for index, (binding, _column) in enumerate(ordered)
            if binding == keyed_binding
        ]
        for row in result.relation.rows:
            group = tuple(value_key(row[position]) for position in group_positions)
            if group not in groups:
                groups[group] = []
                group_order.append(group)
            groups[group].append(row)

        certain: List[Row] = []
        possible: List[Row] = []
        seen_certain: Set[Tuple] = set()
        seen_possible: Set[Tuple] = set()
        clusters = 0
        for group in group_order:
            members = groups[group]
            variants = {
                tuple(value_key(row[position]) for position in dirty_positions)
                for row in members
            }
            if len(variants) > 1:
                clusters += 1
            survivors = [row for row in members if predicate(row) is True]
            for row in survivors:
                projected = project(row)
                key = tuple(value_key(value) for value in projected)
                if key not in seen_possible:
                    seen_possible.add(key)
                    possible.append(projected)
            if len(survivors) < len(members) or not members:
                continue
            projections = {
                tuple(value_key(value) for value in project(row))
                for row in members
            }
            if len(projections) == 1:
                projected = project(members[0])
                key = next(iter(projections))
                if key not in seen_certain:
                    seen_certain.add(key)
                    certain.append(projected)
        return output_schema, certain, possible, clusters

    # -- helpers shared by both strategies -------------------------------------------

    def _qualify(self, select: Select, analysis: _BranchAnalysis) -> Select:
        """Fully qualify column references against the branch's bindings, so
        local re-evaluation cannot hit cross-binding name ambiguity."""
        planner = self.engine.planner

        def fix(node):
            if isinstance(node, ColumnRef) and node.table is None:
                try:
                    binding = planner._resolve_binding(node, analysis.bindings)
                except PlanningError:
                    return node  # an output-alias reference (ORDER BY)
                if binding is not None:
                    return ColumnRef(name=node.name, table=binding)
            return node

        return transform(select, fix)

    def _order_keys(self, select: Select) -> Optional[List[Tuple[int, bool]]]:
        """ORDER BY keys as output positions, or None when any key needs the
        pre-projection context row (the rewrite then falls back)."""
        items = list(select.items)
        alias_positions: Dict[str, int] = {}
        for index, item in enumerate(items):
            if item.alias:
                alias_positions.setdefault(item.alias.lower(), index)
            elif isinstance(item.expr, ColumnRef):
                alias_positions.setdefault(item.expr.name.lower(), index)
        keys: List[Tuple[int, bool]] = []
        for order_item in select.order_by:
            expr = order_item.expr
            position: Optional[int] = None
            if isinstance(expr, ColumnRef) and expr.table is None:
                position = alias_positions.get(expr.name.lower())
            elif (isinstance(expr, Literal) and isinstance(expr.value, int)
                  and not isinstance(expr.value, bool)):
                if 1 <= expr.value <= len(items):
                    position = expr.value - 1
            elif expr in {item.expr: None for item in items}:
                for index, item in enumerate(items):
                    if item.expr == expr:
                        position = index
                        break
            if position is None:
                return None
            keys.append((position, order_item.ascending))
        return keys

    def _apply_order(self, select: Select, rows: List[Row]) -> List[Row]:
        from repro.relational.types import sort_key

        keys = self._order_keys(select)
        if keys is None:  # pragma: no cover - eligibility already checked
            return rows
        ordered = list(rows)
        for position, ascending in reversed(keys):
            ordered.sort(key=lambda row: sort_key(row[position]), reverse=not ascending)
        return ordered

    @staticmethod
    def _dedup(relation: Relation) -> Relation:
        seen: Set[Tuple] = set()
        result = Relation(relation.schema, name=relation.name)
        for row in relation.rows:
            key = tuple(value_key(value) for value in row)
            if key not in seen:
                seen.add(key)
                result.rows.append(row)
        return result

    @staticmethod
    def _merge_subreport(report: ExecutionReport, sub: ExecutionReport) -> None:
        """Fold a companion execution's trace into the statement report."""
        report.requests.extend(sub.requests)
        report.distinct_requests += sub.distinct_requests
        report.dedup_hits += sub.dedup_hits
        report.cache_hits += sub.cache_hits
        report.max_in_flight = max(report.max_in_flight, sub.max_in_flight)
        report.operator_stats.extend(sub.operator_stats)
        report.peak_memory_bytes = max(report.peak_memory_bytes, sub.peak_memory_bytes)
        report.spill_count += sub.spill_count
        report.spilled_rows += sub.spilled_rows
        report.spilled_bytes += sub.spilled_bytes
        report.staged_bytes += sub.staged_bytes
        report.resilience.attempts += sub.resilience.attempts
        report.resilience.retries += sub.resilience.retries
        report.resilience.failed_requests += sub.resilience.failed_requests
        report.resilience.breaker_trips += sub.resilience.breaker_trips
        report.resilience.breaker_rejections += sub.resilience.breaker_rejections
        report.resilience.degraded_branches.extend(sub.resilience.degraded_branches)

    # -- the repair-intersection fallback ----------------------------------------------

    def _execute_fallback(self, statement, analyses: Sequence[_BranchAnalysis],
                          report: ExecutionReport, mode: str,
                          deadline=None) -> Tuple[Relation, Dict[str, object]]:
        catalog = self.engine.catalog
        relations: List[str] = []
        for node in walk(statement):
            # Subqueries included: the repaired instance must cover every
            # relation the statement can read, not just the FROM bindings.
            if isinstance(node, TableRef) and catalog.has_relation(node.name):
                if node.name.lower() not in (name.lower() for name in relations):
                    relations.append(node.name)

        tables: Dict[str, Relation] = {}
        for relation in relations:
            tables[relation] = self._fetch_extent(relation, report, deadline)

        # A repair is a *set* of tuples, so every key-constrained relation
        # first collapses exact-duplicate rows (two identical tuples are the
        # same tuple twice) — uniformly, whether or not the relation also has
        # conflicting clusters.  Then the conflict clusters (distinct tuple
        # variants sharing a key) define the repair space.
        clusters: List[Tuple[str, List[Row]]] = []  # (relation, variants)
        cluster_count = 0
        repair_space = 1
        for relation in relations:
            key = catalog.key_of(relation)
            if key is None:
                continue
            extent = self._dedup(tables[relation])
            tables[relation] = extent
            positions = [extent.schema.index_of(column) for column in key.columns]
            by_key: Dict[Tuple, List[Row]] = {}
            order: List[Tuple] = []
            for row in extent.rows:
                cluster_key = tuple(value_key(row[position]) for position in positions)
                if cluster_key not in by_key:
                    by_key[cluster_key] = []
                    order.append(cluster_key)
                by_key[cluster_key].append(row)
            for cluster_key in order:
                variants = by_key[cluster_key]
                if len(variants) > 1:
                    cluster_count += 1
                    repair_space *= len(variants)
                    clusters.append((relation, variants))
                    if repair_space > self.max_repairs:
                        raise RepairEnumerationError(
                            f"the conflict clusters admit more than "
                            f"{self.max_repairs} repairs; narrow the query, "
                            "clean the sources, or raise max_repairs"
                        )

        processor_tables = dict(tables)
        raw_rows = QueryProcessor.over_tables(processor_tables).execute(statement)
        raw_set = {tuple(value_key(v) for v in row) for row in raw_rows.rows}
        schema = raw_rows.schema

        if not clusters:
            # No conflicts: the (duplicate-collapsed) instance is its own
            # unique repair, already evaluated as raw_rows.
            repairs = 1
            deduped = self._dedup(raw_rows)
            certain_rows: List[Row] = list(deduped.rows)
            certain_keys: Set[Tuple] = set(raw_set)
            possible_rows: List[Row] = list(deduped.rows)
        else:
            # Invariants of the enumeration, hoisted out of the repair loop:
            # which relations have conflicts, their full conflicted-row sets,
            # and which cluster indices belong to which relation.
            conflicted_relations: List[str] = []
            for relation, _variants in clusters:
                if relation not in conflicted_relations:
                    conflicted_relations.append(relation)
            conflicted_rows_of: Dict[str, Set[Tuple]] = {
                relation: {
                    tuple(value_key(v) for v in variant)
                    for cluster_relation, variants in clusters
                    if cluster_relation.lower() == relation.lower()
                    for variant in variants
                }
                for relation in conflicted_relations
            }
            cluster_indices_of: Dict[str, List[int]] = {
                relation: [
                    index for index, (cluster_relation, _variants) in enumerate(clusters)
                    if cluster_relation.lower() == relation.lower()
                ]
                for relation in conflicted_relations
            }

            certain_rows = []
            certain_keys = set()
            possible_rows = []
            possible_keys: Set[Tuple] = set()
            repairs = 0
            for choice in itertools.product(*(range(len(variants))
                                              for _relation, variants in clusters)):
                repairs += 1
                repaired = dict(processor_tables)
                for relation in conflicted_relations:
                    repaired[relation] = self._repair_relation(
                        tables[relation],
                        {
                            tuple(value_key(v) for v in clusters[index][1][choice[index]])
                            for index in cluster_indices_of[relation]
                        },
                        conflicted_rows_of[relation],
                    )
                result = QueryProcessor.over_tables(repaired).execute(statement)
                keys = [tuple(value_key(v) for v in row) for row in result.rows]
                key_set = set(keys)
                if repairs == 1:
                    certain_keys = key_set
                    seen: Set[Tuple] = set()
                    for row, key in zip(result.rows, keys):
                        if key not in seen:
                            seen.add(key)
                            certain_rows.append(row)
                    schema = result.schema
                else:
                    certain_keys &= key_set
                for row, key in zip(result.rows, keys):
                    if key not in possible_keys:
                        possible_keys.add(key)
                        possible_rows.append(row)
            certain_rows = [
                row for row in certain_rows
                if tuple(value_key(v) for v in row) in certain_keys
            ]

        rows = certain_rows if mode == "certain" else possible_rows
        relation = Relation(schema)
        relation.rows = list(rows)
        consistency = {
            "strategy": "fallback",
            "constrained_relations": len({r for r, _v in clusters}) if clusters else 0,
            "clusters": cluster_count,
            "repairs_enumerated": repairs,
            "rows_raw": len(raw_set),
            "tuples_dropped": len(raw_set) - len(certain_keys),
        }
        return relation, consistency

    def _fetch_extent(self, relation: str, report: ExecutionReport,
                      deadline=None) -> Relation:
        """Fetch one relation's full extent through the ordinary pipeline."""
        select = Select(items=(SelectItem(Star()),), tables=(TableRef(name=relation),))
        result = self.engine.execute(self.engine.planner.plan_branches([select]),
                                     deadline=deadline)
        self._merge_subreport(report, result.report)
        base_schema = self.engine.catalog.schema_of(relation)
        extent = Relation(
            Schema(
                Attribute(name=attribute.name, type=attribute.type, qualifier=None)
                for attribute in base_schema
            ),
            name=relation,
        )
        extent.rows = list(result.relation.rows)
        return extent

    @staticmethod
    def _repair_relation(extent: Relation, chosen_variants: Set[Tuple],
                         conflicted_rows: Set[Tuple]) -> Relation:
        """The (duplicate-collapsed) extent with each conflicted cluster
        reduced to its chosen tuple."""
        repaired = Relation(extent.schema, name=extent.name)
        for row in extent.rows:
            normalized = tuple(value_key(v) for v in row)
            if normalized in conflicted_rows and normalized not in chosen_variants:
                continue
            repaired.rows.append(row)
        return repaired
