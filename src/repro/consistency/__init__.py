"""Consistency subsystem: declarative integrity constraints, violation
scanning, and consistent query answering over dirty federated sources.

The COIN reproduction mediates *semantic* heterogeneity; this package handles
*instance-level* heterogeneity — autonomous sources whose data breaks the
keys, dependencies and referential rules the federation expects:

* :mod:`repro.consistency.constraints` — the constraint language (primary
  keys, functional dependencies, inclusion dependencies, datalog denial
  constraints), registered per relation in the engine's catalog;
* :mod:`repro.consistency.violations` — the budgeted violation scanner and
  its memoized :class:`~repro.consistency.violations.ViolationReport`;
* :mod:`repro.consistency.cqa` — certain/possible answers under key
  constraints: a first-order rewrite on the ordinary pipeline when the query
  shape allows it, bounded repair enumeration when it does not.

``Federation.query(..., consistency="certain" | "possible" | "raw")`` is the
front door; see the "Consistency and repairs" section of PERFORMANCE.md.
"""

from repro.consistency.constraints import (
    Constraint,
    ConstraintSet,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    PrimaryKey,
)
from repro.consistency.cqa import (
    CONSISTENCY_MODES,
    ConsistentQueryExecutor,
    MaterializedStream,
    validate_mode,
)
from repro.consistency.violations import (
    ConstraintFinding,
    ViolationReport,
    ViolationScanner,
)

__all__ = [
    "CONSISTENCY_MODES",
    "Constraint",
    "ConstraintFinding",
    "ConstraintSet",
    "ConsistentQueryExecutor",
    "DenialConstraint",
    "FunctionalDependency",
    "InclusionDependency",
    "MaterializedStream",
    "PrimaryKey",
    "ViolationReport",
    "ViolationScanner",
    "validate_mode",
]
