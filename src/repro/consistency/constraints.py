"""Declarative integrity constraints over federated source relations.

The COIN prototype mediates *semantic* conflicts; this module supplies the
vocabulary for *instance-level* dirtiness — the constraints the sources are
supposed to satisfy but, being autonomous, routinely do not:

* :class:`PrimaryKey` — at most one tuple per key value;
* :class:`FunctionalDependency` — determinant columns fix dependent columns;
* :class:`InclusionDependency` — referential integrity across (possibly
  cross-source) relations;
* :class:`DenialConstraint` — an arbitrary forbidden pattern expressed as the
  body of a datalog rule over relation predicates (negation-as-failure and
  the procedural builtins of :mod:`repro.datalog.builtins` are available),
  after Decker's rule-based integrity checking.

Constraints are *declared*, not enforced: sources stay autonomous.  They are
registered per relation in the engine's :class:`~repro.engine.catalog.Catalog`
(which versions them through its generation counter, so cached plans,
mediations and violation reports keyed on the generation can never consult a
stale constraint set), scanned by
:class:`~repro.consistency.violations.ViolationScanner`, and consumed by the
consistent-query-answering rewriter (:mod:`repro.consistency.cqa`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConstraintError
from repro.datalog.builtins import is_builtin
from repro.datalog.clause import Literal
from repro.datalog.terms import Variable
from repro.relational.schema import Schema


@dataclass(frozen=True)
class Constraint:
    """Base class: a named integrity condition over catalogued relations."""

    name: str

    #: Short identifier of the constraint family (filled by subclasses).
    kind = "constraint"

    @property
    def relations(self) -> Tuple[str, ...]:
        """Every relation whose instance this constraint reads."""
        raise NotImplementedError

    def validate(self, schema_of) -> None:
        """Check the constraint against catalog schemas.

        ``schema_of`` maps a relation name to its :class:`Schema`; raises
        :class:`ConstraintError` on unknown relations/columns or structural
        problems (e.g. an empty key).
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    @property
    def fingerprint(self) -> str:
        """A stable identity used in cache keys."""
        return f"{self.kind}:{self.name}:{self.describe()}"


def _require_columns(constraint: str, relation: str, schema: Schema,
                     columns: Sequence[str]) -> None:
    if not columns:
        raise ConstraintError(f"constraint {constraint!r} declares no columns")
    seen = set()
    for column in columns:
        if not schema.has(column):
            raise ConstraintError(
                f"constraint {constraint!r}: relation {relation!r} has no "
                f"column {column!r}"
            )
        lowered = column.lower()
        if lowered in seen:
            raise ConstraintError(
                f"constraint {constraint!r} lists column {column!r} twice"
            )
        seen.add(lowered)


@dataclass(frozen=True)
class PrimaryKey(Constraint):
    """``columns`` form a key of ``relation``: one tuple per key value."""

    relation: str = ""
    columns: Tuple[str, ...] = ()

    kind = "primary_key"

    @property
    def relations(self) -> Tuple[str, ...]:
        return (self.relation,)

    def validate(self, schema_of) -> None:
        _require_columns(self.name, self.relation, schema_of(self.relation), self.columns)

    def describe(self) -> str:
        return f"KEY {self.relation}({', '.join(self.columns)})"


@dataclass(frozen=True)
class FunctionalDependency(Constraint):
    """``determinants -> dependents`` must hold on ``relation``."""

    relation: str = ""
    determinants: Tuple[str, ...] = ()
    dependents: Tuple[str, ...] = ()

    kind = "functional_dependency"

    @property
    def relations(self) -> Tuple[str, ...]:
        return (self.relation,)

    def validate(self, schema_of) -> None:
        schema = schema_of(self.relation)
        _require_columns(self.name, self.relation, schema, self.determinants)
        _require_columns(self.name, self.relation, schema, self.dependents)
        overlap = {c.lower() for c in self.determinants} & {c.lower() for c in self.dependents}
        if overlap:
            raise ConstraintError(
                f"constraint {self.name!r}: columns {sorted(overlap)} appear on "
                "both sides of the dependency"
            )

    def describe(self) -> str:
        return (f"FD {self.relation}: {', '.join(self.determinants)} -> "
                f"{', '.join(self.dependents)}")


@dataclass(frozen=True)
class InclusionDependency(Constraint):
    """``relation[columns] ⊆ referenced[referenced_columns]`` (referential)."""

    relation: str = ""
    columns: Tuple[str, ...] = ()
    referenced_relation: str = ""
    referenced_columns: Tuple[str, ...] = ()

    kind = "inclusion"

    @property
    def relations(self) -> Tuple[str, ...]:
        return (self.relation, self.referenced_relation)

    def validate(self, schema_of) -> None:
        _require_columns(self.name, self.relation, schema_of(self.relation), self.columns)
        _require_columns(self.name, self.referenced_relation,
                         schema_of(self.referenced_relation), self.referenced_columns)
        if len(self.columns) != len(self.referenced_columns):
            raise ConstraintError(
                f"constraint {self.name!r}: {len(self.columns)} referencing "
                f"column(s) vs {len(self.referenced_columns)} referenced"
            )

    def describe(self) -> str:
        return (f"{self.relation}({', '.join(self.columns)}) IN "
                f"{self.referenced_relation}({', '.join(self.referenced_columns)})")


@dataclass(frozen=True)
class DenialConstraint(Constraint):
    """A forbidden conjunctive pattern, written as a datalog rule body.

    Each positive/negative literal over a predicate named like a catalogued
    relation ranges over that relation's tuples (arguments bind the columns
    in schema order); builtins (``lt``, ``ne``, ``eval``...) are evaluated
    procedurally.  A solution of the body *is* a violation; the terms listed
    in ``witness`` are reported per solution.
    """

    body: Tuple[Literal, ...] = ()
    witness: Tuple[Variable, ...] = ()

    kind = "denial"

    @property
    def relations(self) -> Tuple[str, ...]:
        names: List[str] = []
        for literal in self.body:
            atom = literal.atom
            if is_builtin(atom.predicate, atom.arity):
                continue
            if atom.predicate not in names:
                names.append(atom.predicate)
        return tuple(names)

    def validate(self, schema_of) -> None:
        if not self.body:
            raise ConstraintError(f"constraint {self.name!r} has an empty body")
        positive_relational = False
        bound = set()
        for literal in self.body:
            atom = literal.atom
            if literal.positive:
                # Positive literals (relational or builtin) are the only
                # binding occurrences; negation-as-failure binds nothing.
                bound.update(atom.variables())
            if is_builtin(atom.predicate, atom.arity):
                continue
            schema = schema_of(atom.predicate)
            if atom.arity != len(schema):
                raise ConstraintError(
                    f"constraint {self.name!r}: literal {atom.predicate}/{atom.arity} "
                    f"does not match relation arity {len(schema)}"
                )
            if literal.positive:
                positive_relational = True
        if not positive_relational:
            raise ConstraintError(
                f"constraint {self.name!r} needs at least one positive relation "
                "literal (negation-as-failure alone has no range)"
            )
        unbound = [variable for variable in self.witness if variable not in bound]
        if unbound:
            raise ConstraintError(
                f"constraint {self.name!r}: witness variable(s) "
                f"{', '.join(str(v) for v in unbound)} never occur in a "
                "positive body literal, so no solution can ground them"
            )

    def describe(self) -> str:
        return "DENY " + ", ".join(str(literal) for literal in self.body)


@dataclass
class ConstraintSet:
    """The per-catalog registry of declared constraints.

    Lives inside the :class:`~repro.engine.catalog.Catalog`; registration is
    validated against the catalogued schemas and bumps the catalog generation
    (the caller's job), which transitively invalidates cached plans, prepared
    statements and memoized violation reports.
    """

    _by_name: Dict[str, Constraint] = field(default_factory=dict)
    _by_relation: Dict[str, List[Constraint]] = field(default_factory=dict)

    def register(self, constraint: Constraint, schema_of) -> Constraint:
        if not constraint.name:
            raise ConstraintError("constraints must be named")
        key = constraint.name.lower()
        if key in self._by_name:
            raise ConstraintError(f"constraint {constraint.name!r} is already registered")
        constraint.validate(schema_of)
        self._by_name[key] = constraint
        for relation in constraint.relations:
            self._by_relation.setdefault(relation.lower(), []).append(constraint)
        return constraint

    def get(self, name: str) -> Constraint:
        try:
            return self._by_name[name.lower()]
        except KeyError as exc:
            raise ConstraintError(f"unknown constraint {name!r}") from exc

    def for_relation(self, relation: str) -> List[Constraint]:
        return list(self._by_relation.get(relation.lower(), []))

    def key_of(self, relation: str) -> Optional[PrimaryKey]:
        """The relation's primary key constraint, when exactly one is declared."""
        keys = [c for c in self.for_relation(relation) if isinstance(c, PrimaryKey)]
        if not keys:
            return None
        if len(keys) > 1:
            raise ConstraintError(
                f"relation {relation!r} declares {len(keys)} primary keys"
            )
        return keys[0]

    @property
    def all(self) -> List[Constraint]:
        return [self._by_name[key] for key in sorted(self._by_name)]

    @property
    def fingerprint(self) -> str:
        return "|".join(constraint.fingerprint for constraint in self.all)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self.all)
