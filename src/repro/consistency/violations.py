"""Scanning federated sources for integrity-constraint violations.

The :class:`ViolationScanner` compiles every declared constraint into
ordinary relational plans (built by the engine's planner, so capability-aware
push-down applies) and runs them through a dedicated
:class:`~repro.engine.executor.ExecutionController` **stream** under a
:class:`~repro.relational.budget.MemoryBudget` — a scan over a large dirty
source sorts/spills instead of materializing the extent:

* **primary keys / functional dependencies** — one ordered scan per
  constraint (``ORDER BY`` the determinant columns, executed by the budgeted
  streaming Sort); violations are detected in constant local memory on
  determinant-group boundaries;
* **inclusion dependencies** — a ``SELECT DISTINCT`` plan over the referenced
  side plus a streamed scan of the referencing side;
* **denial constraints** — the referenced extents are streamed into a
  transient datalog :class:`~repro.datalog.clause.KnowledgeBase` and the rule
  body is solved by SLD(NF) resolution; every solution is a violation.

The result is a structured :class:`ViolationReport` — per-constraint counts,
bounded sample witnesses, per-source attribution — memoized in a bounded LRU
keyed by the catalog generation: wrapper (re)registration, source
invalidation and constraint registration all bump the generation, so a stale
report is unreachable by key, exactly like cached plans.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConsistencyError
from repro.consistency.constraints import (
    Constraint,
    DenialConstraint,
    FunctionalDependency,
    InclusionDependency,
    PrimaryKey,
)
from repro.datalog.clause import KnowledgeBase, Rule, atom
from repro.datalog.engine import Resolver, ResolutionConfig
from repro.engine.executor import ExecutionController
from repro.relational.query import _group_key as value_key
from repro.relational.relation import Row
from repro.sql.ast import ColumnRef, OrderItem, Select, SelectItem, TableRef

#: Default cap on sample witnesses kept per constraint.
DEFAULT_MAX_WITNESSES = 5
#: Default cap on violations counted per denial constraint (resolution bound).
DEFAULT_MAX_DENIAL_SOLUTIONS = 10_000
#: Default bound on memoized reports.
DEFAULT_REPORT_CACHE_SIZE = 16


@dataclass
class ConstraintFinding:
    """What the scanner found for one constraint."""

    constraint: str
    kind: str
    description: str
    relation: str
    wrapper: str
    violations: int = 0
    #: Sample witnesses: column-name → value records of offending tuples
    #: (capped; ``violations`` is the full count).
    witnesses: List[Dict[str, object]] = field(default_factory=list)

    def snapshot(self) -> Dict[str, object]:
        return {
            "constraint": self.constraint,
            "kind": self.kind,
            "description": self.description,
            "relation": self.relation,
            "wrapper": self.wrapper,
            "violations": self.violations,
            "witnesses": list(self.witnesses),
        }


@dataclass
class ViolationReport:
    """Structured outcome of one scan over the declared constraints."""

    generation: int
    findings: List[ConstraintFinding] = field(default_factory=list)
    rows_scanned: int = 0
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    spill_count: int = 0

    @property
    def total_violations(self) -> int:
        return sum(finding.violations for finding in self.findings)

    @property
    def dirty(self) -> bool:
        return self.total_violations > 0

    def by_source(self) -> Dict[str, int]:
        """Violations attributed to the wrapper serving the violating tuples."""
        attribution: Dict[str, int] = {}
        for finding in self.findings:
            attribution[finding.wrapper] = (
                attribution.get(finding.wrapper, 0) + finding.violations
            )
        return attribution

    def for_constraint(self, name: str) -> ConstraintFinding:
        for finding in self.findings:
            if finding.constraint.lower() == name.lower():
                return finding
        raise ConsistencyError(f"no finding for constraint {name!r}")

    def snapshot(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "total_violations": self.total_violations,
            "rows_scanned": self.rows_scanned,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "peak_memory_bytes": self.peak_memory_bytes,
            "spill_count": self.spill_count,
            "by_source": self.by_source(),
            "findings": [finding.snapshot() for finding in self.findings],
        }


class ViolationScanner:
    """Compiles declared constraints into plans and scans for violations.

    ``memory_budget_bytes`` bounds the operator memory of every scan plan
    (the ordered scans spill instead of exceeding it); ``max_witnesses``
    caps the sample witnesses kept per constraint.  Reports are memoized in
    a bounded LRU keyed by (catalog generation, scanned relations).
    """

    def __init__(self, engine, memory_budget_bytes: Optional[int] = None,
                 max_witnesses: int = DEFAULT_MAX_WITNESSES,
                 max_denial_solutions: int = DEFAULT_MAX_DENIAL_SOLUTIONS,
                 report_cache_size: int = DEFAULT_REPORT_CACHE_SIZE):
        self.engine = engine
        self.max_witnesses = max(0, int(max_witnesses))
        self.max_denial_solutions = max(1, int(max_denial_solutions))
        # A private controller sharing the engine's catalog and request cache
        # (scans reuse memoized fetches and bank their own), but with its own
        # memory budget so scanning never competes with statements for RAM.
        self.controller = ExecutionController(
            engine.catalog,
            request_cache=engine.controller.request_cache,
            max_concurrent_requests=engine.controller.max_concurrent_requests,
            memory_budget_bytes=memory_budget_bytes,
            # Share the engine's resilience policy: scans hit the same
            # wrappers, so retries, breaker state and health statistics must
            # be one account, not a parallel book.
            resilience=engine.controller.resilience,
        )
        self._cache_size = max(0, int(report_cache_size))
        self._cache: "OrderedDict[tuple, ViolationReport]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- public API --------------------------------------------------------------

    def scan(self, relations: Optional[Sequence[str]] = None,
             use_cache: bool = True,
             timeout_seconds: Optional[float] = None) -> ViolationReport:
        """Scan the declared constraints (optionally only those reading the
        given relations) and return the memoized or fresh report.

        ``timeout_seconds`` bounds the *whole* scan: every constraint's
        source fetches and streamed evaluation run under one shared
        deadline (a cache hit returns immediately regardless)."""
        catalog = self.engine.catalog
        deadline = self.controller.resilience.deadline(timeout_seconds)
        constraints = self._select_constraints(relations)
        key = (
            catalog.generation,
            tuple(sorted(constraint.name.lower() for constraint in constraints)),
        )
        if use_cache:
            with self._cache_lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.cache_hits += 1
                    return cached
        with self._cache_lock:
            self.cache_misses += 1

        started = time.perf_counter()
        report = ViolationReport(generation=catalog.generation)
        for constraint in constraints:
            report.findings.append(self._scan_constraint(constraint, report,
                                                         deadline))
        report.elapsed_seconds = time.perf_counter() - started

        if use_cache and self._cache_size > 0:
            with self._cache_lock:
                self._cache[key] = report
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return report

    def snapshot(self) -> Dict[str, int]:
        with self._cache_lock:
            return {
                "cache_entries": len(self._cache),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
            }

    # -- plan construction --------------------------------------------------------

    def _select_constraints(self, relations: Optional[Sequence[str]]) -> List[Constraint]:
        constraints = self.engine.catalog.constraints.all
        if relations is None:
            return constraints
        wanted = {relation.lower() for relation in relations}
        return [
            constraint for constraint in constraints
            if wanted & {relation.lower() for relation in constraint.relations}
        ]

    def _scan_select(self, relation: str, columns: Sequence[str],
                     order_by: Sequence[str] = (), distinct: bool = False) -> Select:
        """An ordered projection scan of one relation, as a plain Select."""
        items = tuple(
            SelectItem(ColumnRef(name=column, table=relation)) for column in columns
        )
        return Select(
            items=items,
            tables=(TableRef(name=relation),),
            order_by=tuple(
                OrderItem(ColumnRef(name=column, table=relation)) for column in order_by
            ),
            distinct=distinct,
        )

    def _stream(self, select: Select, report: ViolationReport,
                deadline=None) -> Iterator[Row]:
        """Plan and stream one scan select under the scanner's budget."""
        plan = self.engine.planner.plan_branches([select])
        stream = self.controller.execute_stream(plan, deadline=deadline)
        try:
            for row in stream:
                report.rows_scanned += 1
                yield row
        finally:
            stream.close()
            report.peak_memory_bytes = max(
                report.peak_memory_bytes, stream.report.peak_memory_bytes
            )
            report.spill_count += stream.report.spill_count

    # -- per-family scans -----------------------------------------------------------

    def _scan_constraint(self, constraint: Constraint,
                         report: ViolationReport,
                         deadline=None) -> ConstraintFinding:
        if isinstance(constraint, PrimaryKey):
            return self._scan_dependency(
                constraint, report,
                determinants=constraint.columns,
                dependents=None,
                deadline=deadline,
            )
        if isinstance(constraint, FunctionalDependency):
            return self._scan_dependency(
                constraint, report,
                determinants=constraint.determinants,
                dependents=constraint.dependents,
                deadline=deadline,
            )
        if isinstance(constraint, InclusionDependency):
            return self._scan_inclusion(constraint, report, deadline)
        if isinstance(constraint, DenialConstraint):
            return self._scan_denial(constraint, report, deadline)
        raise ConsistencyError(
            f"no scan strategy for constraint kind {constraint.kind!r}"
        )

    def _finding(self, constraint: Constraint, relation: str) -> ConstraintFinding:
        entry = self.engine.catalog.entry(relation)
        return ConstraintFinding(
            constraint=constraint.name,
            kind=constraint.kind,
            description=constraint.describe(),
            relation=entry.relation,
            wrapper=entry.wrapper_name,
        )

    def _scan_dependency(self, constraint, report: ViolationReport,
                         determinants: Sequence[str],
                         dependents: Optional[Sequence[str]],
                         deadline=None) -> ConstraintFinding:
        """Ordered-scan detection for keys (dependents=None: any second tuple
        per key is a violation) and FDs (a second *distinct* dependent combo
        per determinant group is)."""
        relation = constraint.relation
        schema = self.engine.catalog.schema_of(relation)
        columns = list(schema.names)
        select = self._scan_select(relation, columns, order_by=determinants)
        finding = self._finding(constraint, relation)

        positions = [
            next(i for i, name in enumerate(columns) if name.lower() == column.lower())
            for column in determinants
        ]
        dependent_positions = None
        if dependents is not None:
            dependent_positions = [
                next(i for i, name in enumerate(columns) if name.lower() == column.lower())
                for column in dependents
            ]

        current_key: Optional[Tuple] = None
        group_first: Optional[Row] = None
        seen_dependents: set = set()
        for row in self._stream(select, report, deadline):
            key = tuple(value_key(row[position]) for position in positions)
            if key != current_key:
                current_key = key
                group_first = row
                seen_dependents = (
                    {tuple(value_key(row[p]) for p in dependent_positions)}
                    if dependent_positions is not None else set()
                )
                continue
            if dependent_positions is None:
                # Key constraint: every tuple after the first in its group.
                self._record(finding, columns, row, first=group_first)
            else:
                combo = tuple(value_key(row[p]) for p in dependent_positions)
                if combo not in seen_dependents:
                    seen_dependents.add(combo)
                    self._record(finding, columns, row, first=group_first)
        return finding

    def _scan_inclusion(self, constraint: InclusionDependency,
                        report: ViolationReport,
                        deadline=None) -> ConstraintFinding:
        finding = self._finding(constraint, constraint.relation)
        referenced = self._scan_select(
            constraint.referenced_relation, constraint.referenced_columns,
            distinct=True,
        )
        known = {
            tuple(value_key(value) for value in row)
            for row in self._stream(referenced, report, deadline)
        }
        referencing = self._scan_select(constraint.relation, constraint.columns)
        for row in self._stream(referencing, report, deadline):
            if any(value is None for value in row):
                continue  # SQL FK semantics: NULL references match vacuously
            if tuple(value_key(value) for value in row) not in known:
                self._record(finding, list(constraint.columns), row)
        return finding

    def _scan_denial(self, constraint: DenialConstraint,
                     report: ViolationReport,
                     deadline=None) -> ConstraintFinding:
        primary = constraint.relations[0]
        finding = self._finding(constraint, primary)
        kb = KnowledgeBase(name=f"denial:{constraint.name}")
        for relation in constraint.relations:
            schema = self.engine.catalog.schema_of(relation)
            select = self._scan_select(relation, list(schema.names))
            for row in self._stream(select, report, deadline):
                kb.add(Rule(atom(relation, *row), ()))
        resolver = Resolver(kb, ResolutionConfig(max_solutions=self.max_denial_solutions))
        for solution in resolver.solve(list(constraint.body)):
            finding.violations += 1
            if len(finding.witnesses) < self.max_witnesses:
                finding.witnesses.append({
                    str(variable): solution.value(variable)
                    for variable in constraint.witness
                })
        return finding

    # -- bookkeeping -----------------------------------------------------------------

    def _record(self, finding: ConstraintFinding, columns: Sequence[str], row: Row,
                first: Optional[Row] = None) -> None:
        finding.violations += 1
        if len(finding.witnesses) >= self.max_witnesses:
            return
        witness: Dict[str, object] = dict(zip(columns, row))
        if first is not None and first is not row:
            witness["conflicts_with"] = dict(zip(columns, first))
        finding.witnesses.append(witness)
