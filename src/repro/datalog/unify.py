"""Substitutions and unification.

A substitution is an immutable-by-convention dict mapping variables to terms.
``unify`` extends a substitution so two terms become equal, or returns None
when they cannot.  The occurs check is performed: the knowledge bases built by
the mediation layer are small, so the safety is worth the cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.datalog.terms import Compound, Constant, Term, Variable

Substitution = Dict[Variable, Term]


def walk(term: Term, substitution: Substitution) -> Term:
    """Follow variable bindings until reaching a non-variable or unbound variable."""
    while isinstance(term, Variable) and term in substitution:
        term = substitution[term]
    return term


def apply(term: Term, substitution: Substitution) -> Term:
    """Apply a substitution throughout a term."""
    term = walk(term, substitution)
    if isinstance(term, Compound):
        return Compound(term.functor, tuple(apply(arg, substitution) for arg in term.args))
    return term


def occurs_in(variable: Variable, term: Term, substitution: Substitution) -> bool:
    """True when ``variable`` occurs in ``term`` under the substitution."""
    term = walk(term, substitution)
    if term == variable:
        return True
    if isinstance(term, Compound):
        return any(occurs_in(variable, arg, substitution) for arg in term.args)
    return False


def unify(left: Term, right: Term, substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two terms, returning an extended substitution or None.

    The input substitution is never mutated; a new dict is returned on
    success.
    """
    if substitution is None:
        substitution = {}
    left = walk(left, substitution)
    right = walk(right, substitution)

    if isinstance(left, Variable) and isinstance(right, Variable) and left == right:
        return substitution
    if isinstance(left, Variable):
        if occurs_in(left, right, substitution):
            return None
        extended = dict(substitution)
        extended[left] = right
        return extended
    if isinstance(right, Variable):
        return unify(right, left, substitution)

    if isinstance(left, Constant) and isinstance(right, Constant):
        return substitution if _constants_equal(left.value, right.value) else None

    if isinstance(left, Compound) and isinstance(right, Compound):
        if left.functor != right.functor or left.arity != right.arity:
            return None
        current: Optional[Substitution] = substitution
        for left_arg, right_arg in zip(left.args, right.args):
            current = unify(left_arg, right_arg, current)
            if current is None:
                return None
        return current

    return None


def unify_sequences(lefts: Sequence[Term], rights: Sequence[Term],
                    substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two equal-length sequences of terms element-wise."""
    if len(lefts) != len(rights):
        return None
    current: Optional[Substitution] = dict(substitution) if substitution else {}
    for left, right in zip(lefts, rights):
        current = unify(left, right, current)
        if current is None:
            return None
    return current


def _constants_equal(left, right) -> bool:
    """Constant equality with numeric coercion but no bool/int confusion."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def compose(outer: Substitution, inner: Substitution) -> Substitution:
    """Compose substitutions: applying the result equals applying inner then outer."""
    composed: Substitution = {
        variable: apply(term, outer) for variable, term in inner.items()
    }
    for variable, term in outer.items():
        composed.setdefault(variable, term)
    return composed
