"""Atoms, rules and knowledge bases for the deductive substrate.

The :class:`KnowledgeBase` maintains two access structures beyond the plain
predicate-indicator index, both standard levers of deductive-database engines:

* a **first-argument index** per indicator — clauses whose head's first
  argument is a ground constant are bucketed by (a normalized form of) that
  constant, so a goal with a bound first argument only visits clauses that
  can possibly unify;
* a **ground-fact dictionary** per indicator — while *every* clause of an
  indicator is a ground fact (the overwhelmingly common case for elevated
  source data), facts are additionally keyed by their full argument tuple,
  letting fully-ground goals resolve by dictionary lookup instead of a scan.

Both structures preserve program order (solutions come out in the same order
a linear scan would produce) and key normalization mirrors the unifier's
constant equality (numeric coercion, booleans distinct from numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DatalogError
from repro.datalog.terms import Compound, Constant, Term, Variable, lift, rename_term, variables_of
from repro.datalog.unify import Substitution
from repro.datalog.unify import apply as _apply_binding
from repro.datalog.unify import walk as _walk_binding


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, e.g. ``attr(Object, currency, Value)``."""

    predicate: str
    args: Tuple[Term, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator ``(name, arity)`` used for clause lookup."""
        return (self.predicate, self.arity)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from variables_of(arg)

    def rename(self, mapping: Dict[Variable, Variable]) -> "Atom":
        return Atom(self.predicate, tuple(rename_term(arg, mapping) for arg in self.args))

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(arg) for arg in self.args)})"


def atom(predicate: str, *args) -> Atom:
    """Build an atom, lifting raw Python values to constants."""
    return Atom(predicate, tuple(lift(arg) for arg in args))


@dataclass(frozen=True)
class Literal:
    """An atom with a sign.  Negative literals use negation-as-failure."""

    atom: Atom
    positive: bool = True

    def rename(self, mapping: Dict[Variable, Variable]) -> "Literal":
        return Literal(self.atom.rename(mapping), self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


def pos(literal_atom: Atom) -> Literal:
    return Literal(literal_atom, True)


def neg(literal_atom: Atom) -> Literal:
    return Literal(literal_atom, False)


@dataclass(frozen=True)
class Rule:
    """A Horn clause ``head :- body``.  A fact is a rule with an empty body."""

    head: Atom
    body: Tuple[Literal, ...] = ()
    #: Optional label recording where the rule came from (context name,
    #: elevation axiom, conversion function...); used by explanations.
    label: Optional[str] = None

    @property
    def is_fact(self) -> bool:
        return not self.body

    def rename_apart(self) -> "Rule":
        """Return a copy with all variables renamed to fresh ones."""
        mapping: Dict[Variable, Variable] = {}
        head = self.head.rename(mapping)
        body = tuple(literal.rename(mapping) for literal in self.body)
        return Rule(head, body, self.label)

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body_text = ", ".join(str(literal) for literal in self.body)
        return f"{self.head} :- {body_text}."


def rule(head: Atom, body: Sequence = (), label: Optional[str] = None) -> Rule:
    """Build a rule; body entries may be atoms (taken as positive) or literals."""
    literals: List[Literal] = []
    for entry in body:
        if isinstance(entry, Literal):
            literals.append(entry)
        elif isinstance(entry, Atom):
            literals.append(Literal(entry, True))
        else:
            raise DatalogError(f"invalid body element {entry!r}")
    return Rule(head, tuple(literals), label)


def fact(predicate: str, *args, label: Optional[str] = None) -> Rule:
    """Build a ground fact."""
    return Rule(atom(predicate, *args), (), label)


class _Unindexable(Exception):
    """Raised when a term has no hashable index key."""


def _constant_key(value) -> Tuple:
    """A hashable key matching the unifier's constant equality: numbers
    coerce (1 == 1.0), booleans stay distinct from numbers.

    Only bool/int/float/str/None constants are indexable.  Anything exotic
    (``Decimal``, user objects...) falls back to ``_constants_equal``'s
    ``==``, whose cross-type behaviour no bucket key can mirror — those
    clauses and goals stay on the linear-scan path."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    if isinstance(value, str) or value is None:
        return ("s", value)
    raise _Unindexable


def _term_key(term: Term) -> Tuple:
    """A hashable key for a *ground* term; raises :class:`_Unindexable` for
    variables, non-ground compounds and non-indexable constants."""
    if isinstance(term, Constant):
        return _constant_key(term.value)
    if isinstance(term, Compound):
        return ("c", term.functor, tuple(_term_key(arg) for arg in term.args))
    raise _Unindexable


def _rule_is_ground(rule: Rule) -> bool:
    """True when the rule contains no variables (standardizing apart is a no-op)."""
    for _variable in rule.head.variables():
        return False
    for literal in rule.body:
        for _variable in literal.atom.variables():
            return False
    return True


#: One clause as stored in the index: (sequence number, rule, is_ground).
_Entry = Tuple[int, Rule, bool]


class _PredicateIndex:
    """Per-indicator clause store with first-argument and ground-fact access."""

    __slots__ = ("entries", "by_first_arg", "catch_all", "fact_buckets")

    def __init__(self) -> None:
        self.entries: List[_Entry] = []
        #: first-arg key -> entries whose head starts with that ground term.
        self.by_first_arg: Dict[Tuple, List[_Entry]] = {}
        #: entries whose first argument is not an indexable ground term
        #: (variables, non-ground compounds, 0-arity heads).
        self.catch_all: List[_Entry] = []
        #: full-argument-tuple -> entries; kept only while *every* clause of
        #: the indicator is a ground fact, None once that stops holding.
        self.fact_buckets: Optional[Dict[Tuple, List[_Entry]]] = {}

    def add(self, seq: int, rule: Rule) -> None:
        entry = (seq, rule, _rule_is_ground(rule))
        self.entries.append(entry)

        if rule.head.args:
            try:
                first_key = _term_key(rule.head.args[0])
            except _Unindexable:
                first_key = None
        else:
            first_key = None
        if first_key is None:
            self.catch_all.append(entry)
        else:
            self.by_first_arg.setdefault(first_key, []).append(entry)

        if self.fact_buckets is not None:
            if rule.is_fact:
                try:
                    fact_key = tuple(_term_key(arg) for arg in rule.head.args)
                except _Unindexable:
                    self.fact_buckets = None
                else:
                    self.fact_buckets.setdefault(fact_key, []).append(entry)
            else:
                self.fact_buckets = None

    def candidates(self, first_key: Optional[Tuple]) -> List[_Entry]:
        """Entries that may match a goal whose first argument has the given
        key (None = unknown/unbound), in program order."""
        if first_key is None:
            return self.entries
        indexed = self.by_first_arg.get(first_key)
        if not indexed:
            return self.catch_all
        if not self.catch_all:
            return indexed
        # Merge the two seq-sorted runs to preserve program order.
        merged: List[_Entry] = []
        i = j = 0
        while i < len(indexed) and j < len(self.catch_all):
            if indexed[i][0] < self.catch_all[j][0]:
                merged.append(indexed[i])
                i += 1
            else:
                merged.append(self.catch_all[j])
                j += 1
        merged.extend(indexed[i:])
        merged.extend(self.catch_all[j:])
        return merged


class KnowledgeBase:
    """A collection of rules indexed by predicate indicator.

    Knowledge bases are composable: the mediator assembles one per mediation
    session by combining the domain model, the elevation axioms of the sources
    in the query, the context theories of the sources and the receiver, and
    the conversion-function rules.
    """

    def __init__(self, rules: Iterable[Rule] = (), name: str = "kb"):
        self.name = name
        self._rules: Dict[Tuple[str, int], List[Rule]] = {}
        self._index: Dict[Tuple[str, int], _PredicateIndex] = {}
        self._all: List[Rule] = []
        for entry in rules:
            self.add(entry)

    # -- mutation -----------------------------------------------------------

    def add(self, new_rule: Rule) -> None:
        indicator = new_rule.head.indicator
        self._rules.setdefault(indicator, []).append(new_rule)
        self._index.setdefault(indicator, _PredicateIndex()).add(len(self._all), new_rule)
        self._all.append(new_rule)

    def add_fact(self, predicate: str, *args, label: Optional[str] = None) -> None:
        self.add(fact(predicate, *args, label=label))

    def extend(self, rules: Iterable[Rule]) -> None:
        for entry in rules:
            self.add(entry)

    def merge(self, other: "KnowledgeBase") -> "KnowledgeBase":
        """Return a new knowledge base containing the rules of both."""
        merged = KnowledgeBase(name=f"{self.name}+{other.name}")
        merged.extend(self._all)
        merged.extend(other._all)
        return merged

    # -- queries ------------------------------------------------------------

    def rules_for(self, predicate: str, arity: int) -> List[Rule]:
        return self._rules.get((predicate, arity), [])

    def goal_entries(self, goal: Atom,
                     substitution: Optional[Substitution] = None) -> Sequence[_Entry]:
        """Raw ``(seq, rule, is_ground)`` entries that may resolve ``goal``,
        in program order.  Returns stored lists without copying — callers
        must treat the result as read-only.  This is the resolver's hot path.
        """
        index = self._index.get(goal.indicator)
        if index is None:
            return ()
        return index.candidates(self._goal_first_key(goal, substitution))

    def match_goal(self, goal: Atom,
                   substitution: Optional[Substitution] = None) -> List[Tuple[Rule, bool]]:
        """Clauses that may resolve ``goal`` under ``substitution``, in program
        order, each paired with a flag telling whether the clause is ground
        (ground clauses need no standardizing apart).

        When the goal's first argument is bound to a ground term, only the
        clauses whose head can possibly unify with it are returned.
        """
        return [
            (entry_rule, entry_ground)
            for _seq, entry_rule, entry_ground in self.goal_entries(goal, substitution)
        ]

    def facts_matching(self, goal: Atom,
                       substitution: Optional[Substitution] = None) -> Optional[List[Rule]]:
        """Dictionary lookup for a fully-ground goal against an all-facts
        predicate.

        Returns the matching fact rules (possibly an empty list — definite
        failure), or None when the fast path does not apply: the predicate
        also has proper rules or non-indexable facts, or the goal is not
        ground under ``substitution``.
        """
        index = self._index.get(goal.indicator)
        if index is None or index.fact_buckets is None:
            return None
        keys = []
        for arg in goal.args:
            if substitution:
                arg = _walk_binding(arg, substitution)
                if isinstance(arg, Compound):
                    arg = _apply_binding(arg, substitution)
            if isinstance(arg, Variable):
                return None
            try:
                keys.append(_term_key(arg))
            except _Unindexable:
                return None
        return [
            entry_rule
            for _seq, entry_rule, _ground in index.fact_buckets.get(tuple(keys), ())
        ]

    @staticmethod
    def _goal_first_key(goal: Atom, substitution: Optional[Substitution]) -> Optional[Tuple]:
        if not goal.args:
            return None
        arg = goal.args[0]
        if substitution:
            arg = _walk_binding(arg, substitution)
            if isinstance(arg, Compound):
                arg = _apply_binding(arg, substitution)
        if isinstance(arg, Variable):
            return None
        try:
            return _term_key(arg)
        except _Unindexable:
            return None

    def defines(self, predicate: str, arity: int) -> bool:
        return (predicate, arity) in self._rules

    @property
    def rules(self) -> List[Rule]:
        return list(self._all)

    @property
    def predicates(self) -> List[Tuple[str, int]]:
        return sorted(self._rules)

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._all)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(str(entry) for entry in self._all)
