"""Atoms, rules and knowledge bases for the deductive substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DatalogError
from repro.datalog.terms import Compound, Constant, Term, Variable, lift, rename_term, variables_of


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, e.g. ``attr(Object, currency, Value)``."""

    predicate: str
    args: Tuple[Term, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator ``(name, arity)`` used for clause lookup."""
        return (self.predicate, self.arity)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from variables_of(arg)

    def rename(self, mapping: Dict[Variable, Variable]) -> "Atom":
        return Atom(self.predicate, tuple(rename_term(arg, mapping) for arg in self.args))

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(arg) for arg in self.args)})"


def atom(predicate: str, *args) -> Atom:
    """Build an atom, lifting raw Python values to constants."""
    return Atom(predicate, tuple(lift(arg) for arg in args))


@dataclass(frozen=True)
class Literal:
    """An atom with a sign.  Negative literals use negation-as-failure."""

    atom: Atom
    positive: bool = True

    def rename(self, mapping: Dict[Variable, Variable]) -> "Literal":
        return Literal(self.atom.rename(mapping), self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


def pos(literal_atom: Atom) -> Literal:
    return Literal(literal_atom, True)


def neg(literal_atom: Atom) -> Literal:
    return Literal(literal_atom, False)


@dataclass(frozen=True)
class Rule:
    """A Horn clause ``head :- body``.  A fact is a rule with an empty body."""

    head: Atom
    body: Tuple[Literal, ...] = ()
    #: Optional label recording where the rule came from (context name,
    #: elevation axiom, conversion function...); used by explanations.
    label: Optional[str] = None

    @property
    def is_fact(self) -> bool:
        return not self.body

    def rename_apart(self) -> "Rule":
        """Return a copy with all variables renamed to fresh ones."""
        mapping: Dict[Variable, Variable] = {}
        head = self.head.rename(mapping)
        body = tuple(literal.rename(mapping) for literal in self.body)
        return Rule(head, body, self.label)

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body_text = ", ".join(str(literal) for literal in self.body)
        return f"{self.head} :- {body_text}."


def rule(head: Atom, body: Sequence = (), label: Optional[str] = None) -> Rule:
    """Build a rule; body entries may be atoms (taken as positive) or literals."""
    literals: List[Literal] = []
    for entry in body:
        if isinstance(entry, Literal):
            literals.append(entry)
        elif isinstance(entry, Atom):
            literals.append(Literal(entry, True))
        else:
            raise DatalogError(f"invalid body element {entry!r}")
    return Rule(head, tuple(literals), label)


def fact(predicate: str, *args, label: Optional[str] = None) -> Rule:
    """Build a ground fact."""
    return Rule(atom(predicate, *args), (), label)


class KnowledgeBase:
    """A collection of rules indexed by predicate indicator.

    Knowledge bases are composable: the mediator assembles one per mediation
    session by combining the domain model, the elevation axioms of the sources
    in the query, the context theories of the sources and the receiver, and
    the conversion-function rules.
    """

    def __init__(self, rules: Iterable[Rule] = (), name: str = "kb"):
        self.name = name
        self._rules: Dict[Tuple[str, int], List[Rule]] = {}
        self._all: List[Rule] = []
        for entry in rules:
            self.add(entry)

    # -- mutation -----------------------------------------------------------

    def add(self, new_rule: Rule) -> None:
        self._rules.setdefault(new_rule.head.indicator, []).append(new_rule)
        self._all.append(new_rule)

    def add_fact(self, predicate: str, *args, label: Optional[str] = None) -> None:
        self.add(fact(predicate, *args, label=label))

    def extend(self, rules: Iterable[Rule]) -> None:
        for entry in rules:
            self.add(entry)

    def merge(self, other: "KnowledgeBase") -> "KnowledgeBase":
        """Return a new knowledge base containing the rules of both."""
        merged = KnowledgeBase(name=f"{self.name}+{other.name}")
        merged.extend(self._all)
        merged.extend(other._all)
        return merged

    # -- queries ------------------------------------------------------------

    def rules_for(self, predicate: str, arity: int) -> List[Rule]:
        return self._rules.get((predicate, arity), [])

    def defines(self, predicate: str, arity: int) -> bool:
        return (predicate, arity) in self._rules

    @property
    def rules(self) -> List[Rule]:
        return list(self._all)

    @property
    def predicates(self) -> List[Tuple[str, int]]:
        return sorted(self._rules)

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._all)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(str(entry) for entry in self._all)
