"""Built-in predicates evaluated procedurally during resolution.

The context and conversion axioms need a handful of predicates that cannot be
(or should not be) defined by clauses: arithmetic evaluation, comparisons and
term (in)equality.  They mirror the classic Prolog built-ins the original
COIN prototype relied on:

* ``eval(Expr, Result)`` — arithmetic evaluation of a ground expression term
  built with the functors ``+ - * /`` (written as compounds, e.g.
  ``Compound('*', (x, y))``); the COIN conversion functions are expressed with
  it.
* ``lt/le/gt/ge/ne/eq`` — comparisons over ground scalars.
* ``unifiable(X, Y)`` / ``dif(X, Y)`` — used by the consistency checks of the
  abductive procedure.

Each builtin receives the argument terms *after* substitution and returns an
iterable of (possibly extended) substitutions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ResolutionError
from repro.datalog.terms import Compound, Constant, Term, Variable, lift
from repro.datalog.unify import Substitution, apply, unify

BuiltinHandler = Callable[[Tuple[Term, ...], Substitution], Iterable[Substitution]]


def evaluate_arithmetic(term: Term, substitution: Substitution):
    """Evaluate a ground arithmetic term to a Python number.

    Supported functors: ``+ - * /`` (binary), ``neg`` (unary), ``abs``,
    ``round`` (binary: value, digits).  Constants pass through.
    """
    term = apply(term, substitution)
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ResolutionError(f"non-numeric value in arithmetic: {value!r}")
        return value
    if isinstance(term, Variable):
        raise ResolutionError(f"arithmetic on unbound variable {term}")
    if isinstance(term, Compound):
        args = [evaluate_arithmetic(arg, substitution) for arg in term.args]
        functor = term.functor
        if functor == "+" and len(args) == 2:
            return args[0] + args[1]
        if functor == "-" and len(args) == 2:
            return args[0] - args[1]
        if functor == "*" and len(args) == 2:
            return args[0] * args[1]
        if functor == "/" and len(args) == 2:
            if args[1] == 0:
                raise ResolutionError("division by zero in arithmetic evaluation")
            return args[0] / args[1]
        if functor == "neg" and len(args) == 1:
            return -args[0]
        if functor == "abs" and len(args) == 1:
            return abs(args[0])
        if functor == "round" and len(args) == 2:
            return round(args[0], int(args[1]))
        raise ResolutionError(f"unknown arithmetic functor {functor}/{len(args)}")
    raise ResolutionError(f"cannot evaluate {term!r}")  # pragma: no cover


def _builtin_eval(args: Tuple[Term, ...], substitution: Substitution) -> Iterator[Substitution]:
    expression, result = args
    value = evaluate_arithmetic(expression, substitution)
    extended = unify(result, Constant(value), substitution)
    if extended is not None:
        yield extended


def _comparison(op: str) -> BuiltinHandler:
    def handler(args: Tuple[Term, ...], substitution: Substitution) -> Iterator[Substitution]:
        left = apply(args[0], substitution)
        right = apply(args[1], substitution)
        if not isinstance(left, Constant) or not isinstance(right, Constant):
            raise ResolutionError(f"comparison {op} requires ground scalar arguments")
        lv, rv = left.value, right.value
        try:
            outcome = {
                "lt": lv < rv,
                "le": lv <= rv,
                "gt": lv > rv,
                "ge": lv >= rv,
            }[op]
        except TypeError as exc:
            raise ResolutionError(f"cannot compare {lv!r} and {rv!r}") from exc
        if outcome:
            yield substitution

    return handler


def _builtin_eq(args: Tuple[Term, ...], substitution: Substitution) -> Iterator[Substitution]:
    extended = unify(args[0], args[1], substitution)
    if extended is not None:
        yield extended


def _builtin_ne(args: Tuple[Term, ...], substitution: Substitution) -> Iterator[Substitution]:
    # dif/ne succeeds only when the terms are *not* unifiable: a safe
    # approximation of disequality for the ground terms the mediator uses.
    if unify(args[0], args[1], substitution) is None:
        yield substitution


def _builtin_ground(args: Tuple[Term, ...], substitution: Substitution) -> Iterator[Substitution]:
    from repro.datalog.terms import is_ground

    if is_ground(apply(args[0], substitution)):
        yield substitution


def _builtin_true(args: Tuple[Term, ...], substitution: Substitution) -> Iterator[Substitution]:
    yield substitution


def _builtin_fail(args: Tuple[Term, ...], substitution: Substitution) -> Iterator[Substitution]:
    return iter(())


#: Registry of builtin predicates, keyed by (name, arity).
BUILTINS: Dict[Tuple[str, int], BuiltinHandler] = {
    ("eval", 2): _builtin_eval,
    ("lt", 2): _comparison("lt"),
    ("le", 2): _comparison("le"),
    ("gt", 2): _comparison("gt"),
    ("ge", 2): _comparison("ge"),
    ("eq", 2): _builtin_eq,
    ("ne", 2): _builtin_ne,
    ("dif", 2): _builtin_ne,
    ("ground", 1): _builtin_ground,
    ("true", 0): _builtin_true,
    ("fail", 0): _builtin_fail,
}


def is_builtin(predicate: str, arity: int) -> bool:
    return (predicate, arity) in BUILTINS


def call_builtin(predicate: str, args: Tuple[Term, ...],
                 substitution: Substitution) -> Iterable[Substitution]:
    handler = BUILTINS.get((predicate, len(args)))
    if handler is None:
        raise ResolutionError(f"unknown builtin {predicate}/{len(args)}")
    return handler(args, substitution)
