"""Deductive substrate: terms, unification, Horn clauses and SLD(NF) resolution.

The COIN framework is defined over a deductive object-oriented data model
(Frame-Logic family).  This package provides the logic-programming machinery
the reproduction uses to encode that model: the domain model, elevation
axioms, context theories and conversion functions all compile down to
:class:`~repro.datalog.clause.Rule` objects, and the mediation procedure runs
:class:`~repro.datalog.engine.Resolver` over them with abduction enabled.
"""

from repro.datalog.terms import (
    Compound,
    Constant,
    Term,
    Variable,
    compound,
    const,
    fresh_var,
    is_ground,
    lift,
    term_to_python,
    var,
    variables_of,
)
from repro.datalog.unify import Substitution, apply, compose, unify, unify_sequences, walk
from repro.datalog.clause import (
    Atom,
    KnowledgeBase,
    Literal,
    Rule,
    atom,
    fact,
    neg,
    pos,
    rule,
)
from repro.datalog.builtins import BUILTINS, call_builtin, evaluate_arithmetic, is_builtin
from repro.datalog.engine import ResolutionConfig, Resolver, Solution, solve

__all__ = [
    "Compound",
    "Constant",
    "Term",
    "Variable",
    "compound",
    "const",
    "fresh_var",
    "is_ground",
    "lift",
    "term_to_python",
    "var",
    "variables_of",
    "Substitution",
    "apply",
    "compose",
    "unify",
    "unify_sequences",
    "walk",
    "Atom",
    "KnowledgeBase",
    "Literal",
    "Rule",
    "atom",
    "fact",
    "neg",
    "pos",
    "rule",
    "BUILTINS",
    "call_builtin",
    "evaluate_arithmetic",
    "is_builtin",
    "ResolutionConfig",
    "Resolver",
    "Solution",
    "solve",
]
