"""SLD(NF) resolution over a knowledge base.

The solver is a straightforward depth-first SLD resolution engine with
negation-as-failure and procedural builtins, plus one extension used by the
context mediator: an optional *abducible* hook.  When a goal's predicate is
declared abducible and no clause resolves it, the engine does not fail —
instead it asks the hook whether the literal may be *assumed*, records the
assumption, and continues.  This is the mechanism (after Kakas, Kowalski &
Toni's abductive logic programming framework, [KK93] in the paper) by which
mediation "determin[es] what conflicts exist and how they may be resolved".

The engine returns :class:`Solution` objects carrying the answer substitution,
the set of abduced literals, and a proof trace (rule labels), which the
mediator turns into query branches and explanations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ResolutionError
from repro.datalog.builtins import call_builtin, is_builtin
from repro.datalog.clause import Atom, KnowledgeBase, Literal, Rule
from repro.datalog.terms import Term, Variable, term_to_python
from repro.datalog.unify import Substitution, apply, unify_sequences


@dataclass
class Solution:
    """One successful derivation of a goal list."""

    substitution: Substitution
    abduced: Tuple[Atom, ...] = ()
    trace: Tuple[str, ...] = ()

    def binding(self, variable: Variable) -> Term:
        """The (fully substituted) binding of a variable in this solution."""
        return apply(variable, self.substitution)

    def value(self, variable: Variable):
        """The binding of a variable converted to a plain Python value."""
        return term_to_python(self.binding(variable))


@dataclass
class ResolutionConfig:
    """Tunable limits of the resolution engine."""

    max_depth: int = 400
    max_solutions: Optional[int] = None
    #: Predicates (name, arity) that may be assumed when unresolvable.
    abducibles: Set[Tuple[str, int]] = field(default_factory=set)
    #: Optional filter invoked before assuming an abducible literal; returning
    #: False vetoes the assumption (used for consistency checks).
    abduction_filter: Optional[Callable[[Atom, Sequence[Atom], Substitution], bool]] = None


class Resolver:
    """Depth-first SLD(NF) resolution with optional abduction."""

    def __init__(self, kb: KnowledgeBase, config: Optional[ResolutionConfig] = None):
        self.kb = kb
        self.config = config or ResolutionConfig()

    # -- public API ----------------------------------------------------------

    def solve(self, goals: Sequence[Literal], bindings: Optional[Substitution] = None) -> Iterator[Solution]:
        """Yield solutions of the conjunctive goal list."""
        produced = 0
        initial = dict(bindings) if bindings else {}
        for substitution, abduced, trace in self._solve(list(goals), initial, (), (), 0):
            yield Solution(substitution, abduced, trace)
            produced += 1
            if self.config.max_solutions is not None and produced >= self.config.max_solutions:
                return

    def ask(self, goals: Sequence[Literal]) -> bool:
        """True when the goal list has at least one solution."""
        for _solution in self.solve(goals):
            return True
        return False

    def solve_atoms(self, atoms: Sequence[Atom], **kwargs) -> Iterator[Solution]:
        """Convenience: solve a list of positive atoms."""
        return self.solve([Literal(a, True) for a in atoms], **kwargs)

    # -- core ------------------------------------------------------------------

    def _solve(self, goals: List[Literal], substitution: Substitution,
               abduced: Tuple[Atom, ...], trace: Tuple[str, ...],
               depth: int) -> Iterator[Tuple[Substitution, Tuple[Atom, ...], Tuple[str, ...]]]:
        if depth > self.config.max_depth:
            raise ResolutionError(
                f"resolution exceeded maximum depth {self.config.max_depth}"
            )
        if not goals:
            yield substitution, abduced, trace
            return

        literal, rest = goals[0], goals[1:]
        goal_atom = literal.atom

        # Negation as failure: the subgoal must finitely fail.
        if not literal.positive:
            if self._has_solution(goal_atom, substitution, abduced, depth):
                return
            yield from self._solve(rest, substitution, abduced, trace, depth + 1)
            return

        predicate, arity = goal_atom.predicate, goal_atom.arity

        # Builtins are evaluated procedurally.
        if is_builtin(predicate, arity):
            for extended in call_builtin(predicate, goal_atom.args, substitution):
                yield from self._solve(rest, extended, abduced, trace, depth + 1)
            return

        resolved_any = False

        # Fully-ground goal over an all-facts predicate: resolve by dictionary
        # lookup (no unification, no substitution copies).
        fact_clauses = self.kb.facts_matching(goal_atom, substitution)
        if fact_clauses is not None:
            for clause in fact_clauses:
                resolved_any = True
                new_trace = trace + ((clause.label,) if clause.label else ())
                yield from self._solve(rest, substitution, abduced, new_trace, depth + 1)
        else:
            # Ordinary resolution, visiting only clauses the first-argument
            # index cannot rule out; ground clauses skip standardizing apart.
            for _seq, clause, clause_is_ground in self.kb.goal_entries(goal_atom, substitution):
                renamed = clause if clause_is_ground else clause.rename_apart()
                extended = unify_sequences(renamed.head.args, goal_atom.args, substitution)
                if extended is None:
                    continue
                resolved_any = True
                new_goals = list(renamed.body) + rest
                new_trace = trace + ((renamed.label,) if renamed.label else ())
                yield from self._solve(new_goals, extended, abduced, new_trace, depth + 1)

        # Abduction: assume the literal when it is declared abducible.
        if (predicate, arity) in self.config.abducibles:
            assumed = Atom(predicate, tuple(apply(arg, substitution) for arg in goal_atom.args))
            if self._may_assume(assumed, abduced, substitution):
                yield from self._solve(rest, substitution, abduced + (assumed,), trace, depth + 1)
            return

        if not resolved_any and not self.kb.defines(predicate, arity):
            # Unknown predicates fail silently (closed-world assumption); this
            # mirrors datalog semantics and keeps partial knowledge bases usable.
            return

    def _has_solution(self, goal_atom: Atom, substitution: Substitution,
                      abduced: Tuple[Atom, ...], depth: int) -> bool:
        # No defensive copy: substitutions are never mutated downstream (the
        # unifier extends copies), so the NAF check can share the caller's dict.
        for _ in self._solve([Literal(goal_atom, True)], substitution, abduced, (), depth + 1):
            return True
        return False

    def _may_assume(self, assumed: Atom, abduced: Tuple[Atom, ...],
                    substitution: Substitution) -> bool:
        if self.config.abduction_filter is None:
            return True
        return self.config.abduction_filter(assumed, abduced, substitution)


def solve(kb: KnowledgeBase, goals: Sequence[Literal], **config_kwargs) -> List[Solution]:
    """One-shot helper: solve goals against ``kb`` and return all solutions."""
    resolver = Resolver(kb, ResolutionConfig(**config_kwargs) if config_kwargs else None)
    return list(resolver.solve(goals))
