"""Terms of the deductive substrate: variables, constants and compound terms.

The COIN framework is "built on a deductive and object-oriented data model of
the family of Frame-Logic".  This reproduction encodes that model over a
conventional logic-programming term language: semantic objects become compound
(skolem) terms, attribute/modifier relationships become predicates, and the
context and elevation axioms become Horn clauses evaluated by
:mod:`repro.datalog.engine`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Sequence, Tuple, Union

#: Anything that can appear as an argument of an atom.
Term = Union["Variable", "Constant", "Compound"]


@dataclass(frozen=True)
class Variable:
    """A logic variable, identified by name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"


@dataclass(frozen=True)
class Constant:
    """A ground scalar value (string, number, boolean or None)."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.value!r})"


@dataclass(frozen=True)
class Compound:
    """A functor applied to argument terms, e.g. ``skolem(revenue, 'NTT')``."""

    functor: str
    args: Tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.functor
        return f"{self.functor}({', '.join(str(arg) for arg in self.args)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compound({self.functor!r}, {self.args!r})"

    @property
    def arity(self) -> int:
        return len(self.args)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

_variable_counter = itertools.count(1)


def var(name: str) -> Variable:
    """Build a variable."""
    return Variable(name)


def fresh_var(prefix: str = "_G") -> Variable:
    """Build a globally fresh variable (used to standardize clauses apart)."""
    return Variable(f"{prefix}{next(_variable_counter)}")


def const(value: Any) -> Constant:
    """Build a constant."""
    return Constant(value)


def compound(functor: str, *args: Any) -> Compound:
    """Build a compound term, lifting raw Python values to constants."""
    return Compound(functor, tuple(lift(arg) for arg in args))


def lift(value: Any) -> Term:
    """Lift a Python value into a term (terms pass through unchanged)."""
    if isinstance(value, (Variable, Constant, Compound)):
        return value
    return Constant(value)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def is_ground(term: Term) -> bool:
    """True when the term contains no variables."""
    if isinstance(term, Variable):
        return False
    if isinstance(term, Compound):
        return all(is_ground(arg) for arg in term.args)
    return True


def variables_of(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in the term (with repetitions)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, Compound):
        for arg in term.args:
            yield from variables_of(arg)


def term_to_python(term: Term) -> Any:
    """Convert a ground term to a plain Python value.

    Constants unwrap to their value; compound terms become
    ``(functor, arg0, arg1, ...)`` tuples, which is enough for callers that
    only need a hashable, comparable representation (the abduction engine's
    answer keys, for instance).
    """
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Compound):
        return (term.functor,) + tuple(term_to_python(arg) for arg in term.args)
    raise ValueError(f"term {term} is not ground")


def rename_term(term: Term, mapping: Dict[Variable, Variable]) -> Term:
    """Rename variables according to ``mapping``, creating fresh ones on demand."""
    if isinstance(term, Variable):
        if term not in mapping:
            mapping[term] = fresh_var(f"_{term.name}_")
        return mapping[term]
    if isinstance(term, Compound):
        return Compound(term.functor, tuple(rename_term(arg, mapping) for arg in term.args))
    return term
