"""Abstract syntax tree for the prototype's SQL dialect.

Nodes are small frozen-ish dataclasses (mutable where rewriting needs it) with
no behaviour beyond structural helpers: :func:`walk` yields every node of a
tree, :func:`transform` rebuilds a tree bottom-up through a mapping function —
both are used heavily by the mediation engine when splicing conversion
expressions into queries, and by the multi-database engine when decomposing a
mediated query into per-source sub-queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union as TUnion


class Node:
    """Base class for every AST node (expressions and statements)."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (in syntactic order)."""
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            yield from _iter_nodes(value)

    def copy(self, **changes: Any) -> "Node":
        """Return a shallow copy with the given field replacements."""
        return replace(self, **changes)  # type: ignore[type-var]


def _iter_nodes(value: Any) -> Iterator[Node]:
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_nodes(item)


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def transform(node: Node, fn: Callable[[Node], Node]) -> Node:
    """Rebuild ``node`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been transformed and
    must return a node (possibly the same one).  Lists/tuples of nodes inside
    fields are transformed element-wise.
    """

    def rebuild(value: Any) -> Any:
        if isinstance(value, Node):
            return transform(value, fn)
        if isinstance(value, list):
            return [rebuild(item) for item in value]
        if isinstance(value, tuple):
            return tuple(rebuild(item) for item in value)
        return value

    if is_dataclass(node):
        changes = {}
        for f in fields(node):
            old = getattr(node, f.name)
            new = rebuild(old)
            if new is not old:
                changes[f.name] = new
        if changes:
            node = replace(node, **changes)
    return fn(node)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Node):
    """A constant: number, string, boolean or NULL (``value is None``)."""

    value: Any

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Node):
    """A (possibly qualified) column reference such as ``r1.revenue``."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        """The dotted form used for display and for schema lookups."""
        return f"{self.table}.{self.name}" if self.table else self.name

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.qualified


@dataclass(frozen=True)
class Star(Node):
    """``*`` or ``t.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Node):
    """A binary operation: arithmetic, comparison, AND/OR or concatenation."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class UnaryOp(Node):
    """A unary operation: ``NOT x`` or ``-x``."""

    op: str
    operand: Node


@dataclass(frozen=True)
class FunctionCall(Node):
    """A scalar or aggregate function call, e.g. ``SUM(r1.revenue)``."""

    name: str
    args: Tuple[Node, ...] = ()
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class InList(Node):
    """``expr [NOT] IN (v1, v2, ...)`` with literal/expression members."""

    expr: Node
    items: Tuple[Node, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Node):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Node
    low: Node
    high: Node
    negated: bool = False


@dataclass(frozen=True)
class Like(Node):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    expr: Node
    pattern: Node
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Node):
    """``expr IS [NOT] NULL``."""

    expr: Node
    negated: bool = False


@dataclass(frozen=True)
class Subquery(Node):
    """A parenthesized query usable as a table or scalar/EXISTS operand."""

    query: "Select"


@dataclass(frozen=True)
class Exists(Node):
    """``[NOT] EXISTS (subquery)``."""

    subquery: Subquery
    negated: bool = False


@dataclass(frozen=True)
class Case(Node):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: Tuple[Tuple[Node, Node], ...]
    default: Optional[Node] = None

    def children(self) -> Iterator[Node]:
        for cond, value in self.whens:
            yield cond
            yield value
        if self.default is not None:
            yield self.default


# ---------------------------------------------------------------------------
# Table references and joins
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef(Node):
    """A base-table reference with an optional alias, e.g. ``r1`` or ``R1 x``.

    ``source`` optionally pins the table to a named source (``source.table``
    syntax is accepted by the parser); the catalog resolves unqualified names.
    """

    name: str
    alias: Optional[str] = None
    source: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in column qualifiers."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join(Node):
    """An explicit join between two table expressions."""

    left: Node
    right: Node
    kind: str = "INNER"  # INNER, LEFT, RIGHT, CROSS
    condition: Optional[Node] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One entry of a select list: an expression with an optional alias."""

    expr: Node
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One entry of an ORDER BY clause."""

    expr: Node
    ascending: bool = True


@dataclass(frozen=True)
class Select(Node):
    """A single SELECT statement (one UNION branch)."""

    items: Tuple[SelectItem, ...]
    tables: Tuple[Node, ...] = ()
    where: Optional[Node] = None
    group_by: Tuple[Node, ...] = ()
    having: Optional[Node] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    @property
    def output_names(self) -> List[str]:
        """The column names of the result, using aliases when present."""
        names: List[str] = []
        for index, item in enumerate(self.items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                names.append(item.expr.name)
            else:
                names.append(f"col_{index + 1}")
        return names


@dataclass(frozen=True)
class Union(Node):
    """A UNION (or UNION ALL) of two or more SELECT statements."""

    selects: Tuple[Select, ...]
    all: bool = False

    @property
    def output_names(self) -> List[str]:
        return self.selects[0].output_names if self.selects else []


@dataclass(frozen=True)
class ColumnDef(Node):
    """A column definition in CREATE TABLE."""

    name: str
    type_name: str = "string"


@dataclass(frozen=True)
class CreateTable(Node):
    """``CREATE TABLE name (col type, ...)`` used to load demo sources."""

    name: str
    columns: Tuple[ColumnDef, ...]


@dataclass(frozen=True)
class Insert(Node):
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Node, ...], ...]


#: Any statement the parser may return.
Statement = TUnion[Select, Union, CreateTable, Insert]

#: Names of aggregate functions recognized by the dialect.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate_call(node: Node) -> bool:
    """Return True when ``node`` is a call to an aggregate function."""
    return isinstance(node, FunctionCall) and node.name.upper() in AGGREGATE_FUNCTIONS


def contains_aggregate(node: Node) -> bool:
    """Return True when any descendant of ``node`` is an aggregate call."""
    return any(is_aggregate_call(n) for n in walk(node))


def column_refs(node: Node) -> List[ColumnRef]:
    """Collect every column reference appearing under ``node``, in order."""
    return [n for n in walk(node) if isinstance(n, ColumnRef)]


def referenced_tables(select: Select) -> List[str]:
    """Return the binding names of all tables referenced in FROM (joins included)."""
    names: List[str] = []
    for table in select.tables:
        for node in walk(table):
            if isinstance(node, TableRef):
                names.append(node.binding)
            elif isinstance(node, Subquery):
                # Derived tables contribute their alias through the enclosing
                # TableRef-less syntax; the parser wraps them in SelectItem-like
                # aliases which callers handle separately.
                pass
    return names


def conjuncts(condition: Optional[Node]) -> List[Node]:
    """Split a WHERE/HAVING condition into its top-level AND-ed conjuncts."""
    if condition is None:
        return []
    if isinstance(condition, BinaryOp) and condition.op.upper() == "AND":
        return conjuncts(condition.left) + conjuncts(condition.right)
    return [condition]


def conjoin(conditions: Sequence[Node]) -> Optional[Node]:
    """Combine conditions with AND; return None for an empty sequence."""
    result: Optional[Node] = None
    for condition in conditions:
        result = condition if result is None else BinaryOp("AND", result, condition)
    return result


def disjoin(conditions: Sequence[Node]) -> Optional[Node]:
    """Combine conditions with OR; return None for an empty sequence."""
    result: Optional[Node] = None
    for condition in conditions:
        result = condition if result is None else BinaryOp("OR", result, condition)
    return result
