"""Tokenizer for the prototype's SQL dialect.

The lexer is a hand-written scanner producing a flat list of :class:`Token`
objects.  It recognizes keywords case-insensitively, quoted string literals
with doubled-quote escaping (``'it''s'``), integer and decimal numeric
literals, identifiers (optionally double-quoted), the usual punctuation and
multi-character comparison operators, and both ``--`` line comments and
``/* ... */`` block comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import SQLSyntaxError


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words of the dialect.  Anything not in this set scans as an
#: identifier.  Keywords are stored upper-case; the lexer upper-cases matches.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "ALL",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "UNION",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "LIKE",
        "BETWEEN",
        "EXISTS",
        "AS",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "OUTER",
        "CROSS",
        "ON",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "CREATE",
        "TABLE",
        "INSERT",
        "INTO",
        "VALUES",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")

#: Single-character operators.
_SINGLE_CHAR_OPERATORS = "+-*/%=<>"

#: Punctuation characters that become their own tokens.
_PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the normalized text: keywords are upper-cased, string
    literals are unquoted and unescaped, numbers keep their literal spelling
    (conversion to int/float happens in the parser).
    """

    type: TokenType
    value: str
    position: int
    line: int
    column: int

    def matches(self, token_type: TokenType, value: Optional[str] = None) -> bool:
        """Return True when the token has the given type (and value, if given)."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value

    def is_keyword(self, *names: str) -> bool:
        """Return True when the token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.line}:{self.column})"


class Lexer:
    """Scanner turning a SQL string into tokens.

    The lexer is restartable: :meth:`tokens` may be called repeatedly and
    always scans from the beginning of the input.
    """

    def __init__(self, text: str):
        self.text = text

    # -- public API ---------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Scan the whole input and return the token list (with a final EOF)."""
        return list(self._scan())

    # -- scanning -----------------------------------------------------------

    def _scan(self) -> Iterator[Token]:
        text = self.text
        length = len(text)
        pos = 0
        line = 1
        line_start = 0

        def make(token_type: TokenType, value: str, at: int) -> Token:
            return Token(token_type, value, at, line, at - line_start + 1)

        while pos < length:
            char = text[pos]

            # Whitespace (track line numbers for error reporting).
            if char in " \t\r\n":
                if char == "\n":
                    line += 1
                    line_start = pos + 1
                pos += 1
                continue

            # Line comments.
            if text.startswith("--", pos):
                end = text.find("\n", pos)
                pos = length if end == -1 else end
                continue

            # Block comments.
            if text.startswith("/*", pos):
                end = text.find("*/", pos + 2)
                if end == -1:
                    raise SQLSyntaxError(
                        "unterminated block comment", pos, line, pos - line_start + 1
                    )
                for i in range(pos, end):
                    if text[i] == "\n":
                        line += 1
                        line_start = i + 1
                pos = end + 2
                continue

            # String literals with '' escaping.
            if char == "'":
                start = pos
                pos += 1
                pieces: List[str] = []
                while True:
                    if pos >= length:
                        raise SQLSyntaxError(
                            "unterminated string literal",
                            start,
                            line,
                            start - line_start + 1,
                        )
                    if text[pos] == "'":
                        if pos + 1 < length and text[pos + 1] == "'":
                            pieces.append("'")
                            pos += 2
                            continue
                        pos += 1
                        break
                    pieces.append(text[pos])
                    pos += 1
                yield make(TokenType.STRING, "".join(pieces), start)
                continue

            # Double-quoted identifiers.
            if char == '"':
                start = pos
                end = text.find('"', pos + 1)
                if end == -1:
                    raise SQLSyntaxError(
                        "unterminated quoted identifier",
                        start,
                        line,
                        start - line_start + 1,
                    )
                yield make(TokenType.IDENTIFIER, text[pos + 1 : end], start)
                pos = end + 1
                continue

            # Numbers: integers and decimals, with optional exponent.
            if char.isdigit() or (char == "." and pos + 1 < length and text[pos + 1].isdigit()):
                start = pos
                pos += 1
                while pos < length and (text[pos].isdigit() or text[pos] == "."):
                    pos += 1
                if pos < length and text[pos] in "eE":
                    exp_end = pos + 1
                    if exp_end < length and text[exp_end] in "+-":
                        exp_end += 1
                    if exp_end < length and text[exp_end].isdigit():
                        pos = exp_end
                        while pos < length and text[pos].isdigit():
                            pos += 1
                literal = text[start:pos]
                if literal.count(".") > 1:
                    raise SQLSyntaxError(
                        f"malformed number {literal!r}", start, line, start - line_start + 1
                    )
                yield make(TokenType.NUMBER, literal, start)
                continue

            # Identifiers and keywords.
            if char.isalpha() or char == "_":
                start = pos
                pos += 1
                while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                    pos += 1
                word = text[start:pos]
                upper = word.upper()
                if upper in KEYWORDS:
                    yield make(TokenType.KEYWORD, upper, start)
                else:
                    yield make(TokenType.IDENTIFIER, word, start)
                continue

            # Multi-character operators.
            matched = False
            for op in _MULTI_CHAR_OPERATORS:
                if text.startswith(op, pos):
                    yield make(TokenType.OPERATOR, op, pos)
                    pos += len(op)
                    matched = True
                    break
            if matched:
                continue

            # Single-character operators and punctuation.
            if char in _SINGLE_CHAR_OPERATORS:
                yield make(TokenType.OPERATOR, char, pos)
                pos += 1
                continue
            if char in _PUNCTUATION:
                yield make(TokenType.PUNCTUATION, char, pos)
                pos += 1
                continue

            raise SQLSyntaxError(
                f"unexpected character {char!r}", pos, line, pos - line_start + 1
            )

        yield Token(TokenType.EOF, "", length, line, length - line_start + 1)


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return Lexer(text).tokens()
