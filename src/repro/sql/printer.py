"""Render SQL AST nodes back into SQL text.

The printer is used in three places in the prototype:

* the mediation engine returns the *mediated query* as SQL text so receivers
  (and demo front ends) can inspect how their query was rewritten — the paper's
  Section 3 shows exactly such a rendering;
* the multi-database access engine serializes per-source sub-queries before
  shipping them to wrappers;
* clients of the ODBC-like driver may log or display the statements they send.

The output is deterministic, single-line and re-parseable by
:func:`repro.sql.parser.parse`, which the property-based tests rely on.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import SQLError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Case,
    ColumnDef,
    ColumnRef,
    CreateTable,
    Exists,
    FunctionCall,
    InList,
    Insert,
    IsNull,
    Join,
    Like,
    Literal,
    Node,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Subquery,
    TableRef,
    UnaryOp,
    Union,
)
from repro.sql.parser import DerivedTable

#: Binding strength of binary operators, used to decide where parentheses are
#: required when re-rendering an expression tree.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "<>": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "||": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
}


def format_literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def to_sql(node: Node) -> str:
    """Render any statement or expression node as SQL text."""
    return _Printer().render(node)


class _Printer:
    """Stateless rendering visitor (a class only to group the methods)."""

    # -- statements ---------------------------------------------------------

    def render(self, node: Node) -> str:
        if isinstance(node, Union):
            return self._union(node)
        if isinstance(node, Select):
            return self._select(node)
        if isinstance(node, CreateTable):
            return self._create_table(node)
        if isinstance(node, Insert):
            return self._insert(node)
        return self.expression(node)

    def _union(self, node: Union) -> str:
        keyword = " UNION ALL " if node.all else " UNION "
        return keyword.join(self._select(select) for select in node.selects)

    def _select(self, node: Select) -> str:
        parts: List[str] = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self._select_item(item) for item in node.items))
        if node.tables:
            parts.append("FROM")
            parts.append(", ".join(self._table(table) for table in node.tables))
        if node.where is not None:
            parts.append("WHERE")
            parts.append(self.expression(node.where))
        if node.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(self.expression(expr) for expr in node.group_by))
        if node.having is not None:
            parts.append("HAVING")
            parts.append(self.expression(node.having))
        if node.order_by:
            parts.append("ORDER BY")
            parts.append(", ".join(self._order_item(item) for item in node.order_by))
        if node.limit is not None:
            parts.append(f"LIMIT {node.limit}")
            if node.offset is not None:
                parts.append(f"OFFSET {node.offset}")
        return " ".join(parts)

    def _select_item(self, item: SelectItem) -> str:
        text = self.expression(item.expr)
        if item.alias:
            return f"{text} AS {item.alias}"
        return text

    def _order_item(self, item: OrderItem) -> str:
        text = self.expression(item.expr)
        return text if item.ascending else f"{text} DESC"

    def _table(self, node: Node) -> str:
        if isinstance(node, TableRef):
            name = f"{node.source}.{node.name}" if node.source else node.name
            return f"{name} {node.alias}" if node.alias else name
        if isinstance(node, Join):
            left = self._table(node.left)
            right = self._table(node.right)
            if node.kind == "CROSS":
                return f"{left} CROSS JOIN {right}"
            join = {"INNER": "JOIN", "LEFT": "LEFT JOIN", "RIGHT": "RIGHT JOIN"}[node.kind]
            condition = self.expression(node.condition) if node.condition is not None else "TRUE"
            return f"{left} {join} {right} ON {condition}"
        if isinstance(node, DerivedTable):
            return f"({self._select(node.query)}) {node.alias}"
        raise SQLError(f"cannot render table expression {node!r}")

    def _create_table(self, node: CreateTable) -> str:
        columns = ", ".join(self._column_def(column) for column in node.columns)
        return f"CREATE TABLE {node.name} ({columns})"

    def _column_def(self, column: ColumnDef) -> str:
        return f"{column.name} {column.type_name}"

    def _insert(self, node: Insert) -> str:
        columns = f" ({', '.join(node.columns)})" if node.columns else ""
        rows = ", ".join(
            "(" + ", ".join(self.expression(value) for value in row) + ")" for row in node.rows
        )
        return f"INSERT INTO {node.table}{columns} VALUES {rows}"

    # -- expressions --------------------------------------------------------

    def expression(self, node: Node, parent_precedence: int = 0) -> str:
        if isinstance(node, Literal):
            return format_literal(node.value)
        if isinstance(node, ColumnRef):
            return node.qualified
        if isinstance(node, Star):
            return f"{node.table}.*" if node.table else "*"
        if isinstance(node, BinaryOp):
            return self._binary(node, parent_precedence)
        if isinstance(node, UnaryOp):
            return self._unary(node, parent_precedence)
        if isinstance(node, FunctionCall):
            return self._function(node)
        if isinstance(node, InList):
            return self._in_list(node)
        if isinstance(node, Between):
            keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
            return (
                f"{self.expression(node.expr, 8)} {keyword} "
                f"{self.expression(node.low, 8)} AND {self.expression(node.high, 8)}"
            )
        if isinstance(node, Like):
            keyword = "NOT LIKE" if node.negated else "LIKE"
            return f"{self.expression(node.expr, 8)} {keyword} {self.expression(node.pattern, 8)}"
        if isinstance(node, IsNull):
            keyword = "IS NOT NULL" if node.negated else "IS NULL"
            return f"{self.expression(node.expr, 8)} {keyword}"
        if isinstance(node, Exists):
            keyword = "NOT EXISTS" if node.negated else "EXISTS"
            return f"{keyword} ({self._select(node.subquery.query)})"
        if isinstance(node, Subquery):
            return f"({self._select(node.query)})"
        if isinstance(node, Case):
            return self._case(node)
        raise SQLError(f"cannot render expression {node!r}")

    def _binary(self, node: BinaryOp, parent_precedence: int) -> str:
        op = node.op.upper()
        precedence = _PRECEDENCE.get(op, 4)
        if precedence == 4:
            # Comparisons are non-associative in the grammar: a nested
            # comparison on either side must be parenthesized.
            left = self.expression(node.left, precedence + 1)
            right = self.expression(node.right, precedence + 1)
        else:
            left = self.expression(node.left, precedence)
            # Right operand gets precedence + 1 so that same-precedence chains
            # stay left-associative when re-parsed (a - b - c is unambiguous).
            right = self.expression(node.right, precedence + 1)
        text = f"{left} {op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text

    def _unary(self, node: UnaryOp, parent_precedence: int = 0) -> str:
        if node.op.upper() == "NOT":
            # NOT binds looser than comparisons: parenthesize when embedded in
            # arithmetic or a comparison, and render its operand at the
            # predicate level (so ``NOT a = 1`` stays unparenthesized).
            text = f"NOT {self.expression(node.operand, 4)}"
            if parent_precedence > 3:
                return f"({text})"
            return text
        return f"{node.op}{self.expression(node.operand, 8)}"

    def _function(self, node: FunctionCall) -> str:
        if not node.args:
            return f"{node.name}()"
        args = ", ".join(self.expression(arg) for arg in node.args)
        if node.distinct:
            return f"{node.name}(DISTINCT {args})"
        return f"{node.name}({args})"

    def _in_list(self, node: InList) -> str:
        keyword = "NOT IN" if node.negated else "IN"
        items = ", ".join(self.expression(item) for item in node.items)
        return f"{self.expression(node.expr, 8)} {keyword} ({items})"

    def _case(self, node: Case) -> str:
        parts = ["CASE"]
        for condition, value in node.whens:
            parts.append(f"WHEN {self.expression(condition)} THEN {self.expression(value)}")
        if node.default is not None:
            parts.append(f"ELSE {self.expression(node.default)}")
        parts.append("END")
        return " ".join(parts)
