"""Recursive-descent parser for the prototype's SQL dialect.

The grammar mirrors what the COIN prototype's front ends emit and what its
mediation engine produces: SELECT statements with explicit joins or
comma-separated FROM lists, WHERE conditions over arithmetic expressions,
UNION / UNION ALL, and the simple DDL/DML (``CREATE TABLE``, ``INSERT``) used
to populate demo sources.

Entry points:

* :func:`parse` — parse a complete statement (Select, Union, CreateTable,
  Insert).
* :func:`parse_expression` — parse a standalone scalar/boolean expression
  (used by the QBE front end for condition fields).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SQLSyntaxError, SQLUnsupportedError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Case,
    ColumnDef,
    ColumnRef,
    CreateTable,
    Exists,
    FunctionCall,
    InList,
    Insert,
    IsNull,
    Join,
    Like,
    Literal,
    Node,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Statement,
    Subquery,
    TableRef,
    UnaryOp,
    Union,
)
from repro.sql.lexer import Token, TokenType, tokenize


class Parser:
    """A single-use parser over a token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = tokenize(text)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self.current
        return SQLSyntaxError(
            f"{message} (found {token.value!r})", token.position, token.line, token.column
        )

    def _expect_keyword(self, *names: str) -> Token:
        if self.current.is_keyword(*names):
            return self._advance()
        raise self._error(f"expected {' or '.join(names)}")

    def _accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        if self.current.matches(TokenType.PUNCTUATION, value):
            return self._advance()
        raise self._error(f"expected {value!r}")

    def _accept_punct(self, value: str) -> bool:
        if self.current.matches(TokenType.PUNCTUATION, value):
            self._advance()
            return True
        return False

    def _accept_operator(self, *values: str) -> Optional[str]:
        if self.current.type is TokenType.OPERATOR and self.current.value in values:
            return self._advance().value
        return None

    def _expect_identifier(self) -> str:
        if self.current.type is TokenType.IDENTIFIER:
            return self._advance().value
        # Allow non-reserved use of some keywords as identifiers is not
        # supported: keep the grammar strict and predictable.
        raise self._error("expected identifier")

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse one statement and require end-of-input (optionally ``;``)."""
        statement = self._statement()
        self._accept_punct(";")
        if self.current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def _statement(self) -> Statement:
        if self.current.is_keyword("SELECT"):
            return self._select_or_union()
        if self.current.is_keyword("CREATE"):
            return self._create_table()
        if self.current.is_keyword("INSERT"):
            return self._insert()
        raise self._error("expected SELECT, CREATE or INSERT")

    # -- SELECT / UNION -----------------------------------------------------

    def _select_or_union(self) -> Statement:
        selects = [self._select()]
        union_all: Optional[bool] = None
        while self._accept_keyword("UNION"):
            branch_all = bool(self._accept_keyword("ALL"))
            if union_all is None:
                union_all = branch_all
            elif union_all != branch_all:
                raise SQLUnsupportedError(
                    "mixing UNION and UNION ALL in one statement is not supported"
                )
            selects.append(self._select())
        if len(selects) == 1:
            return selects[0]
        return Union(tuple(selects), all=bool(union_all))

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        elif self._accept_keyword("ALL"):
            distinct = False

        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())

        tables: Tuple[Node, ...] = ()
        if self._accept_keyword("FROM"):
            tables = tuple(self._table_list())

        where = self._expression() if self._accept_keyword("WHERE") else None

        group_by: Tuple[Node, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self._expression()]
            while self._accept_punct(","):
                exprs.append(self._expression())
            group_by = tuple(exprs)

        having = self._expression() if self._accept_keyword("HAVING") else None

        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            orders = [self._order_item()]
            while self._accept_punct(","):
                orders.append(self._order_item())
            order_by = tuple(orders)

        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._integer_literal()
            if self._accept_keyword("OFFSET"):
                offset = self._integer_literal()

        return Select(
            items=tuple(items),
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _integer_literal(self) -> int:
        if self.current.type is not TokenType.NUMBER:
            raise self._error("expected integer literal")
        token = self._advance()
        try:
            return int(token.value)
        except ValueError as exc:
            raise SQLSyntaxError(
                f"expected integer, got {token.value!r}", token.position, token.line, token.column
            ) from exc

    def _select_item(self) -> SelectItem:
        # ``*`` and ``table.*``
        if self.current.matches(TokenType.OPERATOR, "*"):
            self._advance()
            return SelectItem(Star())
        if (
            self.current.type is TokenType.IDENTIFIER
            and self._peek().matches(TokenType.PUNCTUATION, ".")
            and self._peek(2).matches(TokenType.OPERATOR, "*")
        ):
            table = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return SelectItem(Star(table))

        expr = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr, ascending)

    # -- FROM clause --------------------------------------------------------

    def _table_list(self) -> List[Node]:
        tables = [self._table_expression()]
        while self._accept_punct(","):
            tables.append(self._table_expression())
        return tables

    def _table_expression(self) -> Node:
        left = self._table_primary()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                kind = "CROSS"
                self._expect_keyword("JOIN")
            elif self._accept_keyword("INNER"):
                kind = "INNER"
                self._expect_keyword("JOIN")
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                kind = "LEFT"
                self._expect_keyword("JOIN")
            elif self._accept_keyword("RIGHT"):
                self._accept_keyword("OUTER")
                kind = "RIGHT"
                self._expect_keyword("JOIN")
            elif self._accept_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return left
            right = self._table_primary()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self._expression()
            left = Join(left, right, kind, condition)

    def _table_primary(self) -> Node:
        if self._accept_punct("("):
            if self.current.is_keyword("SELECT"):
                query = self._select_or_union()
                self._expect_punct(")")
                alias = None
                if self._accept_keyword("AS"):
                    alias = self._expect_identifier()
                elif self.current.type is TokenType.IDENTIFIER:
                    alias = self._advance().value
                if alias is None:
                    raise self._error("derived table requires an alias")
                if isinstance(query, Union):
                    raise SQLUnsupportedError("UNION not supported as a derived table")
                return _DerivedTable(query, alias)
            inner = self._table_expression()
            self._expect_punct(")")
            return inner

        name = self._expect_identifier()
        source = None
        if self._accept_punct("."):
            source, name = name, self._expect_identifier()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name=name, alias=alias, source=source)

    # -- expressions --------------------------------------------------------

    def _expression(self) -> Node:
        return self._or_expression()

    def _or_expression(self) -> Node:
        left = self._and_expression()
        while self._accept_keyword("OR"):
            right = self._and_expression()
            left = BinaryOp("OR", left, right)
        return left

    def _and_expression(self) -> Node:
        left = self._not_expression()
        while self._accept_keyword("AND"):
            right = self._not_expression()
            left = BinaryOp("AND", left, right)
        return left

    def _not_expression(self) -> Node:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._not_expression())
        return self._predicate()

    def _predicate(self) -> Node:
        if self.current.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            query = self._select_or_union()
            self._expect_punct(")")
            if isinstance(query, Union):
                raise SQLUnsupportedError("UNION in EXISTS is not supported")
            return Exists(Subquery(query))

        left = self._additive()

        negated = False
        if self.current.is_keyword("NOT") and self._peek().is_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True

        if self._accept_keyword("IN"):
            self._expect_punct("(")
            if self.current.is_keyword("SELECT"):
                query = self._select_or_union()
                self._expect_punct(")")
                if isinstance(query, Union):
                    raise SQLUnsupportedError("UNION in IN subquery is not supported")
                return InList(left, (Subquery(query),), negated)
            items = [self._additive()]
            while self._accept_punct(","):
                items.append(self._additive())
            self._expect_punct(")")
            return InList(left, tuple(items), negated)

        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return Between(left, low, high, negated)

        if self._accept_keyword("LIKE"):
            pattern = self._additive()
            return Like(left, pattern, negated)

        if self._accept_keyword("IS"):
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(left, is_negated)

        op = self._accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            normalized = "<>" if op == "!=" else op
            right = self._additive()
            return BinaryOp(normalized, left, right)

        return left

    def _additive(self) -> Node:
        left = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            right = self._multiplicative()
            left = BinaryOp(op, left, right)

    def _multiplicative(self) -> Node:
        left = self._unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            right = self._unary()
            left = BinaryOp(op, left, right)

    def _unary(self) -> Node:
        if self._accept_operator("-"):
            return UnaryOp("-", self._unary())
        if self._accept_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Node:
        token = self.current

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return Literal(value)

        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)

        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)

        if token.is_keyword("CASE"):
            return self._case_expression()

        if token.matches(TokenType.PUNCTUATION, "("):
            self._advance()
            if self.current.is_keyword("SELECT"):
                query = self._select_or_union()
                self._expect_punct(")")
                if isinstance(query, Union):
                    raise SQLUnsupportedError("UNION in scalar subquery is not supported")
                return Subquery(query)
            expr = self._expression()
            self._expect_punct(")")
            return expr

        if token.type is TokenType.IDENTIFIER:
            name = self._advance().value
            # Function call.
            if self.current.matches(TokenType.PUNCTUATION, "("):
                return self._function_call(name)
            # Qualified column reference.
            if self._accept_punct("."):
                column = self._expect_identifier()
                return ColumnRef(name=column, table=name)
            return ColumnRef(name=name)

        # COUNT and friends arrive as identifiers, but allow a keyword-looking
        # function name to be robust (e.g. LEFT is a keyword in the dialect).
        if token.type is TokenType.KEYWORD and self._peek().matches(TokenType.PUNCTUATION, "("):
            name = self._advance().value
            return self._function_call(name)

        raise self._error("expected expression")

    def _function_call(self, name: str) -> Node:
        self._expect_punct("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        args: List[Node] = []
        if self.current.matches(TokenType.OPERATOR, "*"):
            self._advance()
            args.append(Star())
        elif not self.current.matches(TokenType.PUNCTUATION, ")"):
            args.append(self._expression())
            while self._accept_punct(","):
                args.append(self._expression())
        self._expect_punct(")")
        return FunctionCall(name=name.upper(), args=tuple(args), distinct=distinct)

    def _case_expression(self) -> Node:
        self._expect_keyword("CASE")
        whens: List[Tuple[Node, Node]] = []
        while self._accept_keyword("WHEN"):
            condition = self._expression()
            self._expect_keyword("THEN")
            value = self._expression()
            whens.append((condition, value))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        default = None
        if self._accept_keyword("ELSE"):
            default = self._expression()
        self._expect_keyword("END")
        return Case(tuple(whens), default)

    # -- DDL / DML ----------------------------------------------------------

    def _create_table(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect_punct("(")
        columns = [self._column_def()]
        while self._accept_punct(","):
            columns.append(self._column_def())
        self._expect_punct(")")
        return CreateTable(name=name, columns=tuple(columns))

    def _column_def(self) -> ColumnDef:
        name = self._expect_identifier()
        type_name = "string"
        if self.current.type is TokenType.IDENTIFIER:
            type_name = self._advance().value
        return ColumnDef(name=name, type_name=type_name.lower())

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: List[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier())
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: List[Tuple[Node, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self._expression()]
            while self._accept_punct(","):
                values.append(self._expression())
            self._expect_punct(")")
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return Insert(table=table, columns=tuple(columns), rows=tuple(rows))


# ---------------------------------------------------------------------------
# Derived tables
# ---------------------------------------------------------------------------


class _DerivedTable(Node):
    """A ``(SELECT ...) alias`` table expression.

    Kept private to the parser/printer: the engine expands derived tables into
    temporary relations before planning, so downstream code only ever sees
    :class:`TableRef` and :class:`Join`.
    """

    def __init__(self, query: Select, alias: str):
        self.query = query
        self.alias = alias

    def children(self):  # pragma: no cover - structural helper
        yield self.query

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _DerivedTable)
            and other.query == self.query
            and other.alias == self.alias
        )

    def __hash__(self) -> int:
        return hash((self.query, self.alias))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DerivedTable(alias={self.alias!r})"


DerivedTable = _DerivedTable


def parse(text: str) -> Statement:
    """Parse a complete SQL statement."""
    return Parser(text).parse_statement()


def parse_expression(text: str) -> Node:
    """Parse a standalone expression (used by the QBE condition fields)."""
    parser = Parser(text)
    expr = parser._expression()
    if parser.current.type is not TokenType.EOF:
        raise parser._error("unexpected trailing input after expression")
    return expr
