"""SQL substrate: lexer, parser, AST, printer and builder.

The COIN prototype exposes a SQL interface at every layer: receivers pose SQL
queries, the mediator rewrites them into SQL (a union of sub-queries), the
multi-database engine decomposes them into per-source SQL, and wrappers accept
SQL against the relational views they export.  This package implements the
dialect used throughout the reproduction:

* ``SELECT [DISTINCT] <exprs> FROM <tables> [WHERE ...] [GROUP BY ...]
  [HAVING ...] [ORDER BY ...] [LIMIT n]``
* ``UNION`` / ``UNION ALL`` of select statements
* arithmetic (``+ - * /``), comparisons (``= <> < <= > >=``), ``AND``/``OR``/
  ``NOT``, ``IN``, ``BETWEEN``, ``LIKE``, ``IS [NOT] NULL``
* aggregate functions (``COUNT, SUM, AVG, MIN, MAX``) and scalar functions
* ``CREATE TABLE`` and ``INSERT INTO ... VALUES`` for loading demo sources

Typical round trip::

    >>> from repro.sql import parse, to_sql
    >>> stmt = parse("SELECT r1.cname FROM r1 WHERE r1.revenue > 10")
    >>> to_sql(stmt)
    'SELECT r1.cname FROM r1 WHERE r1.revenue > 10'
"""

from repro.sql.ast import (
    Between,
    BinaryOp,
    Case,
    ColumnDef,
    ColumnRef,
    CreateTable,
    Exists,
    FunctionCall,
    InList,
    Insert,
    IsNull,
    Join,
    Like,
    Literal,
    Node,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Subquery,
    TableRef,
    UnaryOp,
    Union,
    column_refs,
    conjoin,
    conjuncts,
    contains_aggregate,
    disjoin,
    is_aggregate_call,
    transform,
    walk,
)
from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.parser import DerivedTable, Parser, parse, parse_expression
from repro.sql.printer import format_literal, to_sql
from repro.sql.builder import Expr, QueryBuilder, col, func, lit, star

__all__ = [
    "Between",
    "BinaryOp",
    "Case",
    "ColumnDef",
    "ColumnRef",
    "CreateTable",
    "DerivedTable",
    "Exists",
    "Expr",
    "FunctionCall",
    "InList",
    "Insert",
    "IsNull",
    "Join",
    "Like",
    "Literal",
    "Node",
    "OrderItem",
    "Select",
    "SelectItem",
    "Star",
    "Subquery",
    "TableRef",
    "UnaryOp",
    "Union",
    "column_refs",
    "conjoin",
    "conjuncts",
    "contains_aggregate",
    "disjoin",
    "is_aggregate_call",
    "transform",
    "walk",
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "format_literal",
    "to_sql",
    "QueryBuilder",
    "col",
    "lit",
    "func",
    "star",
]
