"""Canonical statement forms and fingerprints for query-lifecycle caching.

The query pipeline memoizes mediation results and execution plans per
*statement* (see :mod:`repro.pipeline` and :mod:`repro.engine.plan_cache`).
Raw SQL text is a poor cache key — ``select r1.revenue from r1`` and
``SELECT r1.revenue FROM r1`` are the same query — so cache keys are built
from the **parsed AST**, which already discards whitespace, keyword case and
comment noise.  This module turns an AST into:

* :func:`canonical_form` — a stable structural serialization.  Table names,
  bindings and column qualifiers are case-folded (the catalog and schema
  lookups are case-insensitive throughout), while column *names* keep their
  case because they determine the output schema.  Conjunct order is **kept**:
  ``a AND b`` short-circuits left-to-right, so swapping conjuncts can change
  *which* evaluation error a row surfaces — sharing one cache entry between
  the two orderings would make errors depend on cache warmth.
* :func:`statement_fingerprint` — the SHA-256 digest of the canonical form,
  the fixed-size key the mediation and plan caches store.

Only SELECT/UNION statements are fingerprinted (they are all the pipeline
caches); other statements raise.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any, List

from repro.errors import SQLUnsupportedError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Node,
    Select,
    Star,
    TableRef,
    Union,
)


def _fold(identifier: Any) -> Any:
    return identifier.lower() if isinstance(identifier, str) else identifier


def _serialize(value: Any, parts: List[str]) -> None:
    """Append a canonical token stream for ``value`` to ``parts``."""
    if isinstance(value, Select):
        _serialize_select(value, parts)
        return
    if isinstance(value, Union):
        parts.append("Union(")
        parts.append("all" if value.all else "distinct")
        for select in value.selects:
            _serialize_select(select, parts)
        parts.append(")")
        return
    if isinstance(value, TableRef):
        parts.append(
            f"TableRef({_fold(value.name)},{_fold(value.alias)},{_fold(value.source)})"
        )
        return
    if isinstance(value, ColumnRef):
        # The qualifier is a table binding (case-insensitive); the name decides
        # the output column label and keeps its case.
        parts.append(f"ColumnRef({value.name},{_fold(value.table)})")
        return
    if isinstance(value, Star):
        parts.append(f"Star({_fold(value.table)})")
        return
    if isinstance(value, BinaryOp):
        parts.append(f"BinaryOp({value.op.upper()}")
        _serialize(value.left, parts)
        _serialize(value.right, parts)
        parts.append(")")
        return
    if isinstance(value, Node) and is_dataclass(value):
        parts.append(f"{type(value).__name__}(")
        for field_ in fields(value):
            _serialize(getattr(value, field_.name), parts)
        parts.append(")")
        return
    if isinstance(value, (list, tuple)):
        parts.append("[")
        for item in value:
            _serialize(item, parts)
        parts.append("]")
        return
    # Literal values and plain dataclass fields: repr keeps 1, 1.0, '1' and
    # True distinct, which SQL semantics require.
    parts.append(repr(value))


def _serialize_select(select: Select, parts: List[str]) -> None:
    parts.append("Select(")
    _serialize(select.items, parts)
    _serialize(select.tables, parts)
    _serialize(select.where, parts)
    _serialize(select.group_by, parts)
    _serialize(select.having, parts)
    _serialize(select.order_by, parts)
    parts.append(f"limit={select.limit!r},offset={select.offset!r},distinct={select.distinct!r}")
    parts.append(")")


def canonical_form(statement: Node) -> str:
    """The stable structural serialization used for statement fingerprints."""
    if not isinstance(statement, (Select, Union)):
        raise SQLUnsupportedError(
            f"only SELECT/UNION statements are fingerprinted, "
            f"not {type(statement).__name__}"
        )
    parts: List[str] = []
    _serialize(statement, parts)
    return "".join(parts)


def statement_fingerprint(statement: Node) -> str:
    """SHA-256 digest of the canonical form — the cache-key component."""
    return hashlib.sha256(canonical_form(statement).encode("utf-8")).hexdigest()
