"""Programmatic construction of SQL ASTs.

Two styles are supported:

* small expression helpers — :func:`col`, :func:`lit`, :func:`func` — combined
  with the operator overloads of :class:`Expr`, used by the mediation engine
  when it splices conversion arithmetic into a query
  (``col("r1.revenue") * lit(1000) * col("r3.rate")``);
* a fluent :class:`QueryBuilder` used by front ends (the QBE form handler in
  particular) to assemble complete SELECT statements without going through
  SQL text.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Union as TUnion

from repro.errors import SQLError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Node,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    Union,
)

ExprLike = TUnion["Expr", Node, int, float, str, bool, None]


class Expr:
    """A thin wrapper around an AST expression adding operator overloads.

    The wrapper is transparent: ``.node`` is the underlying AST node, and all
    helpers accept either wrapped or raw nodes (or Python constants, which are
    lifted to :class:`Literal`).
    """

    def __init__(self, node: Node):
        self.node = node

    # -- lifting ------------------------------------------------------------

    @staticmethod
    def wrap(value: ExprLike) -> "Expr":
        if isinstance(value, Expr):
            return value
        if isinstance(value, Node):
            return Expr(value)
        return Expr(Literal(value))

    # -- arithmetic ---------------------------------------------------------

    def _binary(self, op: str, other: ExprLike, reverse: bool = False) -> "Expr":
        other_expr = Expr.wrap(other)
        left, right = (other_expr.node, self.node) if reverse else (self.node, other_expr.node)
        return Expr(BinaryOp(op, left, right))

    def __add__(self, other: ExprLike) -> "Expr":
        return self._binary("+", other)

    def __radd__(self, other: ExprLike) -> "Expr":
        return self._binary("+", other, reverse=True)

    def __sub__(self, other: ExprLike) -> "Expr":
        return self._binary("-", other)

    def __rsub__(self, other: ExprLike) -> "Expr":
        return self._binary("-", other, reverse=True)

    def __mul__(self, other: ExprLike) -> "Expr":
        return self._binary("*", other)

    def __rmul__(self, other: ExprLike) -> "Expr":
        return self._binary("*", other, reverse=True)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return self._binary("/", other)

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return self._binary("/", other, reverse=True)

    def __neg__(self) -> "Expr":
        return Expr(UnaryOp("-", self.node))

    # -- comparisons (named methods; rich comparison operators are reserved
    #    for Python-level equality of the wrapper) ---------------------------

    def eq(self, other: ExprLike) -> "Expr":
        return self._binary("=", other)

    def ne(self, other: ExprLike) -> "Expr":
        return self._binary("<>", other)

    def lt(self, other: ExprLike) -> "Expr":
        return self._binary("<", other)

    def le(self, other: ExprLike) -> "Expr":
        return self._binary("<=", other)

    def gt(self, other: ExprLike) -> "Expr":
        return self._binary(">", other)

    def ge(self, other: ExprLike) -> "Expr":
        return self._binary(">=", other)

    # -- boolean ------------------------------------------------------------

    def and_(self, other: ExprLike) -> "Expr":
        return self._binary("AND", other)

    def or_(self, other: ExprLike) -> "Expr":
        return self._binary("OR", other)

    def not_(self) -> "Expr":
        return Expr(UnaryOp("NOT", self.node))

    # -- predicates ---------------------------------------------------------

    def in_(self, items: Iterable[ExprLike]) -> "Expr":
        nodes = tuple(Expr.wrap(item).node for item in items)
        return Expr(InList(self.node, nodes))

    def like(self, pattern: ExprLike) -> "Expr":
        return Expr(Like(self.node, Expr.wrap(pattern).node))

    def is_null(self, negated: bool = False) -> "Expr":
        return Expr(IsNull(self.node, negated))

    def as_(self, alias: str) -> SelectItem:
        """Turn the expression into an aliased select item."""
        return SelectItem(self.node, alias)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expr({self.node!r})"


def col(name: str) -> Expr:
    """Build a column reference; ``"r1.revenue"`` becomes a qualified ref."""
    if "." in name:
        table, _, column = name.partition(".")
        return Expr(ColumnRef(name=column, table=table))
    return Expr(ColumnRef(name=name))


def lit(value: Any) -> Expr:
    """Build a literal expression from a Python constant."""
    return Expr(Literal(value))


def func(name: str, *args: ExprLike, distinct: bool = False) -> Expr:
    """Build a function-call expression such as ``func("SUM", col("x"))``."""
    nodes = tuple(Expr.wrap(arg).node for arg in args)
    return Expr(FunctionCall(name=name.upper(), args=nodes, distinct=distinct))


def star(table: Optional[str] = None) -> Expr:
    """Build a ``*`` or ``table.*`` select-list expression."""
    return Expr(Star(table))


class QueryBuilder:
    """Fluent construction of SELECT statements and UNIONs.

    Example::

        query = (
            QueryBuilder()
            .select(col("r1.cname"), col("r1.revenue"))
            .from_table("r1")
            .from_table("r2")
            .where(col("r1.cname").eq(col("r2.cname")))
            .where(col("r1.revenue").gt(col("r2.expenses")))
            .build()
        )
    """

    def __init__(self) -> None:
        self._items: List[SelectItem] = []
        self._tables: List[Node] = []
        self._where: List[Node] = []
        self._group_by: List[Node] = []
        self._having: List[Node] = []
        self._order_by: List[OrderItem] = []
        self._limit: Optional[int] = None
        self._offset: Optional[int] = None
        self._distinct = False

    # -- select list --------------------------------------------------------

    def select(self, *exprs: TUnion[ExprLike, SelectItem]) -> "QueryBuilder":
        for expr in exprs:
            if isinstance(expr, SelectItem):
                self._items.append(expr)
            else:
                self._items.append(SelectItem(Expr.wrap(expr).node))
        return self

    def select_as(self, expr: ExprLike, alias: str) -> "QueryBuilder":
        self._items.append(SelectItem(Expr.wrap(expr).node, alias))
        return self

    def distinct(self, value: bool = True) -> "QueryBuilder":
        self._distinct = value
        return self

    # -- from / where -------------------------------------------------------

    def from_table(self, name: str, alias: Optional[str] = None, source: Optional[str] = None) -> "QueryBuilder":
        self._tables.append(TableRef(name=name, alias=alias, source=source))
        return self

    def where(self, condition: ExprLike) -> "QueryBuilder":
        self._where.append(Expr.wrap(condition).node)
        return self

    # -- grouping / ordering -------------------------------------------------

    def group_by(self, *exprs: ExprLike) -> "QueryBuilder":
        self._group_by.extend(Expr.wrap(expr).node for expr in exprs)
        return self

    def having(self, condition: ExprLike) -> "QueryBuilder":
        self._having.append(Expr.wrap(condition).node)
        return self

    def order_by(self, expr: ExprLike, ascending: bool = True) -> "QueryBuilder":
        self._order_by.append(OrderItem(Expr.wrap(expr).node, ascending))
        return self

    def limit(self, count: int, offset: Optional[int] = None) -> "QueryBuilder":
        self._limit = count
        self._offset = offset
        return self

    # -- building -----------------------------------------------------------

    def build(self) -> Select:
        """Produce the :class:`Select` AST node."""
        if not self._items:
            raise SQLError("a query needs at least one select item")
        where = _conjoin(self._where)
        having = _conjoin(self._having)
        return Select(
            items=tuple(self._items),
            tables=tuple(self._tables),
            where=where,
            group_by=tuple(self._group_by),
            having=having,
            order_by=tuple(self._order_by),
            limit=self._limit,
            offset=self._offset,
            distinct=self._distinct,
        )

    @staticmethod
    def union(selects: Sequence[Select], all: bool = False) -> Union:
        """Combine built SELECTs into a UNION statement."""
        if not selects:
            raise SQLError("UNION requires at least one SELECT")
        return Union(tuple(selects), all=all)


def _conjoin(conditions: Sequence[Node]) -> Optional[Node]:
    result: Optional[Node] = None
    for condition in conditions:
        result = condition if result is None else BinaryOp("AND", result, condition)
    return result
