"""An ODBC-flavoured client driver (DB-API style) over the HTTP tunnel.

The prototype ships "an ODBC driver which gives access to the mediation
services to any Windows95 and WindowsNT ODBC compliant applications such as
Microsoft Excel or Microsoft Access".  The closest purely-Python equivalent is
a driver following the shape of PEP 249 (DB-API 2.0): ``connect()`` returns a
:class:`Connection`, connections produce :class:`Cursor` objects with
``execute`` / ``fetchone`` / ``fetchall`` / ``description``, and everything a
cursor does travels through the same protocol the HTML QBE front end uses.

Extensions beyond DB-API (all optional keyword paths):

* ``cursor.execute(sql, context=...)`` — run the query in another receiver
  context;
* ``cursor.execute(sql, mediate=False)`` — skip mediation (naive answers);
* ``cursor.mediated_sql`` / ``cursor.conflicts`` — inspect what the mediator
  did to the last query;
* ``connection.prepare(sql, ...)`` — compile a statement once server-side;
  the returned :class:`PreparedStatement` executes many times without
  re-mediating or re-planning, and ``close()`` releases the server handle;
* ``connection.catalog()`` helpers for schema discovery;
* ``connect(..., auto_retry=True)`` — bounded client-side retries of
  retriable errors (overload sheds), honouring the server's
  ``retry_after_seconds`` hint with seeded jitter (see :class:`RetryPolicy`);
* ``connection.explain(sql)`` — the server's plan rendering, including
  per-operator estimated rows and their provenance (feedback vs defaults);
* ``connect(async_server=..., transport="native"|"http")`` — bind the
  connection to an event-loop :class:`~repro.server.aio.AsyncMediationServer`
  over a **persistent socket** (native framed protocol or HTTP/1.1
  keep-alive) instead of the per-request string tunnel; many statements ride
  one connection, and :class:`ConnectionPool` leases such connections across
  application threads.
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ClientError
from repro.federation import Federation
from repro.server.aio import MAGIC, FrameParser, encode_frame
from repro.server.http import (
    ChannelStatistics,
    HttpChannel,
    HttpRequest,
    HttpResponse,
    HttpWireParser,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    Request,
    Response,
    relation_from_payload,
)
from repro.server.server import MediationServer

#: DB-API module-level attributes.
apilevel = "2.0"
threadsafety = 0
paramstyle = "pyformat"


@dataclass
class RetryPolicy:
    """How a connection retries retriable (overload-shed) requests.

    An :class:`~repro.errors.OverloadError` shed is always safe to retry —
    nothing executed server-side — and carries ``retry_after_seconds``, which
    the retry loop honours; ``backoff_seconds`` (doubling per attempt, capped
    at ``max_backoff_seconds``) covers sheds without a hint.  Jitter is drawn
    from a seeded generator so retry storms de-synchronize deterministically
    under test.  ``sleep`` is injectable for tests.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    max_backoff_seconds: float = 2.0
    #: Fractional jitter added on top of each delay (0.25 = up to +25%).
    jitter: float = 0.25
    seed: Optional[int] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ClientError(
                f"auto_retry needs at least 1 attempt, got {self.max_attempts}"
            )
        self._random = random.Random(self.seed)

    def delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if retry_after is not None and retry_after > 0:
            base = float(retry_after)
        else:
            base = min(self.backoff_seconds * (2 ** (attempt - 1)),
                       self.max_backoff_seconds)
        return base * (1.0 + self.jitter * self._random.random())


def _retry_policy(auto_retry: Union[bool, int, RetryPolicy, None]) -> Optional[RetryPolicy]:
    if auto_retry is None or auto_retry is False:
        return None
    if auto_retry is True:
        return RetryPolicy()
    if isinstance(auto_retry, RetryPolicy):
        return auto_retry
    if isinstance(auto_retry, int):
        return RetryPolicy(max_attempts=auto_retry)
    raise ClientError(
        f"auto_retry must be a bool, an attempt count or a RetryPolicy, "
        f"got {type(auto_retry).__name__}"
    )


def connect(federation: Optional[Federation] = None, server: Optional[MediationServer] = None,
            context: Optional[str] = None, tenant: Optional[str] = None,
            auto_retry: Union[bool, int, RetryPolicy, None] = False,
            async_server: Optional[Any] = None,
            transport: str = "native") -> "Connection":
    """Open a connection to a mediation server.

    Either an existing :class:`MediationServer` or a :class:`Federation` (from
    which a server is created) must be given — there being no real network,
    "connecting" means binding an HTTP channel to the server in process.
    ``tenant`` names the receiver/session identity the server's admission
    gateway accounts quotas against; every request of this connection
    carries it.  ``auto_retry`` opts the connection into bounded client-side
    retries of retriable errors (overload sheds): ``True`` for the default
    :class:`RetryPolicy`, an integer for a custom attempt bound, or a policy
    instance for full control.

    ``async_server`` binds the connection to an event-loop
    :class:`~repro.server.aio.AsyncMediationServer` instead: the connection
    opens **one persistent socket** (a real OS socket served by the loop)
    and reuses it across statements.  ``transport`` selects the wire
    protocol on that socket — ``"native"`` (length-prefixed COIN/1 frames
    with a session handshake) or ``"http"`` (HTTP/1.1 keep-alive).
    """
    if async_server is not None:
        if transport == "native":
            channel: Any = NativeProtocolChannel(
                async_server.connect_socket, tenant=tenant)
        elif transport == "http":
            channel = PooledHttpChannel(
                async_server.connect_socket, tenant=tenant)
        else:
            raise ClientError(
                f"unknown transport {transport!r}; use 'native' or 'http'")
        return Connection(async_server.server, context, tenant=tenant,
                          retry_policy=_retry_policy(auto_retry),
                          channel=channel)
    if server is None:
        if federation is None:
            raise ClientError("connect() needs a federation or a server")
        server = MediationServer(federation)
    return Connection(server, context, tenant=tenant,
                      retry_policy=_retry_policy(auto_retry))


class Connection:
    """A DB-API style connection bound to one receiver context."""

    #: Operations that execute (or compile) a statement: the driver mints a
    #: trace id for each, carried on the protocol envelope and the
    #: ``X-Coin-Trace`` header, so the server's span tree is named by the
    #: edge that issued the statement.
    TRACED_OPERATIONS = frozenset({
        "query", "open_cursor", "execute_prepared", "prepare",
        "mediate", "explain",
    })

    def __init__(self, server: MediationServer, context: Optional[str] = None,
                 tenant: Optional[str] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 channel: Optional[Any] = None):
        self._server = server
        # Any object with HttpChannel's ``post`` shape works: the default
        # per-request tunnel, or a persistent socket channel bound to an
        # event-loop server.
        self._channel = channel if channel is not None else server.channel()
        self.context = context
        self.tenant = tenant
        self.retry_policy = retry_policy
        #: Retriable errors this connection absorbed by retrying.
        self.auto_retries = 0
        self._trace_counter = itertools.count(1)
        #: Trace id of the most recently issued statement (even when the
        #: server runs untraced — the id is minted client-side).
        self.last_trace_id: Optional[str] = None

    # -- DB-API surface -----------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._ensure_open()
        return Cursor(self)

    def close(self) -> None:
        channel, self._channel = self._channel, None
        if channel is not None and hasattr(channel, "close"):
            channel.close()

    def commit(self) -> None:
        """Provided for DB-API compatibility; the prototype is read-only."""
        self._ensure_open()

    def rollback(self) -> None:
        self._ensure_open()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- catalog helpers -------------------------------------------------------------

    def sources(self) -> List[str]:
        return self._call("list_sources")["sources"]

    def relations(self, source: Optional[str] = None) -> List[str]:
        return self._call("list_relations", source=source)["relations"]

    def describe(self, relation: str) -> List[Dict[str, Any]]:
        return self._call("describe", relation=relation)["attributes"]

    def contexts(self) -> List[str]:
        return self._call("contexts")["contexts"]

    # -- prepared statements ----------------------------------------------------------

    def prepare(self, sql: str, context: Optional[str] = None,
                mediate: bool = True,
                consistency: str = "raw",
                timeout_seconds: Optional[float] = None,
                on_source_error: Optional[str] = None) -> "PreparedStatement":
        """Compile a statement once server-side for repeated execution.

        ``consistency`` pins the statement's answer mode (``"raw"``,
        ``"certain"`` or ``"possible"``) for every later execution;
        ``timeout_seconds`` and ``on_source_error`` likewise pin the
        statement's deadline and source-failure policy.
        """
        payload = self._call(
            "prepare",
            sql=sql,
            context=context or self.context,
            mediate=mediate,
            consistency=consistency,
            timeout_seconds=timeout_seconds,
            on_source_error=on_source_error,
        )
        return PreparedStatement(self, payload)

    # -- plumbing ---------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._channel is None:
            raise ClientError("connection is closed")

    def _call(self, operation: str, **parameters: Any) -> Dict[str, Any]:
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        for attempt in range(1, attempts + 1):
            try:
                return self._call_once(operation, parameters)
            except ClientError as error:
                if (policy is None or attempt >= attempts
                        or not getattr(error, "retriable", False)):
                    raise
                self.auto_retries += 1
                policy.sleep(policy.delay(attempt, error.retry_after_seconds))
        raise ClientError("unreachable: retry loop exhausted")  # pragma: no cover

    def _mint_trace_id(self) -> str:
        return (f"odbc{next(self._trace_counter):04x}"
                f"{random.getrandbits(40):010x}")

    def _call_once(self, operation: str, parameters: Dict[str, Any]) -> Dict[str, Any]:
        self._ensure_open()
        cleaned = {name: value for name, value in parameters.items() if value is not None}
        if self.tenant is not None:
            cleaned.setdefault("tenant", self.tenant)
        request = Request(operation=operation, parameters=cleaned)
        headers: Optional[Dict[str, str]] = None
        if operation in self.TRACED_OPERATIONS:
            request.trace_id = self._mint_trace_id()
            self.last_trace_id = request.trace_id
            headers = {MediationServer.TRACE_HEADER: request.trace_id}
        http_response = self._channel.post(MediationServer.ENDPOINT,
                                           request.to_json(), headers=headers)
        response = Response.from_json(http_response.body)
        if not response.ok:
            error = ClientError(f"{response.error_kind}: {response.error}")
            # Structured error metadata so callers can build retry loops
            # without parsing messages: an overload shed is always safe to
            # retry (nothing executed) after ``retry_after_seconds``.
            error.error_kind = response.error_kind
            error.retriable = response.error_kind == "OverloadError"
            error.retry_after_seconds = response.retry_after_seconds
            raise error
        return response.payload

    def explain(self, sql: str, context: Optional[str] = None) -> str:
        """The server's plan rendering for ``sql``: join order, source
        requests, and per-operator estimated rows with their provenance
        (runtime feedback vs textbook defaults)."""
        return self._call("explain", sql=sql, context=context or self.context)["plan"]

    def status(self) -> Dict[str, Any]:
        """Server statistics, including the ``server_load`` block."""
        return self._call("status")

    def metrics(self) -> Dict[str, Any]:
        """The server's metrics registry: structured snapshot plus the
        Prometheus text exposition under the ``exposition`` key."""
        return self._call("metrics")


class Cursor:
    """A DB-API style cursor issuing mediated queries.

    Two execution modes share one fetching surface:

    * the default materialized mode ships the whole result in the ``query``
      response (the historical behaviour);
    * ``execute(sql, stream=True)`` opens a **server-side cursor** instead:
      the response carries only the description, and ``fetchone`` /
      ``fetchmany`` / ``fetchall`` pull row batches over ``fetch_cursor`` on
      demand — first rows arrive while the server is still fetching slower
      sources, and ``close()`` releases the server cursor (cancelling
      outstanding source round trips) without draining it.
    """

    arraysize = 1

    #: Rows pulled per ``fetch_cursor`` round trip in streaming mode.
    DEFAULT_STREAM_BATCH = 128

    def __init__(self, connection: Connection):
        self.connection = connection
        self._rows: List[Tuple[Any, ...]] = []
        self._position = 0
        self.description: Optional[List[Tuple]] = None
        self.rowcount = -1
        #: Mediation metadata of the last execute().
        self.mediated_sql: Optional[str] = None
        self.conflicts: List[str] = []
        self.column_labels: List[str] = []
        #: Execution-report snapshot of the last execute() — materialized mode
        #: fills it from the query response, streaming mode from the final
        #: batch; its ``resilience`` block labels degraded (partial) answers.
        self.execution: Optional[Dict[str, Any]] = None
        #: Trace id of the last execute(), and — when the server traced and
        #: sampled the statement — the finished span tree itself (a nested
        #: dict; streaming mode delivers it with the final batch).
        self.trace_id: Optional[str] = None
        self.trace: Optional[Dict[str, Any]] = None
        #: Streaming state: the open server cursor (None in materialized mode).
        self._cursor_id: Optional[str] = None
        self._stream_done = True
        self._batch_size = self.DEFAULT_STREAM_BATCH
        #: Rows already consumed and trimmed from the buffer (streaming mode).
        self._stream_consumed = 0

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str, parameters: Optional[Dict[str, Any]] = None,
                context: Optional[str] = None, mediate: bool = True,
                stream: bool = False, batch_size: Optional[int] = None,
                consistency: str = "raw",
                timeout_seconds: Optional[float] = None,
                on_source_error: Optional[str] = None) -> "Cursor":
        """Execute a query; ``parameters`` are pyformat-substituted client-side.

        ``consistency="certain"``/``"possible"`` answers under the declared
        integrity constraints instead of over the raw instances; the
        resulting execution report (``query`` responses) carries the
        ``consistency`` block describing what the rewrite/fallback did.
        ``timeout_seconds`` bounds the statement's server-side wall clock
        (expiry raises a ``DeadlineExceededError``-flavoured client error);
        ``on_source_error="partial"`` answers from surviving branches when a
        source stays dead, with the dropped branches recorded in the
        execution report's ``resilience`` block.
        """
        if parameters:
            sql = sql % {name: _quote(value) for name, value in parameters.items()}
        if stream:
            payload = self.connection._call(
                "open_cursor",
                sql=sql,
                context=context or self.connection.context,
                mediate=mediate,
                consistency=consistency,
                timeout_seconds=timeout_seconds,
                on_source_error=on_source_error,
            )
            return self._open_stream(payload, batch_size)
        payload = self.connection._call(
            "query",
            sql=sql,
            context=context or self.connection.context,
            mediate=mediate,
            consistency=consistency,
            timeout_seconds=timeout_seconds,
            on_source_error=on_source_error,
        )
        return self._load(payload)

    def _load(self, payload: Dict[str, Any]) -> "Cursor":
        """Populate the cursor from a query/execute_prepared response payload."""
        self._release_stream()
        relation = relation_from_payload(payload["relation"])
        self._rows = [tuple(row) for row in relation.rows]
        self._position = 0
        self.rowcount = len(self._rows)
        self.description = [
            (attribute.name, attribute.type.value, None, None, None, None, None)
            for attribute in relation.schema
        ]
        self.mediated_sql = payload.get("mediated_sql")
        self.conflicts = payload.get("conflicts", [])
        self.column_labels = payload.get("column_labels", [])
        self.execution = payload.get("execution")
        self.trace_id = payload.get("trace_id")
        self.trace = payload.get("trace")
        return self

    def _open_stream(self, payload: Dict[str, Any],
                     batch_size: Optional[int]) -> "Cursor":
        """Bind this cursor to a freshly opened server-side cursor."""
        self._release_stream()
        self._rows = []
        self._position = 0
        self.rowcount = -1
        self._cursor_id = payload["cursor_id"]
        self._stream_done = False
        self._stream_consumed = 0
        self._batch_size = batch_size or self.DEFAULT_STREAM_BATCH
        self.description = [
            (column, type_name, None, None, None, None, None)
            for column, type_name in zip(payload["columns"], payload["types"])
        ]
        self.mediated_sql = payload.get("mediated_sql")
        self.conflicts = payload.get("conflicts", [])
        self.column_labels = payload.get("column_labels", [])
        self.execution = None  # arrives with the final batch
        self.trace_id = payload.get("trace_id")
        self.trace = None  # the finished tree arrives with the final batch
        return self

    def executemany(self, sql: str, seq_of_parameters: Sequence[Dict[str, Any]]) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(sql, parameters)
        return self

    # -- fetching --------------------------------------------------------------------

    def _buffered(self) -> int:
        return len(self._rows) - self._position

    def _fill(self, needed: Optional[int]) -> None:
        """Pull server batches until ``needed`` rows are buffered (None = all).

        The consumed prefix is trimmed before each pull, so client memory in
        streaming mode is bounded by the unconsumed tail (typically one
        batch), not the full result — the point of streaming in the first
        place.
        """
        while not self._stream_done and (needed is None or self._buffered() < needed):
            if self._position:
                self._stream_consumed += self._position
                del self._rows[: self._position]
                self._position = 0
            count = self._batch_size
            if needed is not None:
                count = max(count, needed - self._buffered())
            payload = self.connection._call(
                "fetch_cursor", cursor_id=self._cursor_id, count=count
            )
            self._rows.extend(tuple(row) for row in payload.get("rows", []))
            if payload.get("done"):
                # The server discards exhausted cursors itself.
                self._stream_done = True
                self._cursor_id = None
                self.rowcount = self._stream_consumed + len(self._rows)
                self.execution = payload.get("execution")
                self.trace_id = payload.get("trace_id") or self.trace_id
                self.trace = payload.get("trace")

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        self._fill(1)
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        count = size if size is not None else self.arraysize
        self._fill(count)
        rows = self._rows[self._position : self._position + count]
        self._position += len(rows)
        return rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        self._fill(None)
        rows = self._rows[self._position :]
        self._position = len(self._rows)
        return rows

    def close(self) -> None:
        """Release buffered rows and any open server cursor (idempotent)."""
        self._release_stream()
        self._rows = []
        self.description = None

    def _release_stream(self) -> None:
        if self._cursor_id is None:
            return
        cursor_id, self._cursor_id = self._cursor_id, None
        self._stream_done = True
        try:
            self.connection._call("close_cursor", cursor_id=cursor_id)
        except ClientError:
            # Server-side close is idempotent; a failed close (evicted
            # handle, dropped connection) leaves nothing to release.
            pass

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row


class PreparedStatement:
    """A server-side compiled statement: execute many, mediate/plan never.

    Mirrors the prepared-statement shape of ODBC drivers: the server keeps
    the mediated, planned form under ``statement_id``; each ``execute()``
    ships only the handle and returns a fresh populated :class:`Cursor`.
    """

    def __init__(self, connection: Connection, payload: Dict[str, Any]):
        self.connection = connection
        self.statement_id: Optional[str] = payload["statement_id"]
        self.original_sql: str = payload.get("original_sql", "")
        self.mediated_sql: str = payload.get("mediated_sql", "")
        self.branch_count: int = payload.get("branch_count", 0)
        self.conflicts: List[str] = payload.get("conflicts", [])
        self.receiver_context: Optional[str] = payload.get("receiver_context")

    def execute(self, stream: bool = False,
                batch_size: Optional[int] = None) -> Cursor:
        """Run the prepared statement; returns a populated cursor.

        ``stream=True`` opens a server-side cursor on the prepared plan
        instead of shipping the whole result: the returned cursor pulls
        batches on demand exactly like ``Cursor.execute(..., stream=True)``.
        """
        if self.statement_id is None:
            raise ClientError("prepared statement is closed")
        if stream:
            payload = self.connection._call(
                "open_cursor", statement_id=self.statement_id
            )
            return Cursor(self.connection)._open_stream(payload, batch_size)
        payload = self.connection._call(
            "execute_prepared", statement_id=self.statement_id
        )
        return Cursor(self.connection)._load(payload)

    def close(self) -> None:
        """Release the server-side handle (idempotent)."""
        if self.statement_id is None:
            return
        self.connection._call("close_prepared", statement_id=self.statement_id)
        self.statement_id = None

    def __enter__(self) -> "PreparedStatement":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _PooledSocketChannel:
    """Shared plumbing of the persistent-socket client channels.

    One channel owns one OS socket to an event-loop server and reuses it
    across requests (that is the whole point: no per-statement connection
    setup).  If a request fails on a **reused** socket before completing —
    typically because the server's idle reaper closed the session — the
    channel transparently reconnects once and replays; nothing executed
    server-side, so the replay is safe.  A failure on a *fresh* socket is a
    real error and propagates.
    """

    def __init__(self, connector: Callable[[], Any], timeout: float = 30.0):
        self._connector = connector
        self._timeout = timeout
        self._sock: Optional[Any] = None
        self.statistics = ChannelStatistics()

    # -- subclass hooks --------------------------------------------------------------

    def _handshake(self) -> None:
        """Wire-protocol setup after the socket opens."""

    def _exchange(self, path: str, body: str,
                  headers: Optional[Dict[str, str]]) -> HttpResponse:
        raise NotImplementedError

    def _reset(self) -> None:
        """Discard per-connection parse state."""

    # -- channel surface -------------------------------------------------------------

    def post(self, path: str, body: str,
             headers: Optional[Dict[str, str]] = None) -> HttpResponse:
        for attempt in (1, 2):
            reused = self._sock is not None
            if not reused:
                self._open()
            try:
                response = self._exchange(path, body, headers)
            except (OSError, EOFError) as exc:
                self.close()
                if reused and attempt == 1:
                    # The server reaped the idle connection between
                    # statements; reconnect once and replay.
                    continue
                error = ClientError(f"connection lost: {exc}")
                error.error_kind = "ConnectionError"
                error.retriable = False
                raise error from exc
            if reused:
                self.statistics.requests_reusing_connection += 1
            self.statistics.round_trips += 1
            return response
        raise ClientError("unreachable: reconnect loop exhausted")  # pragma: no cover

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        self._reset()

    def _open(self) -> None:
        sock = self._connector()
        sock.settimeout(self._timeout)
        self._sock = sock
        self.statistics.connections_opened += 1
        try:
            self._handshake()
        except BaseException:
            self.close()
            raise

    def _send(self, data: bytes) -> None:
        self._sock.sendall(data)
        self.statistics.bytes_sent += len(data)

    def _recv(self) -> bytes:
        data = self._sock.recv(65536)
        if not data:
            raise EOFError("server closed the connection")
        self.statistics.bytes_received += len(data)
        return data


class NativeProtocolChannel(_PooledSocketChannel):
    """Client side of the framed native protocol (``COIN/1``).

    On connect it sends the magic preamble plus a hello frame carrying the
    tenant, and the server replies with a session — prepared statements and
    cursors opened on this channel live exactly as long as the session does.
    Each request is then one length-prefixed JSON frame; responses are
    re-shaped into :class:`HttpResponse` so :class:`Connection` is oblivious
    to which transport carried them.
    """

    def __init__(self, connector: Callable[[], Any],
                 tenant: Optional[str] = None, timeout: float = 30.0):
        super().__init__(connector, timeout)
        self._tenant = tenant
        self._parser = FrameParser()
        self._next_request_id = 0
        self.session_id: Optional[str] = None

    def _handshake(self) -> None:
        self._parser = FrameParser()
        self._send(MAGIC)
        self._send_frame(json.dumps({
            "hello": {"tenant": self._tenant, "protocol": PROTOCOL_VERSION},
        }))
        reply = json.loads(self._recv_frame())
        if not reply.get("ok"):
            raise ClientError(f"native handshake refused: {reply!r}")
        self.session_id = reply.get("session_id")

    def _exchange(self, path: str, body: str,
                  headers: Optional[Dict[str, str]]) -> HttpResponse:
        self._next_request_id += 1
        self._send_frame(json.dumps({
            "id": self._next_request_id,
            "request": json.loads(body),
        }))
        envelope = json.loads(self._recv_frame())
        response = envelope.get("response") or {}
        if response.get("ok"):
            status, reason = 200, "OK"
        elif response.get("error_kind") == "OverloadError":
            status, reason = 503, "Service Unavailable"
        else:
            status, reason = 422, "Unprocessable Entity"
        return HttpResponse(status=status, reason=reason,
                            body=json.dumps(response))

    def _reset(self) -> None:
        self._parser = FrameParser()
        self.session_id = None

    def close(self) -> None:
        if self._sock is not None:
            try:
                # Polite close: lets the server retire the session without
                # waiting for EOF.  Best effort only.
                self._send_frame(json.dumps({"close": True}))
            except OSError:
                pass
        super().close()

    def _send_frame(self, text: str) -> None:
        self._send(encode_frame(text.encode("utf-8")))

    def _recv_frame(self) -> bytes:
        while True:
            frame = self._parser.next_frame()
            if frame is not None:
                return frame
            self._parser.feed(self._recv())


class PooledHttpChannel(_PooledSocketChannel):
    """HTTP/1.1 keep-alive client over one persistent socket.

    Requests go out as HTTP/1.1 (persistent by default); responses are
    parsed incrementally off the socket by a per-connection
    :class:`HttpWireParser`.  If either side asks to close, the socket is
    dropped and the next request reconnects.
    """

    def __init__(self, connector: Callable[[], Any],
                 tenant: Optional[str] = None, timeout: float = 30.0):
        super().__init__(connector, timeout)
        self._tenant = tenant
        self._parser = HttpWireParser()

    def _handshake(self) -> None:
        self._parser = HttpWireParser()

    def _reset(self) -> None:
        self._parser = HttpWireParser()

    def _exchange(self, path: str, body: str,
                  headers: Optional[Dict[str, str]]) -> HttpResponse:
        send_headers = dict(headers or {})
        if self._tenant is not None:
            send_headers.setdefault(MediationServer.TENANT_HEADER, self._tenant)
        request = HttpRequest(method="POST", path=path, headers=send_headers,
                              body=body, version="HTTP/1.1")
        self._send(request.serialize().encode("utf-8"))
        response = self._recv_response()
        if not (request.wants_keep_alive() and response.wants_keep_alive()):
            self.close()
        return response

    def _recv_response(self) -> HttpResponse:
        while True:
            response = self._parser.next_response()
            if response is not None:
                return response
            self._parser.feed(self._recv())


class ConnectionPool:
    """A bounded pool of reusable connections, leased across threads.

    ``factory`` opens one connection — e.g. ``lambda: connect(
    async_server=aio, transport="native", tenant="acme")``.  Connections are
    created lazily up to ``size``, handed out LIFO (the warmest connection,
    whose socket and server session are most recently used, goes first), and
    returned on :meth:`release` or when the :meth:`connection` context
    manager exits.  When all ``size`` connections are leased, acquirers
    block up to ``timeout_seconds``.
    """

    def __init__(self, factory: Callable[[], Connection], size: int = 8,
                 timeout_seconds: float = 30.0):
        if size < 1:
            raise ClientError(f"pool size must be at least 1, got {size}")
        self._factory = factory
        self._size = size
        self._timeout = timeout_seconds
        self._idle: List[Connection] = []
        self._condition = threading.Condition(threading.Lock())
        self._created = 0
        self._closed = False
        self.leases = 0
        self.lease_waits = 0

    def acquire(self) -> Connection:
        deadline = time.monotonic() + self._timeout
        waited = False
        with self._condition:
            while True:
                if self._closed:
                    raise ClientError("connection pool is closed")
                if self._idle:
                    connection: Optional[Connection] = self._idle.pop()
                    break
                if self._created < self._size:
                    self._created += 1
                    connection = None  # create outside the lock
                    break
                if not waited:
                    waited = True
                    self.lease_waits += 1
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ClientError(
                        f"connection pool exhausted: all {self._size} "
                        f"connections leased for {self._timeout:.1f}s")
                self._condition.wait(remaining)
            self.leases += 1
        if connection is None:
            try:
                connection = self._factory()
            except BaseException:
                with self._condition:
                    self._created -= 1
                    self._condition.notify()
                raise
        return connection

    def release(self, connection: Connection) -> None:
        close_now = False
        with self._condition:
            if self._closed:
                close_now = True
            else:
                self._idle.append(connection)
                self._condition.notify()
        if close_now:
            connection.close()

    @contextmanager
    def connection(self):
        connection = self.acquire()
        try:
            yield connection
        finally:
            self.release(connection)

    def close(self) -> None:
        with self._condition:
            self._closed = True
            idle, self._idle = self._idle, []
            self._condition.notify_all()
        for connection in idle:
            connection.close()

    def snapshot(self) -> Dict[str, Any]:
        with self._condition:
            return {
                "size": self._size,
                "created": self._created,
                "idle": len(self._idle),
                "leased": self._created - len(self._idle),
                "leases": self.leases,
                "lease_waits": self.lease_waits,
                "closed": self._closed,
            }


def _quote(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
