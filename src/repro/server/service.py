"""A process-embedded service facade over the federation + admission gateway.

Applications that live in the same process as the federation do not need the
wire protocol at all — but they *do* need the serving disciplines the wire
transports get for free: admission control, tenant quota accounting, deadline
shedding, and streaming backpressure.  :class:`FederatedQueryService` is that
facade: every statement runs under the :class:`~repro.server.gateway.
AdmissionGateway`, and every streaming result is a :class:`ResultHandle`
holding one of the gateway's bounded stream permits until it is closed or
exhausted — exactly the contract the protocol cursors and chunked HTTP
responses obey.

Shape::

    service = federation.service()                 # or FederatedQueryService(...)
    summary = service.execute("select ...", tenant="acme")
    for row in summary.rows: ...

    with service.submit("select ...", tenant="acme") as handle:
        for batch in handle.batches():             # permit held while open
            consume(batch)
    handle.summary().row_count
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ClientError
from repro.federation import Federation, FederationCursor
from repro.mediation.explain import conflict_summary
from repro.obs import statement_fingerprint
from repro.obs.trace import current_span, deactivate_span
from repro.server.gateway import AdmissionGateway, GatewayConfig

__all__ = ["ExecutionSummary", "ResultHandle", "FederatedQueryService"]


@dataclass
class ExecutionSummary:
    """What one statement did: answer metadata plus the execution report."""

    #: Materialized answer rows (``execute`` only; None for streamed results,
    #: whose rows went through the handle instead).
    rows: Optional[List[Tuple[Any, ...]]]
    row_count: int
    columns: List[str]
    column_labels: List[str]
    mediated_sql: str
    branch_count: int
    conflicts: List[str]
    consistency: str
    tenant: Optional[str]
    elapsed_seconds: float
    #: The engine's execution-report snapshot (scheduler, resilience,
    #: consistency blocks — see ``ExecutionReport.snapshot()``).
    execution: Dict[str, Any] = field(default_factory=dict)
    #: Trace id of the statement's span tree (None when untraced) and its
    #: one-line rendering — ``statement(12.3ms: parse, plan, execute)``.
    trace_id: Optional[str] = None
    trace_summary: Optional[str] = None


class ResultHandle:
    """A streaming answer holding one gateway stream permit.

    Wraps a :class:`~repro.federation.FederationCursor`; rows are pulled in
    bounded batches (``batches()`` / ``fetchmany`` / iteration), so consumer
    memory holds one batch, and the producer runs under the engine's own
    flow control.  The stream permit — the gateway's backpressure token — is
    released exactly once, on :meth:`close` or when the result is drained.
    """

    def __init__(self, cursor: FederationCursor, release: Callable[[], None],
                 tenant: Optional[str], batch_size: int = 256,
                 trace_root=None):
        if batch_size < 1:
            raise ClientError(f"batch_size must be positive, got {batch_size}")
        self._cursor = cursor
        self._release = release
        self._batch_size = batch_size
        self._trace_root = trace_root
        self.tenant = tenant
        self.rows_streamed = 0
        self.closed = False
        self._started = time.perf_counter()
        self._elapsed: Optional[float] = None

    # -- metadata ---------------------------------------------------------------------

    @property
    def description(self) -> List[Tuple]:
        return self._cursor.description

    @property
    def columns(self) -> List[str]:
        return [attribute.name for attribute in self._cursor.schema]

    @property
    def mediated_sql(self) -> str:
        return self._cursor.mediated_sql

    # -- consuming --------------------------------------------------------------------

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        if self.closed:
            return []
        rows = self._cursor.fetchmany(size or self._batch_size)
        self.rows_streamed += len(rows)
        if not rows or self._cursor.exhausted:
            self._finish()
        return rows

    def batches(self) -> Iterator[List[Tuple[Any, ...]]]:
        """Yield result batches until exhaustion; releases the permit after
        the last one."""
        while True:
            rows = self.fetchmany()
            if not rows:
                return
            yield rows

    def fetchall(self) -> List[Tuple[Any, ...]]:
        rows: List[Tuple[Any, ...]] = []
        for batch in self.batches():
            rows.extend(batch)
        return rows

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        for batch in self.batches():
            yield from batch

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Cancel outstanding fetches and release the permit (idempotent)."""
        self._finish()

    def _finish(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._elapsed = time.perf_counter() - self._started
        try:
            self._cursor.close()
        finally:
            self._release()

    def __enter__(self) -> "ResultHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def summary(self) -> ExecutionSummary:
        """The statement's summary; the execution report reflects work done
        so far (complete once the handle is drained or closed)."""
        mediation = self._cursor.mediation
        elapsed = (self._elapsed if self._elapsed is not None
                   else time.perf_counter() - self._started)
        return ExecutionSummary(
            rows=None,
            row_count=self.rows_streamed,
            columns=self.columns,
            column_labels=[annotation.label()
                           for annotation in self._cursor.annotations],
            mediated_sql=mediation.sql,
            branch_count=mediation.branch_count,
            conflicts=conflict_summary(mediation),
            consistency=getattr(self._cursor.prepared, "consistency", "raw"),
            tenant=self.tenant,
            elapsed_seconds=elapsed,
            execution=self._cursor.report.snapshot(),
            trace_id=(self._trace_root.trace_id
                      if self._trace_root is not None else None),
            trace_summary=(self._trace_root.summary()
                           if self._trace_root is not None else None),
        )


class FederatedQueryService:
    """The public in-process query surface: gateway-governed, handle-based.

    ``gateway`` may be an existing :class:`AdmissionGateway` (e.g. shared
    with a wire server so both fronts drain one budget), a
    :class:`GatewayConfig`, or None for defaults.
    """

    def __init__(self, federation: Federation,
                 gateway: Union[AdmissionGateway, GatewayConfig, None] = None):
        self.federation = federation
        if isinstance(gateway, AdmissionGateway):
            self.gateway = gateway
        else:
            self.gateway = AdmissionGateway(gateway)

    # -- tracing at the edge ----------------------------------------------------------

    def _open_root(self, sql: str, tenant: Optional[str], **attributes):
        """The service is a trace edge, like the wire server: the root opens
        *before* admission so queue waits and sheds are part of the tree."""
        tracer = self.federation.observability.tracer
        if not tracer.enabled or current_span().recording:
            return None, None
        root = tracer.start_trace(
            "statement", fingerprint=statement_fingerprint(sql),
            tenant=tenant, **attributes,
        )
        if not root.recording:
            return None, None
        return root, root.activate()

    # -- statements -------------------------------------------------------------------

    def execute(self, sql: str, context: Optional[str] = None,
                tenant: Optional[str] = None, mediate: bool = True,
                consistency: str = "raw",
                timeout_seconds: Optional[float] = None,
                on_source_error: Optional[str] = None) -> ExecutionSummary:
        """Run ``sql`` to completion under admission control."""
        started = time.perf_counter()

        def work(remaining: Optional[float]):
            return self.federation.query(
                sql, context, mediate=mediate, consistency=consistency,
                timeout_seconds=remaining,
                on_source_error=on_source_error or "fail",
            )

        root, token = self._open_root(sql, tenant, service="execute")
        try:
            answer = self.gateway.run(work, tenant=tenant,
                                      timeout_seconds=timeout_seconds)
        except BaseException as exc:
            if root is not None:
                deactivate_span(token)
                root.finish(error=exc)
            raise
        if root is not None:
            deactivate_span(token)
            root.finish()
        rows = [tuple(row) for row in answer.relation.rows]
        return ExecutionSummary(
            rows=rows,
            row_count=len(rows),
            columns=[attribute.name for attribute in answer.relation.schema],
            column_labels=[annotation.label()
                           for annotation in answer.annotations],
            mediated_sql=answer.mediated_sql,
            branch_count=answer.mediation.branch_count,
            conflicts=conflict_summary(answer.mediation),
            consistency=consistency,
            tenant=tenant,
            elapsed_seconds=time.perf_counter() - started,
            execution=answer.execution.report.snapshot(),
            trace_id=root.trace_id if root is not None else None,
            trace_summary=root.summary() if root is not None else None,
        )

    def submit(self, sql: str, context: Optional[str] = None,
               tenant: Optional[str] = None, mediate: bool = True,
               consistency: str = "raw",
               timeout_seconds: Optional[float] = None,
               on_source_error: Optional[str] = None,
               batch_size: int = 256) -> ResultHandle:
        """Open a streaming statement; returns a :class:`ResultHandle`.

        The handle's batches flow under the gateway's stream-permit
        backpressure: the permit is claimed *before* any work (an
        over-streamed service sheds the submit, retriable), and held until
        the handle closes.
        """
        release = self.gateway.acquire_stream(tenant)
        root, token = self._open_root(sql, tenant, service="submit", stream=True)
        try:
            cursor = self.gateway.run(
                lambda remaining: self.federation.query(
                    sql, context, mediate=mediate, stream=True,
                    consistency=consistency, timeout_seconds=remaining,
                    on_source_error=on_source_error or "fail",
                ),
                tenant=tenant, timeout_seconds=timeout_seconds,
            )
        except BaseException as exc:
            if root is not None:
                deactivate_span(token)
                root.finish(error=exc)
            release()
            raise
        if root is not None:
            deactivate_span(token)
            # The root closes with the handle: only then are the stream and
            # fetch spans complete.
            cursor.stream.on_close(lambda report, _root=root: _root.finish())
        return ResultHandle(cursor, release, tenant, batch_size=batch_size,
                            trace_root=root)

    def explain(self, sql: str, context: Optional[str] = None) -> str:
        """The server's plan rendering; when tracing is on, the explain runs
        under its own trace and the rendering ends with a ``-- trace`` line
        (trace id + one-line span summary) naming the buffered tree."""
        root, token = self._open_root(sql, tenant=None, service="explain")
        try:
            plan = self.federation.explain_plan(sql, context)
        except BaseException as exc:
            if root is not None:
                deactivate_span(token)
                root.finish(error=exc)
            raise
        if root is None:
            return plan
        deactivate_span(token)
        root.finish()
        return f"{plan}\n-- trace {root.trace_id}: {root.summary()}"

    # -- operations -------------------------------------------------------------------

    def drain(self, timeout_seconds: Optional[float] = None) -> bool:
        """Stop admitting, wait for in-flight statements and open handles."""
        self.gateway.begin_drain()
        return self.gateway.await_drain(timeout_seconds)

    def resume(self) -> None:
        self.gateway.resume()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "gateway": self.gateway.snapshot(),
            "observability": self.federation.observability.snapshot(),
        }
