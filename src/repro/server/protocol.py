"""The client/server protocol tunnelled over (simulated) HTTP.

"On the receiver's side we have implemented an Application Programming
Interface (API) of the family of the ODBC protocol.  The protocol supporting
this API is currently tunneled in the HyperText Transfer Protocol (HTTP) of
the World Wide Web."

The protocol is a small request/response vocabulary serialized as JSON:

====================  =======================================================
operation             meaning
====================  =======================================================
``list_sources``      names of the federated sources
``list_relations``    relations of one source (or all)
``describe``          attribute names/types of one relation
``contexts``          receiver contexts available on this server
``query``             mediate + execute a SQL query in a receiver context
``mediate``           mediate only; return the rewritten SQL and explanation
``explain``           mediate + plan; return the execution plan text
``prepare``           compile a statement once; returns a statement handle
``execute_prepared``  execute a prepared statement (no mediation/planning)
``close_prepared``    discard a prepared statement handle
``open_cursor``       start a streaming query; returns a cursor handle +
                      result description (no rows yet)
``fetch_cursor``      pull the next batch of rows from an open cursor
``close_cursor``      discard a cursor, cancelling still-outstanding source
                      fetches (idempotent)
``status``            server statistics: request counters, the ``server_load``
                      admission/shedding block, per-source health and the
                      observability (tracing/logging) snapshot
``metrics``           the metrics registry: a structured snapshot plus the
                      Prometheus text exposition (also served as
                      ``GET /coin/metrics`` on the HTTP tunnel)
====================  =======================================================

Result relations travel as ``{"columns": [...], "types": [...], "rows": [...]}``;
cursor batches travel as bare ``{"rows": [...], "done": bool}`` payloads
against the description returned by ``open_cursor``.

``query``, ``prepare`` and ``open_cursor`` accept an optional
``consistency`` parameter (``"raw"`` | ``"certain"`` | ``"possible"``)
selecting how declared integrity constraints are honoured; certain/possible
responses carry the ``consistency`` block of the execution report
(strategy, conflict clusters, repairs enumerated, tuples dropped).

The same three operations (and the chunked streaming endpoint) also accept
the resilience options ``timeout_seconds`` (a server-side deadline on the
statement's wall clock — fetch waits, retry backoff and streaming
finalization all count against it) and ``on_source_error`` (``"fail"`` |
``"partial"``: partial mode answers from the surviving branches when a
source stays dead after retries).  Execution reports carry a ``resilience``
block — attempts, retries, breaker trips/rejections, degraded branches and
the deadline's remaining budget — so a degraded answer is always labelled.

Every request may carry a ``tenant`` parameter (the receiver/session
identity; the HTTP tunnel also accepts an ``X-Coin-Tenant`` header) used by
the server's admission gateway for per-tenant quotas.  A request the gateway
sheds fails with ``error_kind="OverloadError"`` and, when known, a
``retry_after_seconds`` hint (HTTP 503 + ``Retry-After`` on the tunnel);
shed requests are always safe to retry — nothing was executed.

Statement-shaped requests may also carry a ``trace_id`` on the envelope (the
HTTP tunnel equivalently accepts an ``X-Coin-Trace`` header): when the server
traces statements, the client-minted id names the span tree end to end, and
successful responses echo the id (plus, when the trace was sampled, the
finished tree) back to the caller.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ProtocolError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType

#: Operations a client may request.
OPERATIONS = (
    "list_sources",
    "list_relations",
    "describe",
    "contexts",
    "query",
    "mediate",
    "explain",
    "prepare",
    "execute_prepared",
    "close_prepared",
    "open_cursor",
    "fetch_cursor",
    "close_cursor",
    "status",
    "metrics",
)

PROTOCOL_VERSION = "1.0"


@dataclass
class Request:
    """A client request."""

    operation: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    version: str = PROTOCOL_VERSION
    #: Client-minted trace id naming the statement's span tree (optional).
    trace_id: Optional[str] = None

    def validate(self) -> None:
        if self.operation not in OPERATIONS:
            raise ProtocolError(f"unknown operation {self.operation!r}")
        if self.version != PROTOCOL_VERSION:
            raise ProtocolError(f"unsupported protocol version {self.version!r}")

    def to_json(self) -> str:
        body: Dict[str, Any] = {
            "version": self.version,
            "operation": self.operation,
            "parameters": self.parameters,
        }
        if self.trace_id is not None:
            body["trace_id"] = self.trace_id
        return json.dumps(body)

    @classmethod
    def from_json(cls, text: str) -> "Request":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"malformed request: {exc}") from exc
        if not isinstance(payload, dict) or "operation" not in payload:
            raise ProtocolError("request must be a JSON object with an 'operation' field")
        request = cls(
            operation=payload["operation"],
            parameters=payload.get("parameters", {}) or {},
            version=payload.get("version", PROTOCOL_VERSION),
            trace_id=payload.get("trace_id"),
        )
        request.validate()
        return request


@dataclass
class Response:
    """A server response: either a payload or an error."""

    ok: bool
    payload: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_kind: Optional[str] = None
    #: Back-off hint attached to overload sheds (seconds; None when unknown).
    retry_after_seconds: Optional[float] = None
    version: str = PROTOCOL_VERSION

    @classmethod
    def success(cls, **payload: Any) -> "Response":
        return cls(ok=True, payload=payload)

    @classmethod
    def failure(cls, error: str, error_kind: str = "error",
                retry_after_seconds: Optional[float] = None) -> "Response":
        return cls(ok=False, error=error, error_kind=error_kind,
                   retry_after_seconds=retry_after_seconds)

    def to_json(self) -> str:
        body: Dict[str, Any] = {"version": self.version, "ok": self.ok}
        if self.ok:
            body["payload"] = self.payload
        else:
            body["error"] = self.error
            body["error_kind"] = self.error_kind
            if self.retry_after_seconds is not None:
                body["retry_after_seconds"] = self.retry_after_seconds
        return json.dumps(body)

    @classmethod
    def from_json(cls, text: str) -> "Response":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"malformed response: {exc}") from exc
        if not isinstance(payload, dict) or "ok" not in payload:
            raise ProtocolError("response must be a JSON object with an 'ok' field")
        if payload["ok"]:
            return cls(ok=True, payload=payload.get("payload", {}) or {},
                       version=payload.get("version", PROTOCOL_VERSION))
        return cls(ok=False, error=payload.get("error", "unknown error"),
                   error_kind=payload.get("error_kind", "error"),
                   retry_after_seconds=payload.get("retry_after_seconds"),
                   version=payload.get("version", PROTOCOL_VERSION))


# ---------------------------------------------------------------------------
# Relation (de)serialization
# ---------------------------------------------------------------------------


def relation_to_payload(relation: Relation) -> Dict[str, Any]:
    """Serialize a relation into the protocol's tabular payload form."""
    return {
        "columns": relation.schema.names,
        "types": [attribute.type.value for attribute in relation.schema],
        "rows": rows_to_payload(relation.rows),
    }


def schema_to_payload(schema: Schema) -> Dict[str, Any]:
    """Serialize a result description (no rows) — what ``open_cursor`` returns."""
    return {
        "columns": schema.names,
        "types": [attribute.type.value for attribute in schema],
    }


def rows_to_payload(rows) -> List[List[Any]]:
    """Serialize a row batch (cursor fetches ship rows without a schema)."""
    return [list(row) for row in rows]


def relation_from_payload(payload: Dict[str, Any], name: Optional[str] = None) -> Relation:
    """Rebuild a relation from a tabular payload."""
    try:
        columns = payload["columns"]
        types = payload.get("types") or ["any"] * len(columns)
        rows = payload["rows"]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed relation payload: {exc}") from exc
    schema = Schema(
        Attribute(name=column, type=DataType.from_name(type_name))
        for column, type_name in zip(columns, types)
    )
    relation = Relation(schema, name=name)
    for row in rows:
        relation.append(row)
    return relation
