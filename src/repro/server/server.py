"""The mediation server: the prototype's server-side entry point.

The server owns a :class:`~repro.federation.Federation` and answers protocol
requests arriving over the (simulated) HTTP tunnel: dictionary questions,
mediation-only requests and full query execution.  Clients — the ODBC-like
driver and the HTML QBE front end — never touch the federation directly.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import OverloadError, ProtocolError, ReproError
from repro.federation import Federation, FederationCursor, PreparedQuery
from repro.mediation.explain import conflict_summary
from repro.obs.trace import current_span, deactivate_span
from repro.server.gateway import AdmissionGateway, GatewayConfig
from repro.server.http import HttpChannel, HttpRequest, HttpResponse
from repro.server.protocol import (
    Request,
    Response,
    relation_to_payload,
    rows_to_payload,
    schema_to_payload,
)


@dataclass
class ServerStatistics:
    """Request counters kept by the server.

    Increments go through :meth:`record`, which holds a lock: concurrent
    client sessions dispatch against one server instance, and unguarded
    ``+=`` on shared counters loses updates.
    """

    requests: int = 0
    queries: int = 0
    errors: int = 0
    requests_shed: int = 0
    prepared_statements: int = 0
    prepared_executions: int = 0
    cursors_opened: int = 0
    cursor_fetches: int = 0
    rows_streamed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def record(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                if name.startswith("_") or not hasattr(self, name):
                    raise AttributeError(f"unknown counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "requests": self.requests,
                "queries": self.queries,
                "errors": self.errors,
                "requests_shed": self.requests_shed,
                "prepared_statements": self.prepared_statements,
                "prepared_executions": self.prepared_executions,
                "cursors_opened": self.cursors_opened,
                "cursor_fetches": self.cursor_fetches,
                "rows_streamed": self.rows_streamed,
            }


@dataclass
class _OpenCursor:
    """One server-side streaming cursor plus its validity generations.

    Like prepared statements, cursors are generation-checked: a catalog or
    knowledge change after the cursor opened makes its remaining rows
    untrustworthy (they would mix pre- and post-change data), so the next
    fetch fails and the cursor is discarded.

    ``fetch_lock`` serializes fetches on one handle: the underlying stream
    is a generator, and two clients (or one client's retry) driving it
    concurrently would race with 'generator already executing'.
    """

    cursor: FederationCursor
    catalog_generation: int
    knowledge_generation: int
    fetch_lock: threading.Lock = field(default_factory=threading.Lock)
    #: Idempotent release of the gateway streaming permit this cursor holds
    #: for its whole life — the backpressure bounding concurrently open
    #: streams (None when the server runs without a gateway).
    release_stream: Optional[Callable[[], None]] = None

    def discard(self) -> None:
        self.cursor.close()
        if self.release_stream is not None:
            self.release_stream()


class MediationServer:
    """Dispatches protocol requests against one federation."""

    #: Path under which the tunnel accepts requests (mirrors the prototype's CGI endpoint).
    ENDPOINT = "/coin/api"
    #: Path answering query requests with chunked result batches.
    STREAM_ENDPOINT = "/coin/api/stream"
    #: Path answering ``GET`` with the Prometheus text exposition.
    METRICS_ENDPOINT = "/coin/metrics"

    #: Bound on concurrently open prepared statements (leak protection:
    #: clients that never close are evicted oldest-first).
    MAX_PREPARED_STATEMENTS = 256
    #: Bound on concurrently open cursors; eviction closes the underlying
    #: stream, cancelling its outstanding source fetches.
    MAX_OPEN_CURSORS = 64
    #: Default/maximum rows per cursor fetch.
    DEFAULT_CURSOR_BATCH = 256
    MAX_CURSOR_BATCH = 10_000

    #: Operations that execute or compile statements: these pass through the
    #: admission gateway (quotas, bounded queue, deadline-aware shedding).
    #: Dictionary lookups and cursor fetch/close stay un-gated — they are
    #: cheap, and gating fetches would deadlock draining consumers.
    ADMITTED_OPERATIONS = frozenset({
        "query", "mediate", "explain", "prepare", "execute_prepared",
        "open_cursor",
    })
    #: Admitted operations that execute *now* under the request's own
    #: ``timeout_seconds``: their admission wait is bounded by that deadline
    #: and the budget left after queueing is what execution runs under.
    DEADLINE_OPERATIONS = frozenset({"query", "open_cursor"})
    #: HTTP request header naming the tenant (protocol ``tenant`` parameter
    #: wins when both are present).
    TENANT_HEADER = "X-Coin-Tenant"
    #: HTTP header carrying the trace id — inbound (client-minted, the
    #: envelope's ``trace_id`` wins when both are present) and outbound
    #: (echoed on successful traced responses).
    TRACE_HEADER = "X-Coin-Trace"

    def __init__(self, federation: Federation,
                 gateway: Optional[Union[AdmissionGateway, GatewayConfig]] = None):
        self.federation = federation
        if gateway is None:
            gateway = AdmissionGateway()
        elif isinstance(gateway, GatewayConfig):
            gateway = AdmissionGateway(gateway)
        #: The admission gateway every statement-executing request passes.
        self.gateway = gateway
        self.statistics = ServerStatistics()
        #: LRU of open prepared statements: executing one refreshes it, so
        #: eviction under pressure removes genuinely idle handles first.
        self._prepared: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self._prepared_lock = threading.Lock()
        self._statement_ids = itertools.count(1)
        #: LRU of open cursors, mirror of the prepared-statement registry:
        #: lock-guarded, bounded, fetched handles refresh their position.
        self._cursors: "OrderedDict[str, _OpenCursor]" = OrderedDict()
        self._cursor_lock = threading.Lock()
        self._cursor_ids = itertools.count(1)
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """Register server/gateway series in the federation's registry.

        Everything here is function-backed (evaluated at scrape time against
        the lock-guarded statistics), so request dispatch pays nothing.
        """
        registry = self.federation.observability.metrics
        if self.gateway is not None:
            self.gateway.bind_metrics(registry)

        def server_counter(name: str, help_text: str, attribute: str) -> None:
            registry.counter(
                name, help_text,
                function=lambda: getattr(self.statistics, attribute),
            )

        server_counter("server_requests_total",
                       "Protocol requests the server dispatched.", "requests")
        server_counter("server_queries_total",
                       "Statements the server executed.", "queries")
        server_counter("server_errors_total",
                       "Requests answered with an error.", "errors")
        server_counter("server_requests_shed_total",
                       "Requests shed by admission control.", "requests_shed")
        server_counter("server_cursor_fetches_total",
                       "Cursor fetch round trips served.", "cursor_fetches")
        server_counter("server_rows_streamed_total",
                       "Rows shipped through cursors and chunked responses.",
                       "rows_streamed")
        registry.gauge(
            "server_open_prepared_statements",
            "Prepared statements currently registered.",
            function=lambda: len(self._prepared),
        )
        registry.gauge(
            "server_open_cursors",
            "Server-side cursors currently open.",
            function=lambda: len(self._cursors),
        )

    # -- transport-level entry points ---------------------------------------------

    def channel(self) -> HttpChannel:
        """A fresh HTTP channel bound to this server (one per client connection)."""
        return HttpChannel(self.handle_http)

    def handle_http(self, request: HttpRequest) -> HttpResponse:
        """Handle one HTTP-tunnelled protocol request.

        Persistence is honoured on the plain endpoints: a keep-alive request
        gets a keep-alive response (HTTP/1.1 clients persist by default), so
        pooled clients reuse one connection across statements.  Chunked
        streaming responses always close — their consumer may abandon the
        stream mid-body, and a closed connection is the only framing-safe
        way out.
        """
        response = self._handle_http(request)
        if request.version.upper() == "HTTP/1.1":
            response.version = "HTTP/1.1"
        if response.chunks is None and request.wants_keep_alive():
            response.headers.setdefault("Connection", "keep-alive")
        else:
            response.headers.setdefault("Connection", "close")
        return response

    def _handle_http(self, request: HttpRequest) -> HttpResponse:
        if request.method == "GET" and request.path == self.METRICS_ENDPOINT:
            return HttpResponse(
                status=200, reason="OK",
                headers={"Content-Type":
                         "text/plain; version=0.0.4; charset=utf-8"},
                body=self.federation.observability.metrics.render(),
            )
        if request.method == "POST" and request.path == self.STREAM_ENDPOINT:
            return self.handle_http_stream(request)
        if request.path != self.ENDPOINT or request.method != "POST":
            return HttpResponse(status=404, reason="Not Found",
                                body=Response.failure("unknown endpoint").to_json())
        try:
            protocol_request = Request.from_json(request.body)
        except ReproError as exc:
            self.statistics.record(errors=1)
            return HttpResponse(status=400, reason="Bad Request",
                                body=Response.failure(str(exc), "protocol").to_json())
        response = self.handle(protocol_request,
                               tenant=self._header_tenant(request),
                               trace_id=self._header_value(request, self.TRACE_HEADER))
        if not response.ok and response.error_kind == "OverloadError":
            return self._overload_http_response(response)
        status, reason = (200, "OK") if response.ok else (422, "Unprocessable Entity")
        http_response = HttpResponse(status=status, reason=reason,
                                     body=response.to_json())
        if response.ok and response.payload.get("trace_id"):
            http_response.headers[self.TRACE_HEADER] = response.payload["trace_id"]
        return http_response

    @classmethod
    def _header_value(cls, request: HttpRequest, header: str) -> Optional[str]:
        wanted = header.lower()
        for name, value in request.headers.items():
            if name.lower() == wanted:
                return value
        return None

    @classmethod
    def _header_tenant(cls, request: HttpRequest) -> Optional[str]:
        return cls._header_value(request, cls.TENANT_HEADER)

    @staticmethod
    def _overload_http_response(response: Response) -> HttpResponse:
        """Shed requests answer 503 + Retry-After: overload is the server's
        state, not the request's fault, and the client should back off."""
        retry_after = response.retry_after_seconds
        header = "1" if retry_after is None else str(max(1, math.ceil(retry_after)))
        return HttpResponse(status=503, reason="Service Unavailable",
                            headers={"Retry-After": header},
                            body=response.to_json())

    def handle_http_stream(self, request: HttpRequest) -> HttpResponse:
        """Answer one query request with chunked result batches.

        The first chunk is the result description (columns, types, mediation
        metadata), each following chunk one batch of rows, and the final
        chunk a summary with the execution report — every chunk its own JSON
        document, framed with genuine ``Transfer-Encoding: chunked`` byte
        framing on the wire.
        """
        try:
            protocol_request = Request.from_json(request.body)
            if protocol_request.operation != "query":
                raise ProtocolError(
                    "the streaming endpoint accepts only 'query' requests"
                )
            parameters = protocol_request.parameters
            sql = parameters.get("sql")
            if not sql:
                raise ProtocolError("'query' requires a 'sql' parameter")
            batch_size = self._batch_size(parameters.get("batch_size"))
            options = self._execution_options(parameters)
        except ReproError as exc:
            self.statistics.record(errors=1)
            return HttpResponse(status=400, reason="Bad Request",
                                body=Response.failure(str(exc), "protocol").to_json())

        self.statistics.record(requests=1)
        tenant = parameters.get("tenant") or self._header_tenant(request)
        # The chunked endpoint is its own trace edge: the whole exchange —
        # open, every batch, finalization — happens on this thread, so one
        # root covers it and finishes after the cursor closes.
        root = None
        token = None
        tracer = self.federation.observability.tracer
        if tracer.enabled and not current_span().recording:
            root = tracer.start_trace(
                "statement",
                trace_id=(protocol_request.trace_id
                          or self._header_value(request, self.TRACE_HEADER)),
                operation="stream", tenant=tenant,
            )
            if root.recording:
                token = root.activate()
            else:
                root = None
        try:
            return self._stream_response(request, parameters, tenant, root)
        finally:
            if root is not None:
                deactivate_span(token)
                root.finish()

    def _stream_response(self, request: HttpRequest, parameters: Dict[str, Any],
                         tenant: Optional[str], root) -> HttpResponse:
        import json

        sql = parameters.get("sql")
        batch_size = self._batch_size(parameters.get("batch_size"))
        options = self._execution_options(parameters)

        def open_cursor(remaining: Optional[float]) -> FederationCursor:
            execution_options = dict(options)
            if remaining is not None:
                execution_options["timeout_seconds"] = remaining
            return self.federation.query(
                sql, parameters.get("context"),
                mediate=bool(parameters.get("mediate", True)), stream=True,
                consistency=parameters.get("consistency", "raw"),
                **execution_options,
            )

        # A worker slot covers only *opening* the stream (mediation,
        # planning, first-batch dispatch); producing the chunks happens on
        # this — the consumer's — thread under a bounded streaming permit,
        # so a slow consumer never pins a worker.
        release_stream: Callable[[], None] = lambda: None
        try:
            if self.gateway is not None:
                release_stream = self.gateway.acquire_stream(tenant)
                cursor = self.gateway.run(
                    open_cursor, tenant=tenant,
                    timeout_seconds=options.get("timeout_seconds"),
                )
            else:
                cursor = open_cursor(None)
        except OverloadError as exc:
            release_stream()
            self.statistics.record(errors=1, requests_shed=1)
            return self._overload_http_response(
                Response.failure(str(exc), "OverloadError",
                                 retry_after_seconds=exc.retry_after_seconds))
        except ReproError as exc:
            release_stream()
            self.statistics.record(errors=1)
            return HttpResponse(status=422, reason="Unprocessable Entity",
                                body=Response.failure(str(exc), type(exc).__name__).to_json())

        chunks: List[str] = []
        try:
            header = schema_to_payload(cursor.schema)
            header.update(
                mediated_sql=cursor.mediated_sql,
                branch_count=cursor.mediation.branch_count,
                conflicts=conflict_summary(cursor.mediation),
                column_labels=[annotation.label() for annotation in cursor.annotations],
            )
            chunks.append(json.dumps(header))
            row_count = 0
            while True:
                rows = cursor.fetchmany(batch_size)
                if not rows:
                    break
                row_count += len(rows)
                chunks.append(json.dumps({"rows": rows_to_payload(rows)}))
            chunks.append(json.dumps({
                "done": True,
                "row_count": row_count,
                "execution": cursor.report.snapshot(),
            }))
            self.statistics.record(queries=1, rows_streamed=row_count)
        except ReproError as exc:
            self.statistics.record(errors=1)
            return HttpResponse(status=422, reason="Unprocessable Entity",
                                body=Response.failure(str(exc), type(exc).__name__).to_json())
        finally:
            cursor.close()
            release_stream()
        headers = {} if root is None else {self.TRACE_HEADER: root.trace_id}
        return HttpResponse(status=200, reason="OK", headers=headers,
                            chunks=chunks)

    @staticmethod
    def _execution_options(parameters: Dict[str, Any]) -> Dict[str, Any]:
        """Resilience options a client may attach to query-shaped requests.

        ``timeout_seconds`` bounds the statement's wall clock server-side;
        ``on_source_error`` selects fail-fast or partial-answer degradation.
        Both are validated here (transport) or downstream (semantics).
        """
        options: Dict[str, Any] = {}
        timeout = parameters.get("timeout_seconds")
        if timeout is not None:
            try:
                options["timeout_seconds"] = float(timeout)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"invalid timeout_seconds {timeout!r}"
                ) from exc
        on_source_error = parameters.get("on_source_error")
        if on_source_error is not None:
            options["on_source_error"] = on_source_error
        return options

    @classmethod
    def _batch_size(cls, raw) -> int:
        if raw is None:
            return cls.DEFAULT_CURSOR_BATCH
        try:
            size = int(raw)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid batch size {raw!r}") from exc
        if size <= 0:
            raise ProtocolError(f"batch size must be positive, got {size}")
        return min(size, cls.MAX_CURSOR_BATCH)

    # -- protocol-level dispatch ---------------------------------------------------------

    def handle(self, request: Request, tenant: Optional[str] = None,
               trace_id: Optional[str] = None) -> Response:
        """Handle one protocol request object (transport already stripped).

        Statement-executing operations pass the admission gateway first: a
        shed request fails with ``error_kind="OverloadError"`` (and a
        ``retry_after_seconds`` hint) without touching the federation.

        The server is the trace edge: statement-shaped operations open the
        root ``statement`` span here (adopting the client-minted ``trace_id``
        from the envelope or the ``X-Coin-Trace`` header when one arrived),
        so admission, pipeline and execution spans connect into one tree.
        Successful traced responses echo ``trace_id`` — and, once the trace
        is finished and sampled, the span tree itself — in the payload.
        """
        self.statistics.record(requests=1)
        tenant = request.parameters.get("tenant") or tenant
        trace_id = request.trace_id or trace_id
        root, token = self._open_request_root(request, tenant, trace_id)
        try:
            response = self._respond(request, tenant)
        finally:
            if root is not None:
                deactivate_span(token)
        return self._finish_request_root(request, response, root)

    def _respond(self, request: Request, tenant: Optional[str]) -> Response:
        """Dispatch under the gateway; map errors to protocol failures."""
        try:
            if self.gateway is not None and request.operation in self.ADMITTED_OPERATIONS:
                response = self.gateway.run(
                    lambda remaining: self._dispatch(request, remaining),
                    tenant=tenant,
                    timeout_seconds=self._admission_timeout(request),
                )
            else:
                response = self._dispatch(request, None)
            if not response.ok:
                self.statistics.record(errors=1)
            return response
        except OverloadError as exc:
            self.statistics.record(errors=1, requests_shed=1)
            return Response.failure(str(exc), "OverloadError",
                                    retry_after_seconds=exc.retry_after_seconds)
        except ReproError as exc:
            self.statistics.record(errors=1)
            return Response.failure(str(exc), type(exc).__name__)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self.statistics.record(errors=1)
            return Response.failure(f"internal error: {exc}", "internal")

    # -- tracing at the edge ---------------------------------------------------------

    def _open_request_root(self, request: Request, tenant: Optional[str],
                           trace_id: Optional[str]):
        """Open the root ``statement`` span for statement-shaped requests.

        Returns ``(root, activation_token)`` or ``(None, None)`` when the
        tracer is off, the operation is not statement-shaped, or an outer
        span already owns the trace (nested dispatch).
        """
        tracer = self.federation.observability.tracer
        if (not tracer.enabled
                or request.operation not in self.ADMITTED_OPERATIONS
                or current_span().recording):
            return None, None
        root = tracer.start_trace(
            "statement", trace_id=trace_id,
            operation=request.operation, tenant=tenant,
        )
        if not root.recording:
            return None, None
        return root, root.activate()

    def _finish_request_root(self, request: Request, response: Response,
                             root) -> Response:
        if root is None:
            return response
        if response.ok:
            response.payload.setdefault("trace_id", root.trace_id)
            if request.operation == "open_cursor":
                # The root outlives this request: it finishes when the
                # cursor closes (registered in _handle_open_cursor), so the
                # buffered tree includes the streaming spans.
                return response
            root.finish()
            trace = self.federation.observability.tracer.buffer.get(root.trace_id)
            if trace is not None:
                response.payload.setdefault("trace", trace)
            return response
        # Failed requests force-keep their trace; the error detail lives in
        # the response, the span records kind and message for the tree.
        root.annotate(error_kind=response.error_kind)
        root.flag("error")
        root.finish()
        return response

    def _dispatch(self, request: Request, remaining: Optional[float]) -> Response:
        """Run the operation's handler, under the post-queue time budget.

        ``remaining`` is the request's ``timeout_seconds`` minus its
        admission queue wait: execution must not count time spent queueing
        against sources that never saw the request.
        """
        parameters = request.parameters
        if remaining is not None and request.operation in self.DEADLINE_OPERATIONS:
            parameters = dict(parameters)
            parameters["timeout_seconds"] = remaining
        handler = getattr(self, f"_handle_{request.operation}")
        return handler(parameters)

    def _admission_timeout(self, request: Request) -> Optional[float]:
        """The deadline bounding this request's admission wait, if any.

        Only execute-now operations use their ``timeout_seconds`` at
        admission; ``prepare`` carries one as a *statement property* for
        later executions, not a bound on compiling it.  Malformed values are
        ignored here so the handler can reject them with the proper
        protocol error instead of an overload shed.
        """
        if request.operation not in self.DEADLINE_OPERATIONS:
            return None
        timeout = request.parameters.get("timeout_seconds")
        if timeout is None:
            return None
        try:
            value = float(timeout)
        except (TypeError, ValueError):
            return None
        return value if value > 0 else None

    # -- operations ------------------------------------------------------------------------

    def _handle_list_sources(self, parameters: Dict[str, Any]) -> Response:
        return Response.success(sources=self.federation.list_sources())

    def _handle_list_relations(self, parameters: Dict[str, Any]) -> Response:
        source = parameters.get("source")
        return Response.success(relations=self.federation.list_relations(source))

    def _handle_describe(self, parameters: Dict[str, Any]) -> Response:
        relation = parameters.get("relation")
        if not relation:
            return Response.failure("'describe' requires a 'relation' parameter", "protocol")
        return Response.success(
            relation=relation,
            attributes=self.federation.describe_relation(relation),
        )

    def _handle_contexts(self, parameters: Dict[str, Any]) -> Response:
        return Response.success(contexts=self.federation.receiver_contexts)

    def _handle_query(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'query' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        mediate = bool(parameters.get("mediate", True))
        answer = self.federation.query(
            sql, context, mediate=mediate,
            consistency=parameters.get("consistency", "raw"),
            **self._execution_options(parameters),
        )
        self.statistics.record(queries=1)
        return Response.success(
            relation=relation_to_payload(answer.relation),
            mediated_sql=answer.mediated_sql,
            branch_count=answer.mediation.branch_count,
            conflicts=conflict_summary(answer.mediation),
            column_labels=[annotation.label() for annotation in answer.annotations],
            execution=answer.execution.report.snapshot(),
        )

    def _handle_prepare(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'prepare' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        mediate = bool(parameters.get("mediate", True))
        prepared = self.federation.prepare(
            sql, context, mediate=mediate,
            consistency=parameters.get("consistency", "raw"),
            **self._execution_options(parameters),
        )
        statement_id = f"stmt-{next(self._statement_ids)}"
        with self._prepared_lock:
            self._prepared[statement_id] = prepared
            while len(self._prepared) > self.MAX_PREPARED_STATEMENTS:
                self._prepared.popitem(last=False)
        self.statistics.record(prepared_statements=1)
        return Response.success(
            statement_id=statement_id,
            original_sql=prepared.sql,
            mediated_sql=prepared.mediated_sql,
            branch_count=prepared.plan.mediation.branch_count,
            conflicts=conflict_summary(prepared.plan.mediation),
            receiver_context=prepared.receiver_context,
            consistency=prepared.consistency,
        )

    def _handle_execute_prepared(self, parameters: Dict[str, Any]) -> Response:
        statement_id = parameters.get("statement_id")
        if not statement_id:
            return Response.failure(
                "'execute_prepared' requires a 'statement_id' parameter", "protocol"
            )
        with self._prepared_lock:
            prepared = self._prepared.get(statement_id)
            if prepared is not None:
                self._prepared.move_to_end(statement_id)
        if prepared is None:
            return Response.failure(
                f"unknown or closed prepared statement {statement_id!r}", "protocol"
            )
        answer = prepared.execute()
        self.statistics.record(queries=1, prepared_executions=1)
        return Response.success(
            statement_id=statement_id,
            relation=relation_to_payload(answer.relation),
            mediated_sql=answer.mediated_sql,
            branch_count=answer.mediation.branch_count,
            conflicts=conflict_summary(answer.mediation),
            column_labels=[annotation.label() for annotation in answer.annotations],
            execution=answer.execution.report.snapshot(),
        )

    def _handle_close_prepared(self, parameters: Dict[str, Any]) -> Response:
        statement_id = parameters.get("statement_id")
        if not statement_id:
            return Response.failure(
                "'close_prepared' requires a 'statement_id' parameter", "protocol"
            )
        with self._prepared_lock:
            prepared = self._prepared.pop(statement_id, None)
        if prepared is not None:
            prepared.close()
        return Response.success(statement_id=statement_id, closed=prepared is not None)

    # -- cursors -----------------------------------------------------------------------------

    def _handle_open_cursor(self, parameters: Dict[str, Any]) -> Response:
        statement_id = parameters.get("statement_id")
        sql = parameters.get("sql")
        if bool(statement_id) == bool(sql):
            return Response.failure(
                "'open_cursor' requires exactly one of 'sql' or 'statement_id'",
                "protocol",
            )
        # The streaming permit is claimed before any work: an over-streamed
        # server sheds the open instead of building a cursor it cannot host.
        release_stream: Optional[Callable[[], None]] = None
        if self.gateway is not None:
            release_stream = self.gateway.acquire_stream(parameters.get("tenant"))
        try:
            if statement_id:
                with self._prepared_lock:
                    prepared = self._prepared.get(statement_id)
                    if prepared is not None:
                        self._prepared.move_to_end(statement_id)
                if prepared is None:
                    release_stream and release_stream()
                    return Response.failure(
                        f"unknown or closed prepared statement {statement_id!r}",
                        "protocol",
                    )
                cursor = prepared.execute(stream=True)
            else:
                cursor = self.federation.query(
                    sql, parameters.get("context"),
                    mediate=bool(parameters.get("mediate", True)), stream=True,
                    consistency=parameters.get("consistency", "raw"),
                    **self._execution_options(parameters),
                )
        except ReproError:
            release_stream and release_stream()
            raise

        try:
            description = schema_to_payload(cursor.schema)
            labels = [annotation.label() for annotation in cursor.annotations]
        except ReproError:
            cursor.close()
            release_stream and release_stream()
            raise
        # The edge root (activated in handle()) must not finish until the
        # cursor closes — only then are the stream/fetch spans complete and
        # the buffered tree connected.
        ambient = current_span()
        if ambient.recording and ambient.parent_id is None:
            cursor.stream.on_close(lambda report, _root=ambient: _root.finish())
        cursor_id = f"cur-{next(self._cursor_ids)}"
        entry = _OpenCursor(
            cursor=cursor,
            catalog_generation=self.federation.pipeline.catalog_generation,
            knowledge_generation=self.federation.pipeline.knowledge_generation,
            release_stream=release_stream,
        )
        evicted: List[_OpenCursor] = []
        with self._cursor_lock:
            self._cursors[cursor_id] = entry
            while len(self._cursors) > self.MAX_OPEN_CURSORS:
                _key, doomed = self._cursors.popitem(last=False)
                evicted.append(doomed)
        for doomed in evicted:
            doomed.discard()
        self.statistics.record(cursors_opened=1)
        payload = dict(description)
        payload.update(
            cursor_id=cursor_id,
            mediated_sql=cursor.mediated_sql,
            branch_count=cursor.mediation.branch_count,
            conflicts=conflict_summary(cursor.mediation),
            column_labels=labels,
            receiver_context=cursor.mediation.receiver_context,
        )
        return Response.success(**payload)

    def _handle_fetch_cursor(self, parameters: Dict[str, Any]) -> Response:
        cursor_id = parameters.get("cursor_id")
        if not cursor_id:
            return Response.failure(
                "'fetch_cursor' requires a 'cursor_id' parameter", "protocol"
            )
        count = self._batch_size(parameters.get("count"))
        with self._cursor_lock:
            entry = self._cursors.get(cursor_id)
            if entry is not None:
                self._cursors.move_to_end(cursor_id)
        if entry is None:
            return Response.failure(
                f"unknown or closed cursor {cursor_id!r}", "cursor"
            )
        # Generation check, mirroring prepared statements: a catalog or
        # knowledge change mid-stream would splice pre- and post-change rows
        # into one answer, so the cursor dies instead.
        if (entry.catalog_generation != self.federation.pipeline.catalog_generation
                or entry.knowledge_generation != self.federation.pipeline.knowledge_generation):
            self._discard_cursor(cursor_id)
            return Response.failure(
                f"cursor {cursor_id!r} invalidated by a catalog or knowledge "
                "change; re-issue the query", "cursor"
            )
        try:
            with entry.fetch_lock:
                rows = entry.cursor.fetchmany(count)
                done = entry.cursor.exhausted
        except ReproError:
            # A mid-stream failure poisons the cursor: release its resources
            # and let the error surface to the client.
            self._discard_cursor(cursor_id)
            raise
        self.statistics.record(cursor_fetches=1, rows_streamed=len(rows))
        payload: Dict[str, Any] = {
            "cursor_id": cursor_id,
            "rows": rows_to_payload(rows),
            "done": done,
        }
        if done:
            self._discard_cursor(cursor_id)
            execution = entry.cursor.report.snapshot()
            payload["execution"] = execution
            trace_id = execution.get("trace_id")
            if trace_id:
                # The cursor's close just finished the trace; ship it with
                # the final batch when sampling kept it.
                payload["trace_id"] = trace_id
                trace = self.federation.observability.tracer.buffer.get(trace_id)
                if trace is not None:
                    payload["trace"] = trace
        return Response.success(**payload)

    def _handle_close_cursor(self, parameters: Dict[str, Any]) -> Response:
        cursor_id = parameters.get("cursor_id")
        if not cursor_id:
            return Response.failure(
                "'close_cursor' requires a 'cursor_id' parameter", "protocol"
            )
        closed = self._discard_cursor(cursor_id)
        # Idempotent: closing an unknown/already-closed cursor succeeds.
        return Response.success(cursor_id=cursor_id, closed=closed)

    def _discard_cursor(self, cursor_id: str) -> bool:
        with self._cursor_lock:
            entry = self._cursors.pop(cursor_id, None)
        if entry is None:
            return False
        entry.discard()
        return True

    def _handle_mediate(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'mediate' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        result = self.federation.mediate_only(sql, context)
        return Response.success(
            original_sql=result.original_sql,
            mediated_sql=result.sql,
            branch_count=result.branch_count,
            conflicts=conflict_summary(result),
            explanation=result.explain(),
        )

    def _handle_explain(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'explain' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        return Response.success(plan=self.federation.explain_plan(sql, context))

    # -- status and shutdown --------------------------------------------------------------

    def _handle_status(self, parameters: Dict[str, Any]) -> Response:
        return Response.success(**self.snapshot())

    def _handle_metrics(self, parameters: Dict[str, Any]) -> Response:
        registry = self.federation.observability.metrics
        return Response.success(
            metrics=registry.snapshot(),
            exposition=registry.render(),
        )

    def snapshot(self) -> Dict[str, Any]:
        """Server statistics with the ``server_load`` admission block and
        per-source health folded in — what operators watch under overload."""
        snapshot: Dict[str, Any] = dict(self.statistics.snapshot())
        snapshot["server_load"] = (
            self.gateway.snapshot() if self.gateway is not None else None
        )
        snapshot["source_health"] = self.federation.engine.source_health()
        snapshot["observability"] = self.federation.observability.snapshot()
        with self._prepared_lock:
            snapshot["open_prepared_statements"] = len(self._prepared)
        with self._cursor_lock:
            snapshot["open_cursors"] = len(self._cursors)
        return snapshot

    def shutdown(self, timeout_seconds: Optional[float] = None) -> bool:
        """Gracefully drain: shed new arrivals, let admitted work finish,
        then release every registered handle.  Returns True once idle."""
        if self.gateway is not None:
            self.gateway.begin_drain()
        with self._prepared_lock:
            prepared = list(self._prepared.values())
            self._prepared.clear()
        for statement in prepared:
            statement.close()
        # Registered cursors are discarded *before* awaiting the drain: they
        # hold streaming permits the gateway counts as in-flight work.
        with self._cursor_lock:
            cursors = list(self._cursors.values())
            self._cursors.clear()
        for entry in cursors:
            entry.discard()
        if self.gateway is not None:
            return self.gateway.await_drain(timeout_seconds)
        return True
