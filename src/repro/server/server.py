"""The mediation server: the prototype's server-side entry point.

The server owns a :class:`~repro.federation.Federation` and answers protocol
requests arriving over the (simulated) HTTP tunnel: dictionary questions,
mediation-only requests and full query execution.  Clients — the ODBC-like
driver and the HTML QBE front end — never touch the federation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.federation import Federation
from repro.mediation.explain import conflict_summary
from repro.server.http import HttpChannel, HttpRequest, HttpResponse
from repro.server.protocol import Request, Response, relation_to_payload


@dataclass
class ServerStatistics:
    """Request counters kept by the server."""

    requests: int = 0
    queries: int = 0
    errors: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {"requests": self.requests, "queries": self.queries, "errors": self.errors}


class MediationServer:
    """Dispatches protocol requests against one federation."""

    #: Path under which the tunnel accepts requests (mirrors the prototype's CGI endpoint).
    ENDPOINT = "/coin/api"

    def __init__(self, federation: Federation):
        self.federation = federation
        self.statistics = ServerStatistics()

    # -- transport-level entry points ---------------------------------------------

    def channel(self) -> HttpChannel:
        """A fresh HTTP channel bound to this server (one per client connection)."""
        return HttpChannel(self.handle_http)

    def handle_http(self, request: HttpRequest) -> HttpResponse:
        """Handle one HTTP-tunnelled protocol request."""
        if request.path != self.ENDPOINT or request.method != "POST":
            return HttpResponse(status=404, reason="Not Found",
                                body=Response.failure("unknown endpoint").to_json())
        try:
            protocol_request = Request.from_json(request.body)
        except ReproError as exc:
            self.statistics.errors += 1
            return HttpResponse(status=400, reason="Bad Request",
                                body=Response.failure(str(exc), "protocol").to_json())
        response = self.handle(protocol_request)
        status, reason = (200, "OK") if response.ok else (422, "Unprocessable Entity")
        return HttpResponse(status=status, reason=reason, body=response.to_json())

    # -- protocol-level dispatch ---------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Handle one protocol request object (transport already stripped)."""
        self.statistics.requests += 1
        try:
            handler = getattr(self, f"_handle_{request.operation}")
            response = handler(request.parameters)
            if not response.ok:
                self.statistics.errors += 1
            return response
        except ReproError as exc:
            self.statistics.errors += 1
            return Response.failure(str(exc), type(exc).__name__)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self.statistics.errors += 1
            return Response.failure(f"internal error: {exc}", "internal")

    # -- operations ------------------------------------------------------------------------

    def _handle_list_sources(self, parameters: Dict[str, Any]) -> Response:
        return Response.success(sources=self.federation.list_sources())

    def _handle_list_relations(self, parameters: Dict[str, Any]) -> Response:
        source = parameters.get("source")
        return Response.success(relations=self.federation.list_relations(source))

    def _handle_describe(self, parameters: Dict[str, Any]) -> Response:
        relation = parameters.get("relation")
        if not relation:
            return Response.failure("'describe' requires a 'relation' parameter", "protocol")
        return Response.success(
            relation=relation,
            attributes=self.federation.describe_relation(relation),
        )

    def _handle_contexts(self, parameters: Dict[str, Any]) -> Response:
        return Response.success(contexts=self.federation.receiver_contexts)

    def _handle_query(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'query' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        mediate = bool(parameters.get("mediate", True))
        answer = self.federation.query(sql, context, mediate=mediate)
        self.statistics.queries += 1
        return Response.success(
            relation=relation_to_payload(answer.relation),
            mediated_sql=answer.mediated_sql,
            branch_count=answer.mediation.branch_count,
            conflicts=conflict_summary(answer.mediation),
            column_labels=[annotation.label() for annotation in answer.annotations],
            execution=answer.execution.report.snapshot(),
        )

    def _handle_mediate(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'mediate' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        result = self.federation.mediate_only(sql, context)
        return Response.success(
            original_sql=result.original_sql,
            mediated_sql=result.sql,
            branch_count=result.branch_count,
            conflicts=conflict_summary(result),
            explanation=result.explain(),
        )

    def _handle_explain(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'explain' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        return Response.success(plan=self.federation.explain_plan(sql, context))
