"""The mediation server: the prototype's server-side entry point.

The server owns a :class:`~repro.federation.Federation` and answers protocol
requests arriving over the (simulated) HTTP tunnel: dictionary questions,
mediation-only requests and full query execution.  Clients — the ODBC-like
driver and the HTML QBE front end — never touch the federation directly.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.federation import Federation, PreparedQuery
from repro.mediation.explain import conflict_summary
from repro.server.http import HttpChannel, HttpRequest, HttpResponse
from repro.server.protocol import Request, Response, relation_to_payload


@dataclass
class ServerStatistics:
    """Request counters kept by the server.

    Increments go through :meth:`record`, which holds a lock: concurrent
    client sessions dispatch against one server instance, and unguarded
    ``+=`` on shared counters loses updates.
    """

    requests: int = 0
    queries: int = 0
    errors: int = 0
    prepared_statements: int = 0
    prepared_executions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def record(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                if name.startswith("_") or not hasattr(self, name):
                    raise AttributeError(f"unknown counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "requests": self.requests,
                "queries": self.queries,
                "errors": self.errors,
                "prepared_statements": self.prepared_statements,
                "prepared_executions": self.prepared_executions,
            }


class MediationServer:
    """Dispatches protocol requests against one federation."""

    #: Path under which the tunnel accepts requests (mirrors the prototype's CGI endpoint).
    ENDPOINT = "/coin/api"

    #: Bound on concurrently open prepared statements (leak protection:
    #: clients that never close are evicted oldest-first).
    MAX_PREPARED_STATEMENTS = 256

    def __init__(self, federation: Federation):
        self.federation = federation
        self.statistics = ServerStatistics()
        #: LRU of open prepared statements: executing one refreshes it, so
        #: eviction under pressure removes genuinely idle handles first.
        self._prepared: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self._prepared_lock = threading.Lock()
        self._statement_ids = itertools.count(1)

    # -- transport-level entry points ---------------------------------------------

    def channel(self) -> HttpChannel:
        """A fresh HTTP channel bound to this server (one per client connection)."""
        return HttpChannel(self.handle_http)

    def handle_http(self, request: HttpRequest) -> HttpResponse:
        """Handle one HTTP-tunnelled protocol request."""
        if request.path != self.ENDPOINT or request.method != "POST":
            return HttpResponse(status=404, reason="Not Found",
                                body=Response.failure("unknown endpoint").to_json())
        try:
            protocol_request = Request.from_json(request.body)
        except ReproError as exc:
            self.statistics.record(errors=1)
            return HttpResponse(status=400, reason="Bad Request",
                                body=Response.failure(str(exc), "protocol").to_json())
        response = self.handle(protocol_request)
        status, reason = (200, "OK") if response.ok else (422, "Unprocessable Entity")
        return HttpResponse(status=status, reason=reason, body=response.to_json())

    # -- protocol-level dispatch ---------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Handle one protocol request object (transport already stripped)."""
        self.statistics.record(requests=1)
        try:
            handler = getattr(self, f"_handle_{request.operation}")
            response = handler(request.parameters)
            if not response.ok:
                self.statistics.record(errors=1)
            return response
        except ReproError as exc:
            self.statistics.record(errors=1)
            return Response.failure(str(exc), type(exc).__name__)
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self.statistics.record(errors=1)
            return Response.failure(f"internal error: {exc}", "internal")

    # -- operations ------------------------------------------------------------------------

    def _handle_list_sources(self, parameters: Dict[str, Any]) -> Response:
        return Response.success(sources=self.federation.list_sources())

    def _handle_list_relations(self, parameters: Dict[str, Any]) -> Response:
        source = parameters.get("source")
        return Response.success(relations=self.federation.list_relations(source))

    def _handle_describe(self, parameters: Dict[str, Any]) -> Response:
        relation = parameters.get("relation")
        if not relation:
            return Response.failure("'describe' requires a 'relation' parameter", "protocol")
        return Response.success(
            relation=relation,
            attributes=self.federation.describe_relation(relation),
        )

    def _handle_contexts(self, parameters: Dict[str, Any]) -> Response:
        return Response.success(contexts=self.federation.receiver_contexts)

    def _handle_query(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'query' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        mediate = bool(parameters.get("mediate", True))
        answer = self.federation.query(sql, context, mediate=mediate)
        self.statistics.record(queries=1)
        return Response.success(
            relation=relation_to_payload(answer.relation),
            mediated_sql=answer.mediated_sql,
            branch_count=answer.mediation.branch_count,
            conflicts=conflict_summary(answer.mediation),
            column_labels=[annotation.label() for annotation in answer.annotations],
            execution=answer.execution.report.snapshot(),
        )

    def _handle_prepare(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'prepare' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        mediate = bool(parameters.get("mediate", True))
        prepared = self.federation.prepare(sql, context, mediate=mediate)
        statement_id = f"stmt-{next(self._statement_ids)}"
        with self._prepared_lock:
            self._prepared[statement_id] = prepared
            while len(self._prepared) > self.MAX_PREPARED_STATEMENTS:
                self._prepared.popitem(last=False)
        self.statistics.record(prepared_statements=1)
        return Response.success(
            statement_id=statement_id,
            original_sql=prepared.sql,
            mediated_sql=prepared.mediated_sql,
            branch_count=prepared.plan.mediation.branch_count,
            conflicts=conflict_summary(prepared.plan.mediation),
            receiver_context=prepared.receiver_context,
        )

    def _handle_execute_prepared(self, parameters: Dict[str, Any]) -> Response:
        statement_id = parameters.get("statement_id")
        if not statement_id:
            return Response.failure(
                "'execute_prepared' requires a 'statement_id' parameter", "protocol"
            )
        with self._prepared_lock:
            prepared = self._prepared.get(statement_id)
            if prepared is not None:
                self._prepared.move_to_end(statement_id)
        if prepared is None:
            return Response.failure(
                f"unknown or closed prepared statement {statement_id!r}", "protocol"
            )
        answer = prepared.execute()
        self.statistics.record(queries=1, prepared_executions=1)
        return Response.success(
            statement_id=statement_id,
            relation=relation_to_payload(answer.relation),
            mediated_sql=answer.mediated_sql,
            branch_count=answer.mediation.branch_count,
            conflicts=conflict_summary(answer.mediation),
            column_labels=[annotation.label() for annotation in answer.annotations],
            execution=answer.execution.report.snapshot(),
        )

    def _handle_close_prepared(self, parameters: Dict[str, Any]) -> Response:
        statement_id = parameters.get("statement_id")
        if not statement_id:
            return Response.failure(
                "'close_prepared' requires a 'statement_id' parameter", "protocol"
            )
        with self._prepared_lock:
            prepared = self._prepared.pop(statement_id, None)
        if prepared is not None:
            prepared.close()
        return Response.success(statement_id=statement_id, closed=prepared is not None)

    def _handle_mediate(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'mediate' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        result = self.federation.mediate_only(sql, context)
        return Response.success(
            original_sql=result.original_sql,
            mediated_sql=result.sql,
            branch_count=result.branch_count,
            conflicts=conflict_summary(result),
            explanation=result.explain(),
        )

    def _handle_explain(self, parameters: Dict[str, Any]) -> Response:
        sql = parameters.get("sql")
        if not sql:
            return Response.failure("'explain' requires a 'sql' parameter", "protocol")
        context = parameters.get("context")
        return Response.success(plan=self.federation.explain_plan(sql, context))
