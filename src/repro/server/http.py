"""A minimal in-process HTTP tunnel.

The prototype tunnels its ODBC-family protocol in HTTP; this reproduction has
no network, so the tunnel is simulated: :class:`HttpRequest` /
:class:`HttpResponse` model messages textually (start line, headers, body) and
an :class:`HttpChannel` carries them between a client and a handler function
in-process, counting round trips and bytes so benchmarks can report protocol
overheads.  The message formats are faithful enough that the parsing code
exercises the same concerns (headers, content lengths, status codes) a real
deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError


@dataclass
class HttpRequest:
    """An HTTP request message."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""
    #: Wire protocol version.  The historical in-process tunnel speaks
    #: HTTP/1.0 (one exchange per channel); the pooled/event-loop transports
    #: send HTTP/1.1 so connections persist by default.
    version: str = "HTTP/1.0"

    def serialize(self) -> str:
        headers = dict(headers_default(self.body))
        headers.update(self.headers)
        lines = [f"{self.method} {self.path} {self.version}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return "\r\n".join(lines) + "\r\n\r\n" + self.body

    def wants_keep_alive(self) -> bool:
        return wants_keep_alive(self.version, self.headers)

    @classmethod
    def parse(cls, text: str) -> "HttpRequest":
        head, _, body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        if not lines or len(lines[0].split(" ")) != 3:
            raise ProtocolError("malformed HTTP request line")
        method, path, version = lines[0].split(" ")
        headers = _parse_headers(lines[1:])
        return cls(method=method, path=path, headers=headers, body=body,
                   version=version)


@dataclass
class HttpResponse:
    """An HTTP response message.

    A response either carries a plain ``body`` (with ``Content-Length``) or a
    sequence of ``chunks`` serialized with ``Transfer-Encoding: chunked`` —
    the framing streaming endpoints use to ship result batches one at a time.
    Each chunk is an independently parseable payload (here: one JSON
    document per batch); ``body`` on a parsed chunked response is the chunk
    concatenation, kept for byte accounting.
    """

    status: int = 200
    reason: str = "OK"
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""
    chunks: Optional[List[str]] = None
    version: str = "HTTP/1.0"

    def serialize(self) -> str:
        if self.chunks is not None:
            headers = {
                "Content-Type": "application/json",
                "Transfer-Encoding": "chunked",
                "X-Coin-Tunnel": "odbc",
            }
            headers.update(self.headers)
            # ``chunks`` may be any iterable (a producer generator, not just
            # a list); materialize so the attribute is reusable afterwards.
            self.chunks = list(self.chunks)
            payload = "".join(
                f"{len(chunk.encode('utf-8')):x}\r\n{chunk}\r\n"
                for chunk in self.chunks
            ) + "0\r\n\r\n"
        else:
            headers = dict(headers_default(self.body))
            headers.update(self.headers)
            payload = self.body
        lines = [f"{self.version} {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return "\r\n".join(lines) + "\r\n\r\n" + payload

    def wants_keep_alive(self) -> bool:
        return wants_keep_alive(self.version, self.headers)

    @classmethod
    def parse(cls, text: str) -> "HttpResponse":
        head, _, body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        parts = lines[0].split(" ", 2) if lines else []
        if len(parts) < 2:
            raise ProtocolError("malformed HTTP status line")
        version = parts[0]
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        headers = _parse_headers(lines[1:])
        chunks: Optional[List[str]] = None
        if headers.get("Transfer-Encoding", "").lower() == "chunked":
            chunks = _parse_chunked(body)
            body = "".join(chunks)
        return cls(status=status, reason=reason, headers=headers, body=body,
                   chunks=chunks, version=version)


def headers_default(body: str) -> Dict[str, str]:
    return {
        "Content-Type": "application/json",
        "Content-Length": str(len(body.encode("utf-8"))),
        "X-Coin-Tunnel": "odbc",
    }


def wants_keep_alive(version: str, headers: Dict[str, str]) -> bool:
    """The standard persistence rule: explicit ``Connection`` header wins,
    otherwise HTTP/1.1 persists and HTTP/1.0 closes."""
    connection = ""
    for name, value in headers.items():
        if name.lower() == "connection":
            connection = value.strip().lower()
            break
    if connection == "close":
        return False
    if connection == "keep-alive":
        return True
    return version.upper() == "HTTP/1.1"


class HttpWireParser:
    """Incremental HTTP parser for persistent (keep-alive) connections.

    One parser lives for the lifetime of a connection and owns a single
    ``bytearray`` receive buffer: :meth:`feed` appends raw bytes, and
    :meth:`next_request` / :meth:`next_response` pop complete messages off
    the front, compacting in place.  Reusing the buffer (and the parsed
    header dict allocation path) across the hundreds of requests a pooled
    connection carries is what makes keep-alive cheaper than the
    parse-from-scratch string tunnel — no per-request channel, no
    re-allocated parse state.

    Bodies are framed by ``Content-Length``; responses may instead use
    ``Transfer-Encoding: chunked`` (the streaming endpoint), which is
    consumed incrementally up to the terminating zero-size chunk.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Messages fully parsed off this buffer (for reuse accounting).
        self.messages_parsed = 0

    def feed(self, data: bytes) -> None:
        self._buffer += data

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def next_request(self) -> Optional[HttpRequest]:
        parsed = self._next_message(is_response=False)
        return parsed  # type: ignore[return-value]

    def next_response(self) -> Optional[HttpResponse]:
        parsed = self._next_message(is_response=True)
        return parsed  # type: ignore[return-value]

    def _next_message(self, is_response: bool):
        head_end = self._buffer.find(b"\r\n\r\n")
        if head_end < 0:
            return None
        head = self._buffer[:head_end].decode("utf-8", errors="replace")
        lines = head.split("\r\n")
        headers = _parse_headers(lines[1:])
        body_start = head_end + 4

        chunked = any(
            name.lower() == "transfer-encoding" and "chunked" in value.lower()
            for name, value in headers.items()
        )
        if chunked:
            body_end = self._chunked_end(body_start)
            if body_end < 0:
                return None
        else:
            length = 0
            for name, value in headers.items():
                if name.lower() == "content-length":
                    try:
                        length = int(value)
                    except ValueError as exc:
                        raise ProtocolError(
                            f"malformed Content-Length {value!r}") from exc
                    break
            body_end = body_start + length
            if len(self._buffer) < body_end:
                return None

        text = self._buffer[:body_end].decode("utf-8")
        # Compact in place: the allocation persists across requests.
        del self._buffer[:body_end]
        self.messages_parsed += 1
        if is_response:
            return HttpResponse.parse(text)
        return HttpRequest.parse(text)

    def _chunked_end(self, position: int) -> int:
        """Index one past the chunked terminator, or -1 if incomplete."""
        buffer = self._buffer
        while True:
            newline = buffer.find(b"\r\n", position)
            if newline < 0:
                return -1
            size_text = bytes(buffer[position:newline]).strip()
            try:
                size = int(size_text, 16)
            except ValueError as exc:
                raise ProtocolError(
                    f"malformed chunked payload: bad chunk size {size_text!r}"
                ) from exc
            position = newline + 2
            if size == 0:
                # The terminator is "0\r\n\r\n" (no trailers in this tunnel).
                return position + 2 if len(buffer) >= position + 2 else -1
            if len(buffer) < position + size + 2:
                return -1
            position += size + 2


def _parse_chunked(body: str) -> List[str]:
    """Decode a ``Transfer-Encoding: chunked`` payload into its chunks."""
    data = body.encode("utf-8")
    chunks: List[str] = []
    position = 0
    while True:
        newline = data.find(b"\r\n", position)
        if newline < 0:
            raise ProtocolError("malformed chunked payload: missing size line")
        size_text = data[position:newline].strip()
        try:
            size = int(size_text, 16)
        except ValueError as exc:
            raise ProtocolError(
                f"malformed chunked payload: bad chunk size {size_text!r}"
            ) from exc
        position = newline + 2
        if size == 0:
            return chunks
        chunk = data[position:position + size]
        if len(chunk) != size:
            raise ProtocolError("malformed chunked payload: truncated chunk")
        chunks.append(chunk.decode("utf-8"))
        position += size + 2


def _parse_headers(lines: List[str]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line.strip():
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(f"malformed HTTP header {line!r}")
        headers[name.strip()] = value.strip()
    return headers


@dataclass
class ChannelStatistics:
    """Traffic counters of one channel."""

    round_trips: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Connection churn: setups paid vs requests that rode an existing
    #: keep-alive connection.
    connections_opened: int = 0
    requests_reusing_connection: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "round_trips": self.round_trips,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "connections_opened": self.connections_opened,
            "requests_reusing_connection": self.requests_reusing_connection,
        }


class HttpChannel:
    """Carries serialized HTTP messages to a handler function, in process.

    The handler receives an :class:`HttpRequest` and returns an
    :class:`HttpResponse`; both directions pass through full text
    serialization so the protocol layer is genuinely exercised.
    """

    def __init__(self, handler: Callable[[HttpRequest], HttpResponse]):
        self._handler = handler
        self.statistics = ChannelStatistics()
        self._connected = False

    def round_trip(self, request: HttpRequest) -> HttpResponse:
        if self._connected:
            self.statistics.requests_reusing_connection += 1
        else:
            self.statistics.connections_opened += 1
        wire_request = request.serialize()
        self.statistics.bytes_sent += len(wire_request.encode("utf-8"))

        parsed_request = HttpRequest.parse(wire_request)
        response = self._handler(parsed_request)

        wire_response = response.serialize()
        self.statistics.bytes_received += len(wire_response.encode("utf-8"))
        self.statistics.round_trips += 1
        parsed = HttpResponse.parse(wire_response)
        # An exchange persists the (simulated) connection only when both
        # sides agreed to keep-alive — mirroring what the socket transport
        # does for real.
        self._connected = request.wants_keep_alive() and parsed.wants_keep_alive()
        return parsed

    def post(self, path: str, body: str, headers: Optional[Dict[str, str]] = None) -> HttpResponse:
        request = HttpRequest(method="POST", path=path, headers=headers or {}, body=body)
        return self.round_trip(request)
