"""A minimal in-process HTTP tunnel.

The prototype tunnels its ODBC-family protocol in HTTP; this reproduction has
no network, so the tunnel is simulated: :class:`HttpRequest` /
:class:`HttpResponse` model messages textually (start line, headers, body) and
an :class:`HttpChannel` carries them between a client and a handler function
in-process, counting round trips and bytes so benchmarks can report protocol
overheads.  The message formats are faithful enough that the parsing code
exercises the same concerns (headers, content lengths, status codes) a real
deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError


@dataclass
class HttpRequest:
    """An HTTP request message."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""

    def serialize(self) -> str:
        headers = dict(headers_default(self.body))
        headers.update(self.headers)
        lines = [f"{self.method} {self.path} HTTP/1.0"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return "\r\n".join(lines) + "\r\n\r\n" + self.body

    @classmethod
    def parse(cls, text: str) -> "HttpRequest":
        head, _, body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        if not lines or len(lines[0].split(" ")) != 3:
            raise ProtocolError("malformed HTTP request line")
        method, path, _version = lines[0].split(" ")
        headers = _parse_headers(lines[1:])
        return cls(method=method, path=path, headers=headers, body=body)


@dataclass
class HttpResponse:
    """An HTTP response message.

    A response either carries a plain ``body`` (with ``Content-Length``) or a
    sequence of ``chunks`` serialized with ``Transfer-Encoding: chunked`` —
    the framing streaming endpoints use to ship result batches one at a time.
    Each chunk is an independently parseable payload (here: one JSON
    document per batch); ``body`` on a parsed chunked response is the chunk
    concatenation, kept for byte accounting.
    """

    status: int = 200
    reason: str = "OK"
    headers: Dict[str, str] = field(default_factory=dict)
    body: str = ""
    chunks: Optional[List[str]] = None

    def serialize(self) -> str:
        if self.chunks is not None:
            headers = {
                "Content-Type": "application/json",
                "Transfer-Encoding": "chunked",
                "X-Coin-Tunnel": "odbc",
            }
            headers.update(self.headers)
            # ``chunks`` may be any iterable (a producer generator, not just
            # a list); materialize so the attribute is reusable afterwards.
            self.chunks = list(self.chunks)
            payload = "".join(
                f"{len(chunk.encode('utf-8')):x}\r\n{chunk}\r\n"
                for chunk in self.chunks
            ) + "0\r\n\r\n"
        else:
            headers = dict(headers_default(self.body))
            headers.update(self.headers)
            payload = self.body
        lines = [f"HTTP/1.0 {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return "\r\n".join(lines) + "\r\n\r\n" + payload

    @classmethod
    def parse(cls, text: str) -> "HttpResponse":
        head, _, body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        parts = lines[0].split(" ", 2) if lines else []
        if len(parts) < 2:
            raise ProtocolError("malformed HTTP status line")
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        headers = _parse_headers(lines[1:])
        chunks: Optional[List[str]] = None
        if headers.get("Transfer-Encoding", "").lower() == "chunked":
            chunks = _parse_chunked(body)
            body = "".join(chunks)
        return cls(status=status, reason=reason, headers=headers, body=body,
                   chunks=chunks)


def headers_default(body: str) -> Dict[str, str]:
    return {
        "Content-Type": "application/json",
        "Content-Length": str(len(body.encode("utf-8"))),
        "X-Coin-Tunnel": "odbc",
    }


def _parse_chunked(body: str) -> List[str]:
    """Decode a ``Transfer-Encoding: chunked`` payload into its chunks."""
    data = body.encode("utf-8")
    chunks: List[str] = []
    position = 0
    while True:
        newline = data.find(b"\r\n", position)
        if newline < 0:
            raise ProtocolError("malformed chunked payload: missing size line")
        size_text = data[position:newline].strip()
        try:
            size = int(size_text, 16)
        except ValueError as exc:
            raise ProtocolError(
                f"malformed chunked payload: bad chunk size {size_text!r}"
            ) from exc
        position = newline + 2
        if size == 0:
            return chunks
        chunk = data[position:position + size]
        if len(chunk) != size:
            raise ProtocolError("malformed chunked payload: truncated chunk")
        chunks.append(chunk.decode("utf-8"))
        position += size + 2


def _parse_headers(lines: List[str]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line.strip():
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(f"malformed HTTP header {line!r}")
        headers[name.strip()] = value.strip()
    return headers


@dataclass
class ChannelStatistics:
    """Traffic counters of one channel."""

    round_trips: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "round_trips": self.round_trips,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class HttpChannel:
    """Carries serialized HTTP messages to a handler function, in process.

    The handler receives an :class:`HttpRequest` and returns an
    :class:`HttpResponse`; both directions pass through full text
    serialization so the protocol layer is genuinely exercised.
    """

    def __init__(self, handler: Callable[[HttpRequest], HttpResponse]):
        self._handler = handler
        self.statistics = ChannelStatistics()

    def round_trip(self, request: HttpRequest) -> HttpResponse:
        wire_request = request.serialize()
        self.statistics.bytes_sent += len(wire_request.encode("utf-8"))

        parsed_request = HttpRequest.parse(wire_request)
        response = self._handler(parsed_request)

        wire_response = response.serialize()
        self.statistics.bytes_received += len(wire_response.encode("utf-8"))
        self.statistics.round_trips += 1
        return HttpResponse.parse(wire_response)

    def post(self, path: str, body: str, headers: Optional[Dict[str, str]] = None) -> HttpResponse:
        request = HttpRequest(method="POST", path=path, headers=headers or {}, body=body)
        return self.round_trip(request)
