"""Event-loop serving transport: connection multiplexing + session registry.

The thread-per-call transport (:class:`~repro.server.server.MediationServer`
driven directly by caller threads) caps concurrency at the thread count long
before the admission gateway does: hundreds of *idle* keep-alive client
connections would each pin a thread doing nothing but waiting for the next
statement.  This module multiplexes all of them onto **one** asyncio event
loop:

* :class:`AsyncMediationServer` runs a private event loop in a dedicated
  thread.  Clients "connect" over a real OS ``socketpair`` — byte framing,
  partial reads, keep-alive and EOF semantics are all genuine — and the loop
  parses/frames requests asynchronously while they trickle in.
* Two wire protocols share the loop, distinguished by the first bytes: the
  **native protocol** (length-prefixed JSON frames under a ``COIN/1`` magic,
  with an explicit hello/session handshake) and **HTTP/1.1 keep-alive**
  (persistent connections on the plain endpoints, chunked streaming on
  ``/coin/api/stream``).
* The synchronous engine stays untouched: admitted statements are handed to
  a bounded worker pool (``gateway.admission_capacity`` threads plus slack
  for un-gated cursor fetches) where they run through the *same*
  ``MediationServer.handle`` — answers are digest-identical to the threaded
  transport by construction.  The loop sheds what the pool cannot hold via
  :meth:`~repro.server.gateway.AdmissionGateway.shed_at_transport`, so the
  PR 7 overload contract (retriable sheds, Retry-After, bounded queue wait)
  reads the same from either front end.
* Every connection owns a :class:`Session` carrying tenant, prepared
  statements and open cursors.  Handles die with their session: a client
  disconnect, an idle timeout (reaping) or a drain closes the session's
  cursors — releasing their streaming permits and temp-store handles — and
  its prepared statements.  One session can never execute or fetch another
  session's handles.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Union

from repro.errors import ClientError, OverloadError, ProtocolError, ReproError
from repro.federation import Federation
from repro.server.http import HttpRequest, HttpResponse, HttpWireParser
from repro.server.protocol import PROTOCOL_VERSION, Request, Response
from repro.server.server import MediationServer

__all__ = [
    "MAGIC",
    "FrameParser",
    "encode_frame",
    "AsyncServerConfig",
    "Session",
    "SessionRegistry",
    "AsyncMediationServer",
]

#: Preamble a native-protocol client sends right after connecting; anything
#: else is treated as the start of an HTTP request.
MAGIC = b"COIN/1\n"

#: Upper bound on one native frame (defensive: a corrupt length prefix must
#: not make the server buffer gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Frame ``payload`` as ``b"<decimal length>\\n<payload>"``."""
    return b"%d\n%s" % (len(payload), payload)


class FrameParser:
    """Incremental parser for length-prefixed native-protocol frames.

    Mirrors :class:`~repro.server.http.HttpWireParser`: one parser per
    connection, one reused ``bytearray`` buffer, complete frames popped off
    the front.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer += data

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def next_frame(self) -> Optional[bytes]:
        newline = self._buffer.find(b"\n")
        if newline < 0:
            if len(self._buffer) > 20:
                raise ProtocolError("malformed frame: no length prefix")
            return None
        prefix = bytes(self._buffer[:newline])
        try:
            length = int(prefix)
        except ValueError as exc:
            raise ProtocolError(f"malformed frame length {prefix!r}") from exc
        if length < 0 or length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {length} out of bounds")
        end = newline + 1 + length
        if len(self._buffer) < end:
            return None
        frame = bytes(self._buffer[newline + 1:end])
        del self._buffer[:end]
        return frame


@dataclass
class AsyncServerConfig:
    """Knobs of the event-loop transport."""

    #: Concurrently open connections the loop accepts; the excess is refused
    #: at connect time (the client sees a retriable ClientError).
    max_connections: int = 1024
    #: Seconds a connection (and therefore its session) may sit idle between
    #: requests before the reaper closes it, releasing the session's cursors,
    #: streaming permits and temp-store handles.
    idle_timeout_seconds: float = 30.0
    #: Seconds a fresh connection gets to complete its handshake (magic +
    #: hello frame, or the first HTTP request line).
    handshake_timeout_seconds: float = 5.0
    #: Worker threads beyond the gateway's admission capacity, serving the
    #: un-gated operations (cursor fetch/close, dictionary lookups) so they
    #: cannot starve behind admitted statements.
    executor_slack: int = 4
    #: Seconds shutdown waits for in-flight requests before closing
    #: connections.
    drain_timeout_seconds: float = 30.0


class Session:
    """Per-connection server-side state: tenant + owned handles.

    The tenant is pinned at the handshake (native hello or first HTTP
    request): later requests carrying a *different* tenant are rejected, so
    pooled client connections can never observe — or bill against — each
    other's identity.  ``statements`` and ``cursors`` are the server handles
    this session created; the registry releases them when the session dies.
    """

    def __init__(self, session_id: str, tenant: Optional[str],
                 opened_at: float) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.opened_at = opened_at
        self.last_used = opened_at
        self.statements: Set[str] = set()
        self.cursors: Set[str] = set()
        self.closed = False
        self.requests = 0

    def touch(self, now: float) -> None:
        self.last_used = now

    def owns_statement(self, statement_id: Optional[str]) -> bool:
        return statement_id in self.statements

    def owns_cursor(self, cursor_id: Optional[str]) -> bool:
        return cursor_id in self.cursors


class SessionRegistry:
    """Tracks open sessions and releases their handles on close.

    Thread-safe: the event loop opens/accounts sessions, while shutdown (a
    foreign thread) may force-close the survivors.
    """

    def __init__(self, server: MediationServer) -> None:
        self._server = server
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._next_id = 0
        self.opened = 0
        self.closed = 0
        self.reaped_idle = 0

    def open(self, tenant: Optional[str]) -> Session:
        with self._lock:
            self._next_id += 1
            session = Session(f"sess-{self._next_id}", tenant, time.monotonic())
            self._sessions[session.session_id] = session
            self.opened += 1
        return session

    def close(self, session: Session, reaped: bool = False) -> None:
        """Close ``session`` and release every handle it still owns.

        Releasing goes through the server's own close operations, so cursors
        give back their streaming permits and temp-store handles exactly as
        a well-behaved client close would.  Idempotent.
        """
        with self._lock:
            if session.closed:
                return
            session.closed = True
            self._sessions.pop(session.session_id, None)
            cursors = sorted(session.cursors)
            statements = sorted(session.statements)
            session.cursors.clear()
            session.statements.clear()
            self.closed += 1
            if reaped:
                self.reaped_idle += 1
        for cursor_id in cursors:
            self._server.handle(
                Request(operation="close_cursor",
                        parameters={"cursor_id": cursor_id}),
                tenant=session.tenant,
            )
        for statement_id in statements:
            self._server.handle(
                Request(operation="close_prepared",
                        parameters={"statement_id": statement_id}),
                tenant=session.tenant,
            )

    def close_all(self) -> None:
        with self._lock:
            survivors = list(self._sessions.values())
        for session in survivors:
            self.close(session)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "open": len(self._sessions),
                "opened": self.opened,
                "closed": self.closed,
                "reaped_idle": self.reaped_idle,
            }


class AsyncMediationServer:
    """One event loop multiplexing many protocol/HTTP connections.

    Wraps an existing (synchronous) :class:`MediationServer`; the loop does
    transport — accept, frame, parse, shed, write — and hands admitted
    statements to a bounded thread pool running the unchanged handler, so
    answers are identical to the threaded transport.

    Usage::

        aio = AsyncMediationServer(MediationServer(federation)).start()
        sock = aio.connect_socket()      # a real connected OS socket
        ...                              # speak COIN/1 frames or HTTP/1.1
        aio.shutdown()

    Clients normally go through :func:`repro.server.odbc.connect`
    (``async_server=aio, transport="native"|"http"``) or a
    :class:`repro.server.odbc.ConnectionPool` instead of raw sockets.
    """

    def __init__(self, server: Union[MediationServer, Federation],
                 config: Optional[AsyncServerConfig] = None) -> None:
        if isinstance(server, Federation):
            server = MediationServer(server)
        self.server = server
        self.config = config or AsyncServerConfig()
        self.sessions = SessionRegistry(server)

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._worker_threads = 0
        self._running = False
        self._draining = False

        #: Handler tasks + writers of live connections (loop-thread only).
        self._conn_tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()

        # Counters. The loop thread owns the in-flight gauges; totals are
        # read cross-thread via snapshot() (int reads are atomic enough for
        # reporting).
        self._connections_opened = 0
        self._connections_refused = 0
        self._connections_current = 0
        self._connections_peak = 0
        self._requests_total = 0
        self._loop_sheds = 0
        self._inflight_total = 0
        self._admitted_inflight = 0
        self._admitted_inflight_peak = 0
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """Register transport series in the federation's metrics registry.

        All function-backed — scrape-time reads of the loop's counters and
        the session registry — so the event loop never touches a metric.
        """
        registry = self.server.federation.observability.metrics
        registry.counter(
            "aio_connections_opened_total",
            "Sockets the event-loop transport accepted.",
            function=lambda: self._connections_opened,
        )
        registry.counter(
            "aio_connections_refused_total",
            "Sockets refused at the connection cap.",
            function=lambda: self._connections_refused,
        )
        registry.counter(
            "aio_requests_total",
            "Requests the event-loop transport dispatched.",
            function=lambda: self._requests_total,
        )
        registry.counter(
            "aio_loop_sheds_total",
            "Requests shed loop-side at admission capacity.",
            function=lambda: self._loop_sheds,
        )
        registry.gauge(
            "aio_connections",
            "Sockets currently connected to the event loop.",
            function=lambda: self._connections_current,
        )
        registry.gauge(
            "aio_sessions",
            "Native-protocol sessions currently open.",
            function=lambda: len(self.sessions),
        )
        registry.counter(
            "aio_sessions_opened_total",
            "Native-protocol sessions opened over the transport's lifetime.",
            function=lambda: self.sessions.opened,
        )
        registry.counter(
            "aio_sessions_reaped_total",
            "Idle sessions closed by the reaper.",
            function=lambda: self.sessions.reaped_idle,
        )
        registry.gauge(
            "aio_admitted_inflight",
            "Statements currently executing on the worker pool.",
            function=lambda: self._admitted_inflight,
        )

    # -- lifecycle ----------------------------------------------------------------

    @property
    def gateway(self):
        return self.server.gateway

    def start(self) -> "AsyncMediationServer":
        if self._running:
            return self
        gateway = self.server.gateway
        capacity = gateway.admission_capacity if gateway is not None else 64
        self._worker_threads = capacity + max(1, self.config.executor_slack)
        self._executor = ThreadPoolExecutor(
            max_workers=self._worker_threads, thread_name_prefix="aio-worker"
        )
        self._loop = asyncio.new_event_loop()
        self._started.clear()
        self._thread = threading.Thread(
            target=self._run_loop, name="aio-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        self._running = True
        self._draining = False
        return self

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def __enter__(self) -> "AsyncMediationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, timeout_seconds: Optional[float] = None) -> bool:
        """Graceful drain: quiesce the loop, then drain the gateway.

        New connections are refused immediately; in-flight requests get
        ``drain_timeout_seconds`` to finish; connections are then closed
        (closing every session, which releases its handles and streaming
        permits); finally the wrapped server drains its gateway.  Returns
        True once fully idle.
        """
        if not self._running:
            return True
        self._draining = True
        budget = (timeout_seconds if timeout_seconds is not None
                  else self.config.drain_timeout_seconds)
        future = asyncio.run_coroutine_threadsafe(self._quiesce(budget), self._loop)
        try:
            future.result(timeout=budget + 10.0)
        except Exception:
            pass
        # Belt and braces: sessions whose handler tasks never exited.
        self.sessions.close_all()
        drained = self.server.shutdown(timeout_seconds)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._executor.shutdown(wait=True)
        self._executor = None
        self._running = False
        return drained

    async def _quiesce(self, budget: float) -> None:
        deadline = self._loop.time() + budget
        while self._inflight_total > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            await asyncio.wait(
                list(self._conn_tasks),
                timeout=max(0.1, deadline - self._loop.time()),
            )

    # -- accepting ----------------------------------------------------------------

    def connect_socket(self) -> socket.socket:
        """Open one connection; returns the (blocking) client-side socket.

        The server side of the pair is registered with the event loop, which
        serves it until EOF, idle timeout, or drain.
        """
        if not self._running or self._draining:
            raise ClientError("async server is not accepting connections")
        client_end, server_end = socket.socketpair()
        future = asyncio.run_coroutine_threadsafe(
            self._accept(server_end), self._loop
        )
        try:
            accepted = future.result(timeout=10.0)
        except Exception:
            client_end.close()
            server_end.close()
            raise
        if not accepted:
            client_end.close()
            raise ClientError(
                f"connection refused: {self.config.max_connections} "
                "connections already open (or server draining)"
            )
        return client_end

    async def _accept(self, sock: socket.socket) -> bool:
        if self._draining or (
                self._connections_current >= self.config.max_connections):
            self._connections_refused += 1
            sock.close()
            return False
        task = self._loop.create_task(self._serve_connection(sock))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        return True

    # -- serving ------------------------------------------------------------------

    async def _serve_connection(self, sock: socket.socket) -> None:
        try:
            reader, writer = await asyncio.open_connection(sock=sock)
        except Exception:
            sock.close()
            return
        self._connections_opened += 1
        self._connections_current += 1
        self._connections_peak = max(self._connections_peak,
                                     self._connections_current)
        self._writers.add(writer)
        # The session is registered in a holder the moment it opens, so the
        # cleanup below finds it even when the serving loop dies mid-frame
        # (e.g. the peer closed before the final ack could be written).
        holder: List[Optional[Session]] = [None]
        reaped = False
        try:
            preamble = await asyncio.wait_for(
                reader.readexactly(len(MAGIC)),
                timeout=self.config.handshake_timeout_seconds,
            )
            if preamble == MAGIC:
                reaped = await self._serve_native(reader, writer, holder)
            else:
                reaped = await self._serve_http(preamble, reader, writer, holder)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError, OSError, ProtocolError, ValueError):
            # Transport-level failures close the connection; the session
            # cleanup below releases whatever the client left open.
            pass
        finally:
            if holder[0] is not None:
                await self._close_session(holder[0], reaped)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
            self._connections_current -= 1

    async def _close_session(self, session: Session, reaped: bool) -> None:
        await self._loop.run_in_executor(
            self._executor, lambda: self.sessions.close(session, reaped=reaped)
        )

    async def _read_more(self, reader: asyncio.StreamReader,
                         timeout: float) -> bytes:
        return await asyncio.wait_for(reader.read(65536), timeout=timeout)

    # -- the native-protocol path --------------------------------------------------

    async def _serve_native(self, reader, writer,
                            holder: List[Optional[Session]]) -> bool:
        parser = FrameParser()
        frame = await self._next_frame(
            reader, parser, self.config.handshake_timeout_seconds
        )
        if frame is None:
            return False
        hello = json.loads(frame)
        if "hello" not in hello:
            raise ProtocolError("native connection must start with a hello frame")
        tenant = hello["hello"].get("tenant")
        session = self.sessions.open(tenant)
        holder[0] = session
        await self._write_frame(writer, {
            "ok": True,
            "session_id": session.session_id,
            "protocol": PROTOCOL_VERSION,
            "idle_timeout_seconds": self.config.idle_timeout_seconds,
        })
        reaped = False
        while True:
            try:
                frame = await self._next_frame(
                    reader, parser, self.config.idle_timeout_seconds
                )
            except asyncio.TimeoutError:
                reaped = True
                break
            if frame is None:
                break
            envelope = json.loads(frame)
            if envelope.get("close"):
                await self._write_frame(writer, {"ok": True, "closed": True})
                break
            response = await self._dispatch_envelope(session, envelope)
            await self._write_frame(writer, {
                "id": envelope.get("id"),
                "response": json.loads(response.to_json()),
            })
        return reaped

    async def _next_frame(self, reader, parser: FrameParser,
                          timeout: float) -> Optional[bytes]:
        while True:
            frame = parser.next_frame()
            if frame is not None:
                return frame
            data = await self._read_more(reader, timeout)
            if not data:
                return None
            parser.feed(data)

    async def _write_frame(self, writer, document: Dict[str, Any]) -> None:
        writer.write(encode_frame(json.dumps(document).encode("utf-8")))
        await writer.drain()

    async def _dispatch_envelope(self, session: Session,
                                 envelope: Dict[str, Any]) -> Response:
        body = envelope.get("request")
        if not isinstance(body, dict):
            return Response.failure(
                "envelope must carry a 'request' object", "protocol"
            )
        try:
            request = Request.from_json(json.dumps(body))
        except ReproError as exc:
            return Response.failure(str(exc), "protocol")
        return await self._dispatch(session, request)

    # -- the HTTP path -------------------------------------------------------------

    async def _serve_http(self, preamble: bytes, reader, writer,
                          holder: List[Optional[Session]]) -> bool:
        parser = HttpWireParser()
        parser.feed(preamble)
        session: Optional[Session] = None
        reaped = False
        timeout = self.config.handshake_timeout_seconds
        keep_alive = True
        while keep_alive:
            request = parser.next_request()
            if request is None:
                try:
                    data = await self._read_more(reader, timeout)
                except asyncio.TimeoutError:
                    reaped = session is not None
                    break
                if not data:
                    break
                parser.feed(data)
                continue
            if session is None:
                session = self.sessions.open(
                    MediationServer._header_tenant(request)
                )
                holder[0] = session
            timeout = self.config.idle_timeout_seconds
            response = await self._handle_http_request(session, request)
            keep_alive = request.wants_keep_alive() and response.wants_keep_alive()
            writer.write(response.serialize().encode("utf-8"))
            await writer.drain()
        return reaped

    async def _handle_http_request(self, session: Session,
                                   request: HttpRequest) -> HttpResponse:
        if request.method == "POST" and request.path == MediationServer.STREAM_ENDPOINT:
            # Chunked streaming: the whole exchange (admission, stream
            # permit, chunk production) runs in the worker pool; the
            # response closes the connection (framing-safe abandon).
            try:
                return await self._run_in_worker(
                    session, admitted=True,
                    work=lambda: self.server.handle_http(request),
                    tenant=session.tenant or MediationServer._header_tenant(request),
                )
            except OverloadError as exc:
                return MediationServer._overload_http_response(
                    self._shed_response(exc))
        if request.method != "POST" or request.path != MediationServer.ENDPOINT:
            return self._wrap_http(request, Response.failure(
                "unknown endpoint", "protocol"))
        try:
            protocol_request = Request.from_json(request.body)
        except ReproError as exc:
            self.server.statistics.record(errors=1)
            wrapped = HttpResponse(status=400, reason="Bad Request",
                                   body=Response.failure(str(exc), "protocol").to_json())
            return self._finish_http(request, wrapped)
        response = await self._dispatch(session, protocol_request)
        return self._wrap_http(request, response)

    def _wrap_http(self, request: HttpRequest, response: Response) -> HttpResponse:
        if not response.ok and response.error_kind == "OverloadError":
            wrapped = MediationServer._overload_http_response(response)
        else:
            status, reason = ((200, "OK") if response.ok
                              else (422, "Unprocessable Entity"))
            wrapped = HttpResponse(status=status, reason=reason,
                                   body=response.to_json())
        return self._finish_http(request, wrapped)

    @staticmethod
    def _finish_http(request: HttpRequest, response: HttpResponse) -> HttpResponse:
        if request.version.upper() == "HTTP/1.1":
            response.version = "HTTP/1.1"
        if response.chunks is None and request.wants_keep_alive():
            response.headers.setdefault("Connection", "keep-alive")
        else:
            response.headers.setdefault("Connection", "close")
        return response

    # -- shared dispatch -----------------------------------------------------------

    async def _dispatch(self, session: Session, request: Request) -> Response:
        """Session-scope a protocol request, then run it in the worker pool."""
        session.touch(time.monotonic())
        session.requests += 1
        self._requests_total += 1

        parameter_tenant = request.parameters.get("tenant")
        if (session.tenant is not None and parameter_tenant is not None
                and parameter_tenant != session.tenant):
            return Response.failure(
                f"request tenant {parameter_tenant!r} does not match the "
                f"session tenant {session.tenant!r}", "protocol",
            )
        tenant = session.tenant or parameter_tenant

        guard = self._session_guard(session, request)
        if guard is not None:
            return guard

        admitted = request.operation in MediationServer.ADMITTED_OPERATIONS
        try:
            response = await self._run_in_worker(
                session, admitted=admitted,
                work=lambda: self.server.handle(request, tenant),
                tenant=tenant,
            )
        except OverloadError as exc:
            return self._shed_response(exc)
        self._session_account(session, request, response)
        session.touch(time.monotonic())
        return response

    async def _run_in_worker(self, session: Session, admitted: bool, work,
                             tenant: Optional[str] = None):
        """Hand ``work`` to the bounded pool; shed what it cannot hold.

        The gateway's own queue accounting assumes one *caller thread* per
        queued statement; on the loop there are no caller threads, so the
        loop enforces the same ``workers + queue_depth`` bound up front and
        books the shed through the gateway (retriable, with a Retry-After
        hint) before any worker is consumed.
        """
        gateway = self.server.gateway
        if admitted and gateway is not None and (
                self._admitted_inflight >= gateway.admission_capacity):
            self._loop_sheds += 1
            self.server.statistics.record(requests=1, errors=1,
                                          requests_shed=1)
            gateway.shed_at_transport(
                tenant or session.tenant,
                reason="draining" if gateway.draining else "queue_full",
            )

        self._inflight_total += 1
        if admitted:
            self._admitted_inflight += 1
            self._admitted_inflight_peak = max(
                self._admitted_inflight_peak, self._admitted_inflight
            )
        try:
            return await self._loop.run_in_executor(self._executor, work)
        finally:
            self._inflight_total -= 1
            if admitted:
                self._admitted_inflight -= 1

    @staticmethod
    def _shed_response(exc: OverloadError) -> Response:
        return Response.failure(
            str(exc), "OverloadError",
            retry_after_seconds=exc.retry_after_seconds,
        )

    def _session_guard(self, session: Session,
                       request: Request) -> Optional[Response]:
        """Reject handle references another session owns (or nobody does)."""
        parameters = request.parameters
        operation = request.operation
        if operation in ("execute_prepared", "close_prepared") or (
                operation == "open_cursor" and parameters.get("statement_id")):
            statement_id = parameters.get("statement_id")
            if statement_id and not session.owns_statement(statement_id):
                return Response.failure(
                    f"unknown or closed prepared statement {statement_id!r} "
                    "in this session", "protocol",
                )
        if operation in ("fetch_cursor", "close_cursor"):
            cursor_id = parameters.get("cursor_id")
            if cursor_id and not session.owns_cursor(cursor_id):
                return Response.failure(
                    f"unknown or closed cursor {cursor_id!r}", "cursor",
                )
        return None

    @staticmethod
    def _session_account(session: Session, request: Request,
                         response: Response) -> None:
        """Fold a completed operation into the session's handle ownership."""
        operation = request.operation
        parameters = request.parameters
        if not response.ok:
            # A failed fetch may have poisoned/invalidated the server-side
            # cursor (which discards it); mirror that so the session does
            # not keep claiming a dead handle.  Pure protocol mistakes
            # (e.g. a bad batch size) leave the cursor alive.
            if (operation == "fetch_cursor"
                    and response.error_kind not in ("protocol", "ProtocolError")):
                session.cursors.discard(parameters.get("cursor_id"))
            return
        payload = response.payload
        if operation == "prepare":
            session.statements.add(payload["statement_id"])
        elif operation == "close_prepared":
            session.statements.discard(parameters.get("statement_id"))
        elif operation == "open_cursor":
            session.cursors.add(payload["cursor_id"])
        elif operation == "close_cursor":
            session.cursors.discard(parameters.get("cursor_id"))
        elif operation == "fetch_cursor" and payload.get("done"):
            session.cursors.discard(payload.get("cursor_id"))

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "transport": "asyncio",
            "running": self._running,
            "draining": self._draining,
            "connections": {
                "current": self._connections_current,
                "peak": self._connections_peak,
                "opened": self._connections_opened,
                "refused": self._connections_refused,
                "max": self.config.max_connections,
            },
            "sessions": self.sessions.snapshot(),
            "requests": {
                "total": self._requests_total,
                "loop_sheds": self._loop_sheds,
                "admitted_inflight_peak": self._admitted_inflight_peak,
            },
            "workers": {
                "loop_threads": 1,
                "pool_threads": self._worker_threads,
            },
        }
