"""Admission control for the mediation server: quotas, shedding, drain.

PR 6 made *individual statements* fault-tolerant; this module makes the
*serving layer* robust when traffic exceeds capacity.  The prototype's server
was thread-per-call: a burst of receiver queries queued unboundedly, hung
sources pinned callers, and overload failed late (client timeouts deep in a
queue) instead of early and cleanly.  The :class:`AdmissionGateway` in front
of every heavy operation enforces the discipline an industry-scale query
service needs:

* **Bounded workers, bounded queue.** At most ``max_workers`` requests
  execute concurrently (a counting semaphore; admitted work runs on the
  caller's thread, so there is no hand-off copy) and at most
  ``max_queue_depth`` wait for a slot.  Everything beyond that is *shed* with
  a clean, retriable :class:`~repro.errors.OverloadError` — the client hears
  "try again shortly" in microseconds instead of timing out in minutes.

* **Per-tenant token-bucket quotas.** Each tenant (receiver/session id,
  threaded through the protocol, HTTP header, ODBC driver and QBE form)
  draws from its own :class:`TokenBucket`; a tenant flooding the server is
  rate-limited at admission, before it can starve anyone else's slots, and
  the shed error carries the bucket's time-to-next-token as the retry hint.

* **Deadline-aware admission.** A request arriving with ``timeout_seconds``
  is shed *immediately* when the projected queue wait (EWMA service time ×
  queue position) would already eat its deadline, and — the hard guarantee —
  its semaphore wait is bounded by the deadline itself, so no request ever
  waits in the queue past the moment its answer became worthless.  Queue
  time spent is deducted from the timeout the admitted work runs under.

* **Streaming backpressure.** Streaming answers (server cursors, the chunked
  HTTP endpoint) hold a worker slot only while *opening*; row production is
  pulled on the consumer's thread against bounded buffers.  What bounds slow
  consumers is the separate **stream-permit** pool (``max_active_streams``):
  an exhausted pool sheds new streams instead of letting ten thousand idle
  cursors pin the server.

* **Graceful drain.** :meth:`begin_drain` sheds new arrivals (reason
  ``"draining"``) while admitted work runs to completion;
  :meth:`await_drain` blocks until the gateway is idle.

Every decision is counted — queued/admitted/shed-by-reason/active, queue-wait
seconds, per-tenant counters, peaks — and surfaced by :meth:`snapshot` as the
``server_load`` report block.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TypeVar

from repro.engine.resilience import SYSTEM_CLOCK, Clock
from repro.errors import OverloadError
from repro.obs.trace import bind_tenant, current_span, unbind_tenant

T = TypeVar("T")

#: Shed reasons, in the order the admission pipeline checks them.
SHED_REASONS = ("draining", "quota", "deadline", "queue_full", "streams")


class TokenBucket:
    """A clock-driven token bucket: ``rate`` tokens/second up to ``burst``.

    ``try_acquire`` never blocks — admission control sheds instead of
    waiting — and ``seconds_until`` reports how long until the next token
    matures (the ``Retry-After`` hint).  A non-positive rate means the bucket
    never refills: the burst is a hard allowance (useful in tests and for
    suspended tenants).
    """

    def __init__(self, rate_per_second: float, burst: float,
                 clock: Clock = SYSTEM_CLOCK):
        self.rate = float(rate_per_second)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock.now()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock.now()
        if self.rate > 0:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now

    def try_acquire(self, cost: float = 1.0) -> bool:
        with self._lock:
            self._refill()
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False

    def seconds_until(self, cost: float = 1.0) -> Optional[float]:
        """Seconds until ``cost`` tokens are available (None: never)."""
        with self._lock:
            self._refill()
            deficit = cost - self._tokens
            if deficit <= 0:
                return 0.0
            if self.rate <= 0:
                return None
            return deficit / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


@dataclass(frozen=True)
class GatewayConfig:
    """Sizing and policy of one :class:`AdmissionGateway`."""

    #: Concurrently executing admitted requests.
    max_workers: int = 8
    #: Requests allowed to wait for a worker slot; beyond this, shed.
    max_queue_depth: int = 32
    #: Per-tenant admission rate (tokens/second).  None disables quotas.
    tenant_rate_per_second: Optional[float] = None
    #: Per-tenant burst allowance (None: 2 × rate, at least 1).
    tenant_burst: Optional[float] = None
    #: Concurrently open streaming answers (cursors + chunked responses).
    max_active_streams: int = 64
    #: Tenant attributed to requests that name none.
    default_tenant: str = "anonymous"
    #: Smoothing factor of the service-time EWMA behind deadline projection.
    ewma_alpha: float = 0.2

    def tenant_bucket_burst(self) -> float:
        if self.tenant_burst is not None:
            return float(self.tenant_burst)
        if self.tenant_rate_per_second is None:
            return 1.0
        return max(1.0, 2.0 * float(self.tenant_rate_per_second))


class _TenantCounters:
    """Per-tenant admission accounting (guarded by the gateway lock)."""

    __slots__ = ("arrived", "admitted", "shed", "queue_wait_seconds",
                 "active_streams")

    def __init__(self) -> None:
        self.arrived = 0
        self.admitted = 0
        self.shed = 0
        self.queue_wait_seconds = 0.0
        self.active_streams = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "arrived": self.arrived,
            "admitted": self.admitted,
            "shed": self.shed,
            "queue_wait_seconds": round(self.queue_wait_seconds, 6),
            "active_streams": self.active_streams,
        }


class AdmissionGateway:
    """The overload-robust front door every heavy server operation passes.

    :meth:`run` is the worker path (admit → execute on the caller's thread →
    release); :meth:`acquire_stream` is the streaming-backpressure path (a
    permit held for the life of a cursor/chunked response).  Both shed with
    :class:`~repro.errors.OverloadError` instead of queueing unboundedly.
    """

    def __init__(self, config: Optional[GatewayConfig] = None,
                 clock: Clock = SYSTEM_CLOCK):
        self.config = config or GatewayConfig()
        if self.config.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.config.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        self._clock = clock
        self._semaphore = threading.Semaphore(self.config.max_workers)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._draining = False
        self._buckets: Dict[str, TokenBucket] = {}
        self._tenants: Dict[str, _TenantCounters] = {}
        # -- load counters (all guarded by self._lock) -------------------------
        self._waiting = 0
        self._active = 0
        self._active_streams = 0
        self._peak_queued = 0
        self._peak_active = 0
        self._peak_active_streams = 0
        self._arrived = 0
        self._admitted = 0
        self._completed = 0
        self._streams_opened = 0
        self._shed: Dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        self._queue_wait_seconds = 0.0
        self._max_queue_wait_seconds = 0.0
        self._ewma_service_seconds: Optional[float] = None
        # -- metrics (None until bind_metrics; shed/queue-wait are event
        # metrics, everything else is function-backed at scrape time) --------
        self._shed_metric = None
        self._queue_wait_metric = None

    # -- metrics -----------------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Expose admission accounting through a metrics registry.

        Cumulative totals and load gauges are *function-backed* — read off the
        already-guarded counters at scrape time, free on the admission path.
        Sheds (labelled by reason) and the queue-wait histogram are event
        metrics recorded inline: sheds are an error path and queue waits only
        occur when a request actually queued.
        """
        registry.counter(
            "gateway_arrived_total",
            "Requests that reached the admission gateway.",
            function=lambda: self._arrived,
        )
        registry.counter(
            "gateway_admitted_total",
            "Requests admitted to a worker slot.",
            function=lambda: self._admitted,
        )
        registry.counter(
            "gateway_completed_total",
            "Admitted requests that finished executing.",
            function=lambda: self._completed,
        )
        registry.counter(
            "gateway_streams_opened_total",
            "Streaming permits handed out over the gateway's lifetime.",
            function=lambda: self._streams_opened,
        )
        registry.gauge(
            "gateway_active",
            "Requests executing right now.",
            function=lambda: self._active,
        )
        registry.gauge(
            "gateway_queued",
            "Requests waiting for a worker slot right now.",
            function=lambda: self._waiting,
        )
        registry.gauge(
            "gateway_active_streams",
            "Streaming permits currently held by open cursors/responses.",
            function=lambda: self._active_streams,
        )
        self._shed_metric = registry.counter(
            "gateway_sheds_total",
            "Requests shed at admission, labelled by reason.",
        )
        self._queue_wait_metric = registry.histogram(
            "gateway_queue_wait_seconds",
            "Seconds admitted requests spent waiting for a worker slot.",
        )

    # -- tenants -----------------------------------------------------------------

    def _tenant(self, tenant: Optional[str]) -> str:
        name = (tenant or "").strip() or self.config.default_tenant
        return name

    def _counters(self, tenant: str) -> _TenantCounters:
        """Caller holds the lock."""
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters()
        return counters

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        rate = self.config.tenant_rate_per_second
        if rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    rate, self.config.tenant_bucket_burst(), self._clock
                )
            return bucket

    # -- shedding ----------------------------------------------------------------

    def _shed_request(self, tenant: str, reason: str, message: str,
                      retry_after_seconds: Optional[float] = None) -> None:
        with self._lock:
            self._shed[reason] = self._shed.get(reason, 0) + 1
            self._counters(tenant).shed += 1
        if self._shed_metric is not None:
            self._shed_metric.inc(reason=reason)
        raise OverloadError(message, reason=reason,
                            retry_after_seconds=retry_after_seconds)

    def _projected_wait_seconds(self) -> float:
        """Expected queue wait of one more arrival, from the service EWMA."""
        with self._lock:
            waiting = self._waiting
            active = self._active
            service = self._ewma_service_seconds
        free = self.config.max_workers - active
        if free > waiting:
            return 0.0
        if not service:
            return 0.0  # no history yet: optimism, backed by the hard bound
        position = waiting - free + 1
        return service * math.ceil(position / self.config.max_workers)

    # -- the worker path -----------------------------------------------------------

    def run(self, work: Callable[[Optional[float]], T],
            tenant: Optional[str] = None,
            timeout_seconds: Optional[float] = None) -> T:
        """Admit and execute ``work`` on the caller's thread.

        ``work`` receives the timeout budget *remaining after queue wait*
        (None when the request was unbounded) — the statement deadline the
        admitted execution should run under.  Raises
        :class:`~repro.errors.OverloadError` when the request is shed.

        The admission decision is traced as an ``admission`` span under the
        caller's current span (queue wait annotated; a shed closes the span
        with the error and force-keeps the trace), and the tenant is bound to
        the execution context so deep layers (the slow-query log) attribute
        the work without threading a tenant parameter everywhere.
        """
        tenant_name = self._tenant(tenant)
        span = current_span().child("admission", tenant=tenant_name)
        try:
            remaining, queue_wait = self._admit(tenant_name, timeout_seconds)
        except OverloadError as error:
            span.flag("shed")
            span.annotate(shed_reason=error.reason)
            span.finish(error=error)
            raise
        span.annotate(queue_wait_seconds=round(queue_wait, 6))
        span.finish()

        tenant_token = bind_tenant(tenant_name)
        started = self._clock.now()
        try:
            return work(remaining)
        finally:
            unbind_tenant(tenant_token)
            elapsed = self._clock.now() - started
            with self._lock:
                self._active -= 1
                self._completed += 1
                alpha = self.config.ewma_alpha
                if self._ewma_service_seconds is None:
                    self._ewma_service_seconds = elapsed
                else:
                    self._ewma_service_seconds = (
                        alpha * elapsed + (1.0 - alpha) * self._ewma_service_seconds
                    )
                self._idle.notify_all()
            self._semaphore.release()

    def _admit(self, tenant_name: str,
               timeout_seconds: Optional[float]) -> tuple:
        """Walk the shed pipeline; returns ``(remaining_budget, queue_wait)``."""
        with self._lock:
            self._arrived += 1
            self._counters(tenant_name).arrived += 1
            draining = self._draining
        if draining:
            self._shed_request(
                tenant_name, "draining",
                "the server is draining for shutdown; retry against another "
                "replica or after restart",
            )

        bucket = self._bucket(tenant_name)
        if bucket is not None and not bucket.try_acquire():
            self._shed_request(
                tenant_name, "quota",
                f"tenant {tenant_name!r} exceeded its admission quota "
                f"({self.config.tenant_rate_per_second}/s, burst "
                f"{self.config.tenant_bucket_burst():g})",
                retry_after_seconds=bucket.seconds_until(),
            )

        if timeout_seconds is not None:
            projected = self._projected_wait_seconds()
            if projected >= timeout_seconds:
                self._shed_request(
                    tenant_name, "deadline",
                    f"projected queue wait of {projected:.3f}s exceeds the "
                    f"request's {timeout_seconds}s deadline; shedding instead "
                    "of queueing it to death",
                    retry_after_seconds=projected,
                )

        # A free worker slot means no queueing at all: grab it without
        # blocking.  Only when every slot is busy does the bounded queue
        # (and with it the queue-full shed) come into play — so
        # ``max_queue_depth=0`` still serves up to ``max_workers``
        # concurrent requests, it just refuses to let anyone *wait*.
        acquired = self._semaphore.acquire(blocking=False)
        queue_wait = 0.0
        if not acquired:
            with self._lock:
                if self._waiting >= self.config.max_queue_depth:
                    queue_full = True
                else:
                    queue_full = False
                    self._waiting += 1
                    self._peak_queued = max(self._peak_queued, self._waiting)
            if queue_full:
                self._shed_request(
                    tenant_name, "queue_full",
                    f"admission queue is full ({self.config.max_queue_depth} "
                    f"waiting on {self.config.max_workers} workers)",
                    retry_after_seconds=self._ewma_service_seconds,
                )

            queued_at = self._clock.now()
            try:
                if timeout_seconds is None:
                    self._semaphore.acquire()
                    acquired = True
                else:
                    # The hard guarantee: nobody waits in queue past their own
                    # deadline, whatever the projection believed.
                    acquired = self._semaphore.acquire(timeout=timeout_seconds)
            finally:
                with self._lock:
                    self._waiting -= 1
                    self._idle.notify_all()
            queue_wait = self._clock.now() - queued_at
        if not acquired:
            self._shed_request(
                tenant_name, "deadline",
                f"request waited {queue_wait:.3f}s for a worker and its "
                f"{timeout_seconds}s deadline left no budget to execute",
                retry_after_seconds=self._ewma_service_seconds,
            )

        remaining: Optional[float] = None
        if timeout_seconds is not None:
            remaining = timeout_seconds - queue_wait
            if remaining <= 1e-9:
                self._semaphore.release()
                self._shed_request(
                    tenant_name, "deadline",
                    f"queue wait of {queue_wait:.3f}s consumed the request's "
                    f"{timeout_seconds}s deadline",
                    retry_after_seconds=self._ewma_service_seconds,
                )

        with self._lock:
            self._admitted += 1
            self._active += 1
            self._peak_active = max(self._peak_active, self._active)
            self._queue_wait_seconds += queue_wait
            self._max_queue_wait_seconds = max(
                self._max_queue_wait_seconds, queue_wait
            )
            counters = self._counters(tenant_name)
            counters.admitted += 1
            counters.queue_wait_seconds += queue_wait
        if self._queue_wait_metric is not None:
            self._queue_wait_metric.observe(queue_wait)
        return remaining, queue_wait

    # -- the transport path ------------------------------------------------------------

    @property
    def admission_capacity(self) -> int:
        """Admitted statements the gateway can hold: running + queued.

        An event-loop transport must not hand the gateway more concurrent
        statements than this — its worker handoff (unlike the thread-per-call
        transport, where the *caller's* thread queues inside :meth:`run`)
        would otherwise buffer the excess outside the gateway's bounded,
        deadline-aware queue.  The transport sheds the overflow itself via
        :meth:`shed_at_transport`.
        """
        return self.config.max_workers + self.config.max_queue_depth

    def shed_at_transport(self, tenant: Optional[str] = None,
                          reason: str = "queue_full",
                          message: Optional[str] = None) -> None:
        """Record a transport-level shed and raise the retriable error.

        Keeps loop-side sheds inside the gateway's books (``arrived``/``shed``
        counters, per-tenant accounting), so the overload contract reads the
        same whichever layer turned the request away.  Always raises
        :class:`~repro.errors.OverloadError`.
        """
        tenant_name = self._tenant(tenant)
        with self._lock:
            self._arrived += 1
            self._counters(tenant_name).arrived += 1
            retry_after = self._ewma_service_seconds
        self._shed_request(
            tenant_name, reason,
            message or (
                f"transport at admission capacity "
                f"({self.config.max_workers} workers + "
                f"{self.config.max_queue_depth} queued); retry shortly"
            ),
            retry_after_seconds=retry_after,
        )

    # -- the streaming path ----------------------------------------------------------

    def acquire_stream(self, tenant: Optional[str] = None) -> Callable[[], None]:
        """Claim one streaming permit; returns its (idempotent) release.

        The permit — not a worker thread — is what a slow consumer holds for
        the life of a cursor or chunked response: row production happens on
        the consumer's own pulls against bounded buffers, and the bounded
        permit pool is the backpressure that sheds new streams once
        ``max_active_streams`` are open.
        """
        tenant_name = self._tenant(tenant)
        with self._lock:
            if self._draining:
                shed_reason = "draining"
            elif self._active_streams >= self.config.max_active_streams:
                shed_reason = "streams"
            else:
                shed_reason = None
                self._active_streams += 1
                self._streams_opened += 1
                self._peak_active_streams = max(
                    self._peak_active_streams, self._active_streams
                )
                self._counters(tenant_name).active_streams += 1
        if shed_reason == "draining":
            self._shed_request(
                tenant_name, "draining",
                "the server is draining for shutdown; no new streams",
            )
        if shed_reason == "streams":
            self._shed_request(
                tenant_name, "streams",
                f"all {self.config.max_active_streams} streaming permits are "
                "held by open cursors/responses; close one or retry shortly",
            )

        released = [False]

        def release() -> None:
            with self._lock:
                if released[0]:
                    return
                released[0] = True
                self._active_streams -= 1
                self._counters(tenant_name).active_streams -= 1
                self._idle.notify_all()

        return release

    # -- drain ------------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Shed new arrivals from now on; admitted work keeps running."""
        with self._lock:
            self._draining = True
            self._idle.notify_all()

    def await_drain(self, timeout_seconds: Optional[float] = None) -> bool:
        """Block until no work is active, queued or streaming; True if so."""
        deadline = (
            None if timeout_seconds is None
            else self._clock.now() + timeout_seconds
        )
        with self._idle:
            while self._active or self._waiting or self._active_streams:
                wait = None
                if deadline is not None:
                    wait = deadline - self._clock.now()
                    if wait <= 0:
                        return False
                self._idle.wait(timeout=wait)
            return True

    def drain(self, timeout_seconds: Optional[float] = None) -> bool:
        self.begin_drain()
        return self.await_drain(timeout_seconds)

    def resume(self) -> None:
        """Accept traffic again (tests, rolling restarts)."""
        with self._lock:
            self._draining = False

    # -- reporting ----------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The ``server_load`` report block."""
        with self._lock:
            shed = dict(self._shed)
            return {
                "workers": self.config.max_workers,
                "max_queue_depth": self.config.max_queue_depth,
                "max_active_streams": self.config.max_active_streams,
                "tenant_rate_per_second": self.config.tenant_rate_per_second,
                "draining": self._draining,
                "active": self._active,
                "queued": self._waiting,
                "active_streams": self._active_streams,
                "peak_active": self._peak_active,
                "peak_queued": self._peak_queued,
                "peak_active_streams": self._peak_active_streams,
                "arrived": self._arrived,
                "admitted": self._admitted,
                "completed": self._completed,
                "streams_opened": self._streams_opened,
                "shed": {"total": sum(shed.values()), **shed},
                "queue_wait_seconds": round(self._queue_wait_seconds, 6),
                "max_queue_wait_seconds": round(self._max_queue_wait_seconds, 6),
                "mean_service_seconds": (
                    round(self._ewma_service_seconds, 6)
                    if self._ewma_service_seconds is not None else None
                ),
                "tenants": {
                    name: counters.snapshot()
                    for name, counters in sorted(self._tenants.items())
                },
            }
