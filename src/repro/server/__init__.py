"""Server and client access layer: HTTP tunnel, mediation server, ODBC driver, QBE.

This package reproduces the receiver-side plumbing of Figure 1: applications
reach the mediation services either through the DB-API/ODBC-style driver
(:mod:`repro.server.odbc`) or through the HTML Query-By-Example front end
(:mod:`repro.server.qbe`); both speak the JSON protocol of
:mod:`repro.server.protocol` tunnelled over the simulated HTTP transport of
:mod:`repro.server.http` to a :class:`~repro.server.server.MediationServer`.
"""

from repro.server.protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    Request,
    Response,
    relation_from_payload,
    relation_to_payload,
)
from repro.server.http import ChannelStatistics, HttpChannel, HttpRequest, HttpResponse
from repro.server.server import MediationServer, ServerStatistics
from repro.server.aio import AsyncMediationServer, AsyncServerConfig
from repro.server.odbc import (
    Connection,
    ConnectionPool,
    Cursor,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from repro.server.qbe import QBEForm, QBEInterface
from repro.server.service import ExecutionSummary, FederatedQueryService, ResultHandle

__all__ = [
    "OPERATIONS",
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "relation_from_payload",
    "relation_to_payload",
    "ChannelStatistics",
    "HttpChannel",
    "HttpRequest",
    "HttpResponse",
    "MediationServer",
    "ServerStatistics",
    "AsyncMediationServer",
    "AsyncServerConfig",
    "Connection",
    "ConnectionPool",
    "Cursor",
    "ExecutionSummary",
    "FederatedQueryService",
    "ResultHandle",
    "apilevel",
    "connect",
    "paramstyle",
    "threadsafety",
    "QBEForm",
    "QBEInterface",
]
