"""The HTML Query-By-Example front end.

The prototype's second ready-to-use interface is "a HyperText Markup Language
(HTML) Query-By-Example (QBE)" form.  This module reproduces it without a
browser: :class:`QBEInterface` renders an HTML form for a chosen relation set
(one row of input fields per attribute: a checkbox to project the column, a
condition box, an optional example value), parses a submitted form back into a
SQL query, runs it through the mediation server, and renders the answer as an
HTML table annotated with the receiver context's modifier values.

Form field conventions (what a browser would POST):

* ``show__<binding>__<column>`` — "on" to include the column in the output;
* ``cond__<binding>__<column>`` — a condition fragment such as ``> 1000000``
  or ``= 'IBM'`` applied to the column;
* ``join__<n>`` — an explicit join condition such as ``r1.cname = r2.cname``;
* ``context`` — the receiver context to pose the query in.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ClientError
from repro.federation import Federation, FederationAnswer
from repro.sql.parser import parse_expression
from repro.sql.printer import to_sql


@dataclass
class QBEForm:
    """A parsed QBE submission."""

    relations: List[str]
    projections: List[Tuple[str, str]]
    conditions: List[str]
    joins: List[str]
    context: Optional[str] = None
    distinct: bool = False

    def to_sql(self) -> str:
        """Assemble the SQL query the form describes."""
        if not self.relations:
            raise ClientError("the QBE form selects no relations")
        if not self.projections:
            raise ClientError("the QBE form selects no output columns")
        select_list = ", ".join(f"{binding}.{column}" for binding, column in self.projections)
        distinct = "DISTINCT " if self.distinct else ""
        sql = f"SELECT {distinct}{select_list} FROM {', '.join(self.relations)}"
        where_parts = list(self.joins) + list(self.conditions)
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        return sql


class QBEInterface:
    """Generates QBE forms and turns submissions into mediated answers."""

    def __init__(self, federation: Federation):
        self.federation = federation

    # -- form generation -------------------------------------------------------------

    def render_form(self, relations: Sequence[str], action: str = "/coin/qbe") -> str:
        """Render the HTML QBE form for the chosen relations."""
        rows: List[str] = []
        for relation in relations:
            for attribute in self.federation.describe_relation(relation):
                name = attribute["attribute"]
                rows.append(
                    "<tr>"
                    f"<td>{html.escape(relation)}</td>"
                    f"<td>{html.escape(str(name))}</td>"
                    f"<td>{html.escape(str(attribute['type']))}</td>"
                    f'<td><input type="checkbox" name="show__{relation}__{name}"></td>'
                    f'<td><input type="text" name="cond__{relation}__{name}"></td>'
                    "</tr>"
                )
        contexts = "".join(
            f'<option value="{html.escape(context)}">{html.escape(context)}</option>'
            for context in self.federation.receiver_contexts
        )
        return (
            f'<form method="POST" action="{html.escape(action)}">\n'
            "<table>\n"
            "<tr><th>relation</th><th>attribute</th><th>type</th>"
            "<th>show</th><th>condition</th></tr>\n"
            + "\n".join(rows)
            + "\n</table>\n"
            f'<select name="context">{contexts}</select>\n'
            '<input type="text" name="join__1">\n'
            '<input type="submit" value="Run query">\n'
            "</form>"
        )

    # -- form parsing -------------------------------------------------------------------

    def parse_submission(self, fields: Dict[str, str]) -> QBEForm:
        """Turn submitted form fields into a :class:`QBEForm`."""
        projections: List[Tuple[str, str]] = []
        conditions: List[str] = []
        joins: List[str] = []
        relations: List[str] = []

        def note_relation(name: str) -> None:
            if name not in relations:
                relations.append(name)

        for field_name, value in fields.items():
            if field_name.startswith("show__"):
                if value and value.lower() not in ("off", "false", "0", ""):
                    _prefix, relation, column = field_name.split("__", 2)
                    note_relation(relation)
                    projections.append((relation, column))
            elif field_name.startswith("cond__"):
                if value and value.strip():
                    _prefix, relation, column = field_name.split("__", 2)
                    note_relation(relation)
                    conditions.append(self._condition_sql(relation, column, value.strip()))
            elif field_name.startswith("join__"):
                if value and value.strip():
                    condition = value.strip()
                    # Validate that the fragment parses as an expression.
                    parse_expression(condition)
                    joins.append(condition)
                    for part in condition.replace("=", " ").split():
                        if "." in part:
                            note_relation(part.split(".", 1)[0])

        context = fields.get("context") or None
        distinct = str(fields.get("distinct", "")).lower() in ("on", "true", "1")
        return QBEForm(
            relations=relations,
            projections=projections,
            conditions=conditions,
            joins=joins,
            context=context,
            distinct=distinct,
        )

    def _condition_sql(self, relation: str, column: str, fragment: str) -> str:
        """Turn a QBE condition fragment into a SQL conjunct on the column."""
        fragment = fragment.strip()
        operators = ("<=", ">=", "<>", "!=", "=", "<", ">")
        if fragment.upper().startswith(("LIKE ", "IN ", "BETWEEN ", "IS ")):
            condition = f"{relation}.{column} {fragment}"
        elif fragment.startswith(operators):
            condition = f"{relation}.{column} {fragment}"
        else:
            # A bare example value means equality, QBE-style.
            literal = fragment if _looks_numeric(fragment) else f"'{fragment}'"
            condition = f"{relation}.{column} = {literal}"
        # Validate by parsing; raises SQLSyntaxError for malformed fragments.
        parse_expression(condition)
        return condition

    # -- end-to-end ---------------------------------------------------------------------------

    def submit(self, fields: Dict[str, str]) -> Tuple[QBEForm, FederationAnswer]:
        """Parse a submission, run the mediated query, return form + answer."""
        form = self.parse_submission(fields)
        answer = self.federation.query(form.to_sql(), form.context)
        return form, answer

    def render_answer(self, answer: FederationAnswer, show_mediation: bool = True) -> str:
        """Render an answer as an HTML table (plus the mediated SQL, optionally)."""
        header = "".join(
            f"<th>{html.escape(annotation.label())}</th>" for annotation in answer.annotations
        ) or "".join(f"<th>{html.escape(name)}</th>" for name in answer.relation.schema.names)
        body_rows = []
        for row in answer.relation.rows:
            cells = "".join(f"<td>{html.escape(_format(value))}</td>" for value in row)
            body_rows.append(f"<tr>{cells}</tr>")
        table = f"<table>\n<tr>{header}</tr>\n" + "\n".join(body_rows) + "\n</table>"
        if not show_mediation:
            return table
        mediated = html.escape(answer.mediated_sql)
        return f"{table}\n<p>Mediated query:</p>\n<pre>{mediated}</pre>"


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _format(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
