"""The HTML Query-By-Example front end.

The prototype's second ready-to-use interface is "a HyperText Markup Language
(HTML) Query-By-Example (QBE)" form.  This module reproduces it without a
browser: :class:`QBEInterface` renders an HTML form for a chosen relation set
(one row of input fields per attribute: a checkbox to project the column, a
condition box, an optional example value), parses a submitted form back into a
SQL query, runs it through the mediation server, and renders the answer as an
HTML table annotated with the receiver context's modifier values.

Form field conventions (what a browser would POST):

* ``show__<binding>__<column>`` — "on" to include the column in the output;
* ``cond__<binding>__<column>`` — a condition fragment such as ``> 1000000``
  or ``= 'IBM'`` applied to the column;
* ``join__<n>`` — an explicit join condition such as ``r1.cname = r2.cname``;
* ``context`` — the receiver context to pose the query in.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.consistency.cqa import CONSISTENCY_MODES
from repro.engine.resilience import ON_SOURCE_ERROR_MODES
from repro.errors import ClientError
from repro.engine.executor import EngineResult
from repro.federation import Federation, FederationAnswer, FederationCursor
from repro.sql.parser import parse_expression
from repro.sql.printer import to_sql


@dataclass
class QBEForm:
    """A parsed QBE submission."""

    relations: List[str]
    projections: List[Tuple[str, str]]
    conditions: List[str]
    joins: List[str]
    context: Optional[str] = None
    distinct: bool = False
    #: Consistency mode requested by the form ("raw"/"certain"/"possible").
    consistency: str = "raw"
    #: Statement deadline requested by the form (blank = unbounded).
    timeout_seconds: Optional[float] = None
    #: Source-failure policy ("fail" or "partial" graceful degradation).
    on_source_error: str = "fail"
    #: Tenant identity the admission gateway accounts the query against.
    tenant: Optional[str] = None

    def to_sql(self) -> str:
        """Assemble the SQL query the form describes."""
        if not self.relations:
            raise ClientError("the QBE form selects no relations")
        if not self.projections:
            raise ClientError("the QBE form selects no output columns")
        select_list = ", ".join(f"{binding}.{column}" for binding, column in self.projections)
        distinct = "DISTINCT " if self.distinct else ""
        sql = f"SELECT {distinct}{select_list} FROM {', '.join(self.relations)}"
        where_parts = list(self.joins) + list(self.conditions)
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        return sql


class QBEInterface:
    """Generates QBE forms and turns submissions into mediated answers.

    When constructed with an admission ``gateway`` (the one the mediation
    server uses), submissions pass the same overload discipline as every
    other entry point: per-tenant quotas, bounded queueing and streaming
    permits — a flood of form posts sheds cleanly instead of piling up.
    """

    def __init__(self, federation: Federation, gateway=None):
        self.federation = federation
        self.gateway = gateway

    # -- form generation -------------------------------------------------------------

    def render_form(self, relations: Sequence[str], action: str = "/coin/qbe") -> str:
        """Render the HTML QBE form for the chosen relations."""
        rows: List[str] = []
        for relation in relations:
            for attribute in self.federation.describe_relation(relation):
                name = attribute["attribute"]
                rows.append(
                    "<tr>"
                    f"<td>{html.escape(relation)}</td>"
                    f"<td>{html.escape(str(name))}</td>"
                    f"<td>{html.escape(str(attribute['type']))}</td>"
                    f'<td><input type="checkbox" name="show__{relation}__{name}"></td>'
                    f'<td><input type="text" name="cond__{relation}__{name}"></td>'
                    "</tr>"
                )
        contexts = "".join(
            f'<option value="{html.escape(context)}">{html.escape(context)}</option>'
            for context in self.federation.receiver_contexts
        )
        return (
            f'<form method="POST" action="{html.escape(action)}">\n'
            "<table>\n"
            "<tr><th>relation</th><th>attribute</th><th>type</th>"
            "<th>show</th><th>condition</th></tr>\n"
            + "\n".join(rows)
            + "\n</table>\n"
            f'<select name="context">{contexts}</select>\n'
            '<input type="text" name="join__1">\n'
            '<input type="submit" value="Run query">\n'
            "</form>"
        )

    # -- form parsing -------------------------------------------------------------------

    def parse_submission(self, fields: Dict[str, str]) -> QBEForm:
        """Turn submitted form fields into a :class:`QBEForm`."""
        projections: List[Tuple[str, str]] = []
        conditions: List[str] = []
        joins: List[str] = []
        relations: List[str] = []

        def note_relation(name: str) -> None:
            if name not in relations:
                relations.append(name)

        for field_name, value in fields.items():
            if field_name.startswith("show__"):
                if value and value.lower() not in ("off", "false", "0", ""):
                    _prefix, relation, column = field_name.split("__", 2)
                    note_relation(relation)
                    projections.append((relation, column))
            elif field_name.startswith("cond__"):
                if value and value.strip():
                    _prefix, relation, column = field_name.split("__", 2)
                    note_relation(relation)
                    conditions.append(self._condition_sql(relation, column, value.strip()))
            elif field_name.startswith("join__"):
                if value and value.strip():
                    condition = value.strip()
                    # Validate that the fragment parses as an expression.
                    parse_expression(condition)
                    joins.append(condition)
                    for part in condition.replace("=", " ").split():
                        if "." in part:
                            note_relation(part.split(".", 1)[0])

        context = fields.get("context") or None
        distinct = str(fields.get("distinct", "")).lower() in ("on", "true", "1")
        consistency = str(fields.get("consistency", "") or "raw").lower()
        if consistency not in CONSISTENCY_MODES:
            # Malformed form input is the client's fault, like every other
            # field here — keep the QBE error contract (ClientError).
            raise ClientError(
                f"the QBE form names an unknown consistency mode "
                f"{consistency!r}; expected one of {', '.join(CONSISTENCY_MODES)}"
            )
        raw_timeout = str(fields.get("timeout_seconds", "") or "").strip()
        timeout_seconds: Optional[float] = None
        if raw_timeout:
            try:
                timeout_seconds = float(raw_timeout)
            except ValueError as exc:
                raise ClientError(
                    f"the QBE form names an invalid timeout {raw_timeout!r}"
                ) from exc
        on_source_error = str(
            fields.get("on_source_error", "") or "fail"
        ).lower()
        if on_source_error not in ON_SOURCE_ERROR_MODES:
            raise ClientError(
                f"the QBE form names an unknown source-failure policy "
                f"{on_source_error!r}; expected one of "
                f"{', '.join(ON_SOURCE_ERROR_MODES)}"
            )
        return QBEForm(
            relations=relations,
            projections=projections,
            conditions=conditions,
            joins=joins,
            context=context,
            distinct=distinct,
            consistency=consistency,
            timeout_seconds=timeout_seconds,
            on_source_error=on_source_error,
            tenant=str(fields.get("tenant", "") or "").strip() or None,
        )

    def _condition_sql(self, relation: str, column: str, fragment: str) -> str:
        """Turn a QBE condition fragment into a SQL conjunct on the column."""
        fragment = fragment.strip()
        operators = ("<=", ">=", "<>", "!=", "=", "<", ">")
        if fragment.upper().startswith(("LIKE ", "IN ", "BETWEEN ", "IS ")):
            condition = f"{relation}.{column} {fragment}"
        elif fragment.startswith(operators):
            condition = f"{relation}.{column} {fragment}"
        else:
            # A bare example value means equality, QBE-style.
            literal = fragment if _looks_numeric(fragment) else f"'{fragment}'"
            condition = f"{relation}.{column} = {literal}"
        # Validate by parsing; raises SQLSyntaxError for malformed fragments.
        parse_expression(condition)
        return condition

    # -- end-to-end ---------------------------------------------------------------------------

    #: Rows pulled per batch when draining or chunk-rendering a cursor.
    STREAM_BATCH = 256

    def submit(self, fields: Dict[str, str]) -> Tuple[QBEForm, FederationAnswer]:
        """Parse a submission, run the mediated query, return form + answer.

        Since the streaming rework this drives the same ``stream=True``
        cursor path as the SQL entry points (the engine stages branches
        lazily and pulls in batches) and only *assembles* the materialized
        :class:`FederationAnswer` the historical interface promises.
        """
        form, cursor = self.submit_stream(fields)
        with cursor:
            relation = cursor.stream.to_relation()
            annotations = cursor.annotations
        execution = EngineResult(
            relation=relation, plan=cursor.prepared.plan, report=cursor.report
        )
        answer = FederationAnswer(
            relation=relation,
            mediation=cursor.mediation,
            execution=execution,
            annotations=annotations,
        )
        return form, answer

    def submit_stream(self, fields: Dict[str, str]) -> Tuple[QBEForm, FederationCursor]:
        """Parse a submission and open a streaming cursor over its answer.

        The cursor's first rows are available while slower sources are still
        fetching; closing it early cancels outstanding round trips — parity
        with ``Federation.query(..., stream=True)``.
        """
        form = self.parse_submission(fields)

        def open_cursor(remaining: Optional[float]) -> FederationCursor:
            timeout = form.timeout_seconds if remaining is None else remaining
            return self.federation.query(
                form.to_sql(), form.context, stream=True,
                consistency=form.consistency,
                timeout_seconds=timeout,
                on_source_error=form.on_source_error,
            )

        if self.gateway is None:
            return form, open_cursor(None)

        # Same discipline as the server's cursor path: a streaming permit
        # held for the cursor's life, a worker slot only while opening.
        release_stream = self.gateway.acquire_stream(form.tenant)
        try:
            cursor = self.gateway.run(
                open_cursor, tenant=form.tenant,
                timeout_seconds=form.timeout_seconds,
            )
        except BaseException:
            release_stream()
            raise
        original_close = cursor.close

        def close() -> None:
            try:
                original_close()
            finally:
                release_stream()

        cursor.close = close
        return form, cursor

    def render_answer(self, answer: FederationAnswer, show_mediation: bool = True) -> str:
        """Render an answer as an HTML table (plus the mediated SQL, optionally)."""
        header = "".join(
            f"<th>{html.escape(annotation.label())}</th>" for annotation in answer.annotations
        ) or "".join(f"<th>{html.escape(name)}</th>" for name in answer.relation.schema.names)
        body_rows = []
        for row in answer.relation.rows:
            cells = "".join(f"<td>{html.escape(_format(value))}</td>" for value in row)
            body_rows.append(f"<tr>{cells}</tr>")
        table = f"<table>\n<tr>{header}</tr>\n" + "\n".join(body_rows) + "\n</table>"
        if not show_mediation:
            return table
        mediated = html.escape(answer.mediated_sql)
        return f"{table}\n<p>Mediated query:</p>\n<pre>{mediated}</pre>"

    def render_answer_stream(self, cursor: FederationCursor,
                             show_mediation: bool = True,
                             batch_size: Optional[int] = None) -> Iterator[str]:
        """Render an open cursor as incrementally-produced HTML chunks.

        The header chunk is emitted before any row arrives (annotations and
        the description are schema-level), then one chunk per fetched batch —
        the browser renders rows while slow sources are still in flight —
        and finally the closing tags (plus the mediated SQL).  The cursor is
        closed when the generator finishes or is abandoned.
        """
        size = batch_size or self.STREAM_BATCH
        try:
            header = "".join(
                f"<th>{html.escape(annotation.label())}</th>"
                for annotation in cursor.annotations
            ) or "".join(
                f"<th>{html.escape(name)}</th>" for name in cursor.schema.names
            )
            yield f"<table>\n<tr>{header}</tr>\n"
            while True:
                rows = cursor.fetchmany(size)
                if not rows:
                    break
                yield "\n".join(
                    "<tr>" + "".join(
                        f"<td>{html.escape(_format(value))}</td>" for value in row
                    ) + "</tr>"
                    for row in rows
                ) + "\n"
            yield "</table>"
            if show_mediation:
                mediated = html.escape(cursor.mediated_sql)
                yield f"\n<p>Mediated query:</p>\n<pre>{mediated}</pre>"
        finally:
            cursor.close()


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _format(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
