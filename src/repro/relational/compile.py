"""Compilation of SQL AST expressions into Python closures.

The interpreted :class:`~repro.relational.eval.ExpressionEvaluator` re-walks
the AST for every row: each node costs an ``isinstance`` dispatch chain, an
``op.upper()`` call and a dict lookup before any real work happens.  On the
hot paths (filter predicates, projections, join keys, sort keys) that
per-row interpretation dominates execution time.

:class:`ExpressionCompiler` walks the AST **once** and produces a closure
``row -> value`` for each node:

* column references resolve to a position at compile time and become a plain
  ``row[i]`` access;
* ``AND``/``OR`` compile to short-circuiting closures with SQL three-valued
  semantics;
* subtrees containing no column references are *folded*: evaluated at most
  once (lazily, on first use, so error and empty-input behaviour match the
  interpreter) and replaced by a constant closure;
* literal LIKE patterns are compiled to a regex once;
* projections consisting solely of column references compile to a single
  ``operator.itemgetter`` call (tuple construction in C).

Semantics are identical to the interpreter by construction — every closure
mirrors one branch of :meth:`ExpressionEvaluator._eval` — and
``tests/relational/test_compile.py`` holds the two implementations to the
same answers (and the same errors) over mixed-type rows.  Uncorrelated
subqueries are executed at most once per compiled expression instead of once
per row; their results cannot differ because the dialect has no correlation.

Compiled closures are additionally **memoized** across operator instances: a
bounded LRU keyed by (entry point, expression AST, schema attributes) lets a
cached plan executed many times — the prepared-query warm path — reuse the
closures compiled on the first execution instead of re-walking the same
frozen AST per statement.  Expressions containing subqueries are never
memoized: their folded results are pinned to one evaluation context.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from operator import itemgetter
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.relational.eval import _SCALAR_FUNCTIONS, like_to_regex
from repro.relational.schema import Schema
from repro.relational.types import sql_compare, sql_equal, sort_key
from repro.sql.ast import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Node,
    Star,
    Subquery,
    UnaryOp,
    walk,
)

Row = Sequence[Any]
CompiledExpr = Callable[[Row], Any]

import operator as _operator

_DIRECT_COMPARISONS: dict = {
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}
_ARITHMETIC_OPS: dict = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
    "%": _operator.mod,
}


def _is_constant(node: Node) -> bool:
    """True when no descendant depends on the row (safe to fold)."""
    return not any(
        isinstance(n, (ColumnRef, Star, Subquery, Exists)) for n in walk(node)
    )


class _CompiledMemo:
    """Bounded, thread-safe LRU of compiled closures shared across operators.

    Keys use the **identity** of the expression nodes — cached plans are
    immutable, so re-executing one presents the same AST objects every time,
    and identity lookups skip re-hashing the whole tree per operator.  Each
    entry stores a strong reference to its nodes: while an entry lives, its
    ids cannot be recycled, and a lookup additionally verifies the stored
    nodes *are* the probe nodes, so an id reused after eviction can only
    miss.  Closures are pure functions of (expression, schema) — except when
    the expression contains a subquery, in which case the entry records
    "never memoize" (the closure folds the subquery's result for its own
    lifetime).
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Tuple[tuple, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, nodes: tuple) -> Tuple[bool, Any]:
        """Return (found, fn); ``fn`` None means "compile privately"."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False, None
            stored_nodes, fn = entry
            if len(stored_nodes) != len(nodes) or any(
                stored is not probe for stored, probe in zip(stored_nodes, nodes)
            ):
                # id recycled after eviction of the original nodes.
                del self._entries[key]
                return False, None
            self._entries.move_to_end(key)
            return True, fn

    def put(self, key: Hashable, nodes: tuple, fn: Any) -> None:
        with self._lock:
            self._entries[key] = (nodes, fn)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_MEMO = _CompiledMemo()


def clear_compiled_memo() -> None:
    """Drop every memoized closure (test isolation hook)."""
    _MEMO.clear()


def _fold(fn: CompiledExpr) -> CompiledExpr:
    """Memoize a row-independent closure; evaluation stays lazy so that
    errors surface on first *use*, exactly when the interpreter would raise."""
    cache: List[Any] = []

    def folded(row: Row) -> Any:
        if not cache:
            cache.append(fn(row))
        return cache[0]

    return folded


def _raising(error: Exception) -> CompiledExpr:
    """A closure deferring a compile-time failure to evaluation time (the
    interpreter only raises when an offending node is actually evaluated)."""

    def raise_(row: Row) -> Any:
        raise error

    return raise_


def _as_bool(value: Any) -> Optional[bool]:
    if value is None:
        return None
    return bool(value)


#: Node types whose compiled closures already return True/False/None, making
#: the predicate()'s bool-conversion wrapper a no-op worth skipping.
_BOOLEAN_BINARY_OPS = frozenset({"AND", "OR", "=", "<>", "<", "<=", ">", ">="})


def _returns_bool(node: Node) -> bool:
    if isinstance(node, BinaryOp):
        return node.op.upper() in _BOOLEAN_BINARY_OPS
    if isinstance(node, UnaryOp):
        return node.op.upper() == "NOT"
    return isinstance(node, (InList, Between, Like, IsNull, Exists))


class ExpressionCompiler:
    """Compiles expressions of a fixed schema into ``row -> value`` closures.

    Mirrors the public surface of :class:`ExpressionEvaluator`: ``compile``
    replaces ``evaluate`` (returning a closure instead of a value) and
    ``predicate`` wraps a compiled boolean expression in the three-valued
    True/False/None convention used by Filter and the join operators.
    """

    def __init__(self, schema: Schema,
                 subquery_executor: Optional[Callable[[Node], "object"]] = None):
        self.schema = schema
        self._subquery_executor = subquery_executor

    # -- memoization ---------------------------------------------------------

    def _memoized(self, kind: str, nodes: tuple, build: Callable[[], Any]) -> Any:
        """Build-or-recall a closure for ``nodes`` against this schema.

        Subquery-bearing expressions fold their subquery's result into the
        closure, so they are bound to this compiler's executor and lifetime
        — the memo records them as never-memoize and rebuilds each time.
        """
        key = (kind, tuple(map(id, nodes)), self.schema.memo_token)
        found, fn = _MEMO.get(key, nodes)
        if found:
            return fn if fn is not None else build()
        private = any(
            isinstance(n, (Subquery, Exists)) for root in nodes for n in walk(root)
        )
        fn = build()
        _MEMO.put(key, nodes, None if private else fn)
        return fn

    # -- public API ----------------------------------------------------------

    def compile(self, node: Node) -> CompiledExpr:
        return self._memoized("expr", (node,), lambda: self._compile_root(node))

    def _compile_root(self, node: Node) -> CompiledExpr:
        fn = self._compile(node)
        if _is_constant(node):
            fn = _fold(fn)
        return fn

    def predicate(self, node: Node) -> Callable[[Row], Optional[bool]]:
        return self._memoized("pred", (node,), lambda: self._predicate(node))

    def _predicate(self, node: Node) -> Callable[[Row], Optional[bool]]:
        fn = self.compile(node)
        if _returns_bool(node):
            # The compiled closure already yields True/False/None.
            return fn

        def check(row: Row) -> Optional[bool]:
            value = fn(row)
            if value is None:
                return None
            return bool(value)

        return check

    def projection(self, expressions: Sequence[Node]) -> Callable[[Row], tuple]:
        """Compile a list of output expressions into one ``row -> tuple``.

        All-column projections use :func:`operator.itemgetter`, which builds
        the output tuple without re-entering Python per column.
        """
        expressions = tuple(expressions)
        return self._memoized("proj", expressions,
                              lambda: self._projection(expressions))

    def _projection(self, expressions: Sequence[Node]) -> Callable[[Row], tuple]:
        if expressions and all(isinstance(expr, ColumnRef) for expr in expressions):
            try:
                positions = [
                    self.schema.index_of(expr.name, expr.table) for expr in expressions
                ]
            except Exception:
                positions = None
            if positions is not None:
                if len(positions) == 1:
                    index = positions[0]
                    return lambda row: (row[index],)
                return itemgetter(*positions)
        compiled = [self.compile(expr) for expr in expressions]
        # Small arities get dedicated closures; the generic fallback pays for
        # generator machinery on every row.
        if len(compiled) == 1:
            only = compiled[0]
            return lambda row: (only(row),)
        if len(compiled) == 2:
            first, second = compiled
            return lambda row: (first(row), second(row))
        if len(compiled) == 3:
            first, second, third = compiled
            return lambda row: (first(row), second(row), third(row))
        if len(compiled) == 4:
            first, second, third, fourth = compiled
            return lambda row: (first(row), second(row), third(row), fourth(row))
        return lambda row: tuple(fn(row) for fn in compiled)

    def sort_key(self, node: Node) -> Callable[[Row], tuple]:
        """Compile an ORDER BY expression to a total-order key function."""
        fn = self.compile(node)
        return lambda row: sort_key(fn(row))

    # -- dispatch -------------------------------------------------------------

    def _compile(self, node: Node) -> CompiledExpr:
        if isinstance(node, Literal):
            value = node.value
            return lambda row: value
        if isinstance(node, ColumnRef):
            try:
                index = self.schema.index_of(node.name, node.table)
            except Exception as exc:
                return _raising(exc)
            return lambda row: row[index]
        if isinstance(node, BinaryOp):
            return self._binary(node)
        if isinstance(node, UnaryOp):
            return self._unary(node)
        if isinstance(node, FunctionCall):
            return self._function(node)
        if isinstance(node, InList):
            return self._in_list(node)
        if isinstance(node, Between):
            return self._between(node)
        if isinstance(node, Like):
            return self._like(node)
        if isinstance(node, IsNull):
            operand = self.compile(node.expr)
            if node.negated:
                return lambda row: operand(row) is not None
            return lambda row: operand(row) is None
        if isinstance(node, Case):
            return self._case(node)
        if isinstance(node, Subquery):
            return self._scalar_subquery(node)
        if isinstance(node, Exists):
            return self._exists(node)
        if isinstance(node, Star):
            return _raising(
                EvaluationError("'*' is only valid inside COUNT(*) or a select list")
            )
        return _raising(EvaluationError(f"cannot evaluate expression {node!r}"))

    # -- operators -------------------------------------------------------------

    def _binary(self, node: BinaryOp) -> CompiledExpr:
        op = node.op.upper()

        if op == "AND":
            left, right = self.compile(node.left), self.compile(node.right)

            def and_(row: Row) -> Optional[bool]:
                lhs = left(row)
                if lhs is not None and not lhs:
                    return False
                rhs = right(row)
                if rhs is not None and not rhs:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return and_
        if op == "OR":
            left, right = self.compile(node.left), self.compile(node.right)

            def or_(row: Row) -> Optional[bool]:
                lhs = left(row)
                if lhs is not None and lhs:
                    return True
                rhs = right(row)
                if rhs is not None and rhs:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return or_

        left, right = self.compile(node.left), self.compile(node.right)

        if op == "=":
            if isinstance(node.right, Literal):
                return self._equal_const(left, node.right.value, negated=False)
            return lambda row: sql_equal(left(row), right(row))
        if op == "<>":
            if isinstance(node.right, Literal):
                return self._equal_const(left, node.right.value, negated=True)

            def not_equal(row: Row) -> Optional[bool]:
                equal = sql_equal(left(row), right(row))
                return None if equal is None else not equal

            return not_equal
        if op in ("<", "<=", ">", ">="):
            if (
                isinstance(node.right, Literal)
                and not isinstance(node.right.value, bool)
                and isinstance(node.right.value, (int, float))
            ):
                return self._compare_numeric_const(op, left, node.right.value)
            return self._comparison(op, left, right)
        if op in ("+", "-", "*", "/", "%"):
            if (
                isinstance(node.right, Literal)
                and not isinstance(node.right.value, bool)
                and isinstance(node.right.value, (int, float))
            ):
                return self._arithmetic_const(op, left, node.right.value)
            return self._arithmetic(op, left, right)
        if op == "||":

            def concat(row: Row) -> Any:
                lhs, rhs = left(row), right(row)
                if lhs is None or rhs is None:
                    return None
                return f"{lhs}{rhs}"

            return concat
        return _raising(EvaluationError(f"unsupported operator {node.op!r}"))

    @staticmethod
    def _comparison(op: str, left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
        direct = _DIRECT_COMPARISONS[op]

        def compare(row: Row) -> Optional[bool]:
            lhs, rhs = left(row), right(row)
            if lhs is None or rhs is None:
                return None
            # Plain numerics take the fast path, float-coerced exactly as
            # sql_compare would; everything else goes through the three-valued
            # comparator (strings, bools, type errors).
            if (type(lhs) is int or type(lhs) is float) and (
                type(rhs) is int or type(rhs) is float
            ):
                return direct(float(lhs), float(rhs))
            comparison = sql_compare(lhs, rhs)
            return None if comparison is None else direct(comparison, 0)

        return compare

    @staticmethod
    def _compare_numeric_const(op: str, left: CompiledExpr, constant) -> CompiledExpr:
        """``expr <op> numeric-literal``: the common filter shape."""
        direct = _DIRECT_COMPARISONS[op]
        coerced = float(constant)

        def compare(row: Row) -> Optional[bool]:
            value = left(row)
            if value is None:
                return None
            # Float coercion mirrors sql_compare (matters for ints >= 2**53).
            if type(value) is int or type(value) is float:
                return direct(float(value), coerced)
            comparison = sql_compare(value, constant)
            return None if comparison is None else direct(comparison, 0)

        return compare

    @staticmethod
    def _equal_const(left: CompiledExpr, constant, negated: bool) -> CompiledExpr:
        """``expr = literal`` / ``expr <> literal`` with a type-matched fast path."""
        if constant is None:
            # Still evaluate the operand: resolution/evaluation errors must
            # surface exactly as they would interpreted.
            def equal_null(row: Row) -> None:
                left(row)
                return None

            return equal_null
        if isinstance(constant, str):

            def equal_string(row: Row) -> Optional[bool]:
                value = left(row)
                if type(value) is str:
                    return (value != constant) if negated else (value == constant)
                if value is None:
                    return None
                equal = sql_equal(value, constant)
                return None if equal is None else (not equal if negated else equal)

            return equal_string
        if isinstance(constant, (int, float)) and not isinstance(constant, bool):
            coerced = float(constant)

            def equal_number(row: Row) -> Optional[bool]:
                value = left(row)
                # Float coercion mirrors sql_equal (matters for ints >= 2**53).
                if type(value) is int or type(value) is float:
                    return (float(value) != coerced) if negated else (float(value) == coerced)
                if value is None:
                    return None
                equal = sql_equal(value, constant)
                return None if equal is None else (not equal if negated else equal)

            return equal_number

        def equal(row: Row) -> Optional[bool]:
            result = sql_equal(left(row), constant)
            return None if result is None else (not result if negated else result)

        return equal

    @staticmethod
    def _arithmetic_const(op: str, left: CompiledExpr, constant) -> CompiledExpr:
        """``expr <op> numeric-literal`` (projection arithmetic, conversions)."""
        apply = _ARITHMETIC_OPS[op]
        divides = op in ("/", "%")

        def arith_const(row: Row) -> Any:
            value = left(row)
            if value is None:
                return None
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if divides:
                    try:
                        return apply(value, constant)
                    except ZeroDivisionError:
                        return None
                return apply(value, constant)
            raise EvaluationError(f"arithmetic on non-numeric value {value!r}")

        return arith_const

    @staticmethod
    def _arithmetic(op: str, left: CompiledExpr, right: CompiledExpr) -> CompiledExpr:
        apply = _ARITHMETIC_OPS[op]
        divides = op in ("/", "%")

        def arith(row: Row) -> Any:
            lhs, rhs = left(row), right(row)
            if lhs is None or rhs is None:
                return None
            if not isinstance(lhs, (int, float)) or isinstance(lhs, bool):
                raise EvaluationError(f"arithmetic on non-numeric value {lhs!r}")
            if not isinstance(rhs, (int, float)) or isinstance(rhs, bool):
                raise EvaluationError(f"arithmetic on non-numeric value {rhs!r}")
            if divides:
                try:
                    return apply(lhs, rhs)
                except ZeroDivisionError:
                    return None
            return apply(lhs, rhs)

        return arith

    def _unary(self, node: UnaryOp) -> CompiledExpr:
        operand = self.compile(node.operand)
        if node.op.upper() == "NOT":

            def negate_bool(row: Row) -> Optional[bool]:
                value = _as_bool(operand(row))
                return None if value is None else not value

            return negate_bool
        if node.op == "-":

            def negate(row: Row) -> Any:
                value = operand(row)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise EvaluationError(f"cannot negate {value!r}")
                return -value

            return negate
        return _raising(EvaluationError(f"unsupported unary operator {node.op!r}"))

    # -- functions and predicates ----------------------------------------------

    def _function(self, node: FunctionCall) -> CompiledExpr:
        name = node.name.upper()
        fn = _SCALAR_FUNCTIONS.get(name)
        if fn is None:
            return _raising(EvaluationError(
                f"unknown function {name!r} (aggregates are only valid with GROUP BY handling)"
            ))
        args = [self.compile(arg) for arg in node.args]

        def call(row: Row) -> Any:
            try:
                return fn(*[arg(row) for arg in args])
            except EvaluationError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise EvaluationError(f"error evaluating {name}: {exc}") from exc

        return call

    def _in_list(self, node: InList) -> CompiledExpr:
        value_fn = self.compile(node.expr)
        negated = node.negated

        if len(node.items) == 1 and isinstance(node.items[0], Subquery):
            subquery = node.items[0]

            def members_of(row: Row) -> List[Any]:
                relation = self._run_subquery(subquery)
                return [r[0] for r in relation.rows]

            members_fn: Callable[[Row], List[Any]] = _fold(members_of)
        else:
            item_fns = [self.compile(item) for item in node.items]
            members_fn = lambda row: [fn(row) for fn in item_fns]
            if all(_is_constant(item) for item in node.items):
                members_fn = _fold(members_fn)

        def in_list(row: Row) -> Optional[bool]:
            value = value_fn(row)
            members = members_fn(row)
            if value is None:
                return None
            saw_null = False
            for member in members:
                equal = sql_equal(value, member)
                if equal is True:
                    return False if negated else True
                if equal is None:
                    saw_null = True
            if saw_null:
                return None
            return True if negated else False

        return in_list

    def _between(self, node: Between) -> CompiledExpr:
        value_fn = self.compile(node.expr)
        low_fn = self.compile(node.low)
        high_fn = self.compile(node.high)
        negated = node.negated

        def between(row: Row) -> Optional[bool]:
            value, low, high = value_fn(row), low_fn(row), high_fn(row)
            low_cmp = sql_compare(value, low) if value is not None and low is not None else None
            high_cmp = sql_compare(value, high) if value is not None and high is not None else None
            if low_cmp is None or high_cmp is None:
                return None
            inside = low_cmp >= 0 and high_cmp <= 0
            return not inside if negated else inside

        return between

    def _like(self, node: Like) -> CompiledExpr:
        value_fn = self.compile(node.expr)
        negated = node.negated

        if isinstance(node.pattern, Literal):
            pattern = node.pattern.value
            regex = like_to_regex(str(pattern)) if pattern is not None else None

            def like_constant(row: Row) -> Optional[bool]:
                value = value_fn(row)
                if value is None or regex is None:
                    return None
                matched = bool(regex.match(str(value)))
                return not matched if negated else matched

            return like_constant

        pattern_fn = self.compile(node.pattern)
        cache: dict = {}

        def like(row: Row) -> Optional[bool]:
            value, pattern = value_fn(row), pattern_fn(row)
            if value is None or pattern is None:
                return None
            regex = cache.get(pattern)
            if regex is None:
                regex = like_to_regex(str(pattern))
                cache[pattern] = regex
            matched = bool(regex.match(str(value)))
            return not matched if negated else matched

        return like

    def _case(self, node: Case) -> CompiledExpr:
        branches = [
            (self.compile(condition), self.compile(value))
            for condition, value in node.whens
        ]
        default = self.compile(node.default) if node.default is not None else None

        def case(row: Row) -> Any:
            for condition, value in branches:
                if _as_bool(condition(row)) is True:
                    return value(row)
            if default is not None:
                return default(row)
            return None

        return case

    # -- subqueries ------------------------------------------------------------

    def _run_subquery(self, node: Subquery):
        if self._subquery_executor is None:
            raise EvaluationError("subqueries are not supported in this evaluation context")
        return self._subquery_executor(node.query)

    def _scalar_subquery(self, node: Subquery) -> CompiledExpr:
        def scalar(row: Row) -> Any:
            relation = self._run_subquery(node)
            if len(relation.rows) == 0:
                return None
            if len(relation.rows) > 1 or len(relation.schema) != 1:
                raise EvaluationError("scalar subquery must return a single value")
            return relation.rows[0][0]

        return _fold(scalar)

    def _exists(self, node: Exists) -> CompiledExpr:
        negated = node.negated

        def exists(row: Row) -> bool:
            relation = self._run_subquery(node.subquery)
            result = len(relation.rows) > 0
            return not result if negated else result

        return _fold(exists)


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------


def compile_expression(node: Node, schema: Schema,
                       subquery_executor: Optional[Callable[[Node], "object"]] = None,
                       ) -> CompiledExpr:
    """Compile one expression against a schema."""
    return ExpressionCompiler(schema, subquery_executor).compile(node)


def compile_predicate(node: Node, schema: Schema,
                      subquery_executor: Optional[Callable[[Node], "object"]] = None,
                      ) -> Callable[[Row], Optional[bool]]:
    """Compile a row predicate returning True/False/None (SQL 3VL)."""
    return ExpressionCompiler(schema, subquery_executor).predicate(node)


def compile_projection(expressions: Sequence[Node], schema: Schema,
                       subquery_executor: Optional[Callable[[Node], "object"]] = None,
                       ) -> Callable[[Row], tuple]:
    """Compile a select list into a single ``row -> tuple`` closure."""
    return ExpressionCompiler(schema, subquery_executor).projection(expressions)
