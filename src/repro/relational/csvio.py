"""Reading and writing relations as delimiter-separated text.

Demo datasets ship as small embedded CSV snippets; the server layer also uses
this module to export query answers for spreadsheet-style receivers (the
paper demonstrates Excel access through the ODBC driver — exporting CSV is
the closest purely-local equivalent).
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType


def relation_to_csv(relation: Relation, include_header: bool = True, delimiter: str = ",") -> str:
    """Serialize a relation to CSV text (NULL renders as an empty field)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    if include_header:
        writer.writerow(relation.schema.names)
    for row in relation.rows:
        writer.writerow(["" if value is None else value for value in row])
    return buffer.getvalue()


def relation_from_csv(text: str, schema: Optional[Schema] = None, name: Optional[str] = None,
                      delimiter: str = ",", has_header: bool = True) -> Relation:
    """Parse CSV text into a relation.

    When ``schema`` is omitted, the header row provides attribute names and
    types are inferred per column from the data (INTEGER ⊂ FLOAT ⊂ STRING);
    empty fields become NULL.

    Arity is guarded at the door: against a *declared* schema every row must
    have exactly the declared arity, and even in inferred mode a row wider
    than the header is rejected — both raise :class:`SchemaError` naming the
    offending row instead of silently truncating (or failing rows deep
    inside join/filter operators later).  Inferred-mode rows *shorter* than
    the header keep the historical NULL padding, a deliberate convenience
    for small hand-written snippets.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        return Relation(schema or Schema([]), name=name)

    declared = schema is not None
    if has_header:
        header, data = rows[0], rows[1:]
        first_data_line = 2
    else:
        if schema is None:
            raise SchemaError("headerless CSV requires an explicit schema")
        header, data = schema.names, rows
        first_data_line = 1

    if schema is None:
        columns = list(zip(*data)) if data else [[] for _ in header]
        types = [_infer_column_type(column) for column in columns]
        # Pad in case of ragged input.
        while len(types) < len(header):
            types.append(DataType.STRING)
        schema = Schema(
            Attribute(name=column_name.strip(), type=column_type)
            for column_name, column_type in zip(header, types)
        )

    relation = Relation(schema, name=name)
    for index, row in enumerate(data):
        if len(row) > len(schema) or (declared and len(row) < len(schema)):
            raise SchemaError(
                f"CSV row {first_data_line + index} has {len(row)} field(s) "
                f"but the {'declared schema' if declared else 'header'} "
                f"declares {len(schema)}"
            )
        values = [_parse_value(field, attribute.type) for field, attribute in zip(row, schema)]
        # Inferred mode: short rows are padded with NULLs (see docstring).
        while len(values) < len(schema):
            values.append(None)
        relation.append(values)
    return relation


def _infer_column_type(values: Sequence[str]) -> DataType:
    non_empty = [value.strip() for value in values if value.strip() != ""]
    if not non_empty:
        return DataType.STRING
    if all(_is_int(value) for value in non_empty):
        return DataType.INTEGER
    if all(_is_float(value) for value in non_empty):
        return DataType.FLOAT
    return DataType.STRING


def _is_int(text: str) -> bool:
    try:
        int(text)
        return True
    except ValueError:
        return False


def _is_float(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def _parse_value(field: str, data_type: DataType):
    text = field.strip()
    if text == "":
        return None
    if data_type is DataType.INTEGER:
        return int(text)
    if data_type is DataType.FLOAT:
        return float(text)
    if data_type is DataType.BOOLEAN:
        return text.lower() == "true"
    return text
