"""In-memory relations (tables / query results).

A :class:`Relation` couples a :class:`~repro.relational.schema.Schema` with a
list of tuples.  It is the unit of data exchange across the whole prototype:
wrappers return relations, the multi-database engine joins them, the mediator
post-processes them into the receiver's context, and the server serializes
them back to clients.

The methods on Relation implement the classic relational algebra directly on
materialized data.  They are deliberately simple — the capability-aware,
cost-based processing lives in :mod:`repro.engine`; Relation's own operators
exist so that small/local operations (and tests) do not need a full plan.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType, sort_key

Row = Tuple[Any, ...]


class Relation:
    """A schema plus a list of rows."""

    def __init__(self, schema: Schema, rows: Optional[Iterable[Sequence[Any]]] = None,
                 name: Optional[str] = None, validate: bool = True):
        self.schema = schema
        self.name = name
        self.rows: List[Row] = []
        if rows is not None:
            for row in rows:
                self.append(row, validate=validate)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: Schema, records: Iterable[Dict[str, Any]],
                   name: Optional[str] = None) -> "Relation":
        """Build a relation from dictionaries keyed by attribute name."""
        relation = cls(schema, name=name)
        for record in records:
            row = [record.get(attribute.name) for attribute in schema]
            relation.append(row)
        return relation

    @classmethod
    def empty_like(cls, other: "Relation") -> "Relation":
        return cls(other.schema, name=other.name)

    # -- container behaviour --------------------------------------------------

    def append(self, row: Sequence[Any], validate: bool = True) -> None:
        """Append a row, coercing values to the declared attribute types."""
        self.rows.append(self.schema.validate_row(row) if validate else tuple(row))

    def extend(self, rows: Iterable[Sequence[Any]], validate: bool = True) -> None:
        for row in rows:
            self.append(row, validate=validate)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __eq__(self, other: object) -> bool:
        """Relations are equal when schemas match (names/types) and rows match as bags."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.names != other.schema.names:
            return False
        return sorted(self.rows, key=lambda r: tuple(map(sort_key, r))) == sorted(
            other.rows, key=lambda r: tuple(map(sort_key, r))
        )

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is not hashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "relation"
        return f"<Relation {label} ({len(self.rows)} rows, {len(self.schema)} cols)>"

    # -- dict/record views ---------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by unqualified attribute names."""
        return [dict(zip(self.schema.names, row)) for row in self.rows]

    def column(self, name: str, qualifier: Optional[str] = None) -> List[Any]:
        """All values of one column, in row order."""
        position = self.schema.index_of(name, qualifier)
        return [row[position] for row in self.rows]

    # -- relational algebra ---------------------------------------------------

    def select(self, predicate: Callable[[Row], Optional[bool]]) -> "Relation":
        """Keep rows for which the predicate is definitely true (SQL semantics)."""
        result = Relation(self.schema, name=self.name)
        result.rows = [row for row in self.rows if predicate(row) is True]
        return result

    def project(self, names: Sequence[str]) -> "Relation":
        """Project onto the given attribute names (possibly qualified)."""
        positions = []
        for name in names:
            qualifier, _, bare = name.rpartition(".")
            positions.append(self.schema.index_of(bare, qualifier or None))
        schema = self.schema.project(positions)
        result = Relation(schema, name=self.name)
        result.rows = [tuple(row[position] for position in positions) for row in self.rows]
        return result

    def rename(self, names: Sequence[str]) -> "Relation":
        """Rename attributes positionally."""
        result = Relation(self.schema.rename(names), name=self.name)
        result.rows = list(self.rows)
        return result

    def with_qualifier(self, qualifier: Optional[str]) -> "Relation":
        """Re-qualify the schema (rows are shared, not copied)."""
        result = Relation(self.schema.with_qualifier(qualifier), name=self.name)
        result.rows = self.rows
        return result

    def distinct(self) -> "Relation":
        result = Relation(self.schema, name=self.name)
        seen = set()
        for row in self.rows:
            key = tuple(row)
            if key not in seen:
                seen.add(key)
                result.rows.append(row)
        return result

    def union(self, other: "Relation", all: bool = False) -> "Relation":
        """Union by position; schemas must have the same arity."""
        if len(self.schema) != len(other.schema):
            raise SchemaError("UNION requires relations of the same arity")
        result = Relation(self.schema, name=self.name)
        result.rows = list(self.rows) + list(other.rows)
        return result if all else result.distinct()

    def cross_join(self, other: "Relation") -> "Relation":
        schema = self.schema.concat(other.schema)
        result = Relation(schema)
        result.rows = [left + right for left in self.rows for right in other.rows]
        return result

    def join(self, other: "Relation",
             predicate: Callable[[Row], Optional[bool]]) -> "Relation":
        """Nested-loop theta join; the predicate sees concatenated rows."""
        schema = self.schema.concat(other.schema)
        result = Relation(schema)
        for left in self.rows:
            for right in other.rows:
                combined = left + right
                if predicate(combined) is True:
                    result.rows.append(combined)
        return result

    def equi_join(self, other: "Relation", left_on: str, right_on: str) -> "Relation":
        """Hash equi-join on one attribute from each side."""
        left_position = self._resolve(left_on)
        right_position = other._resolve(right_on)
        buckets: Dict[Any, List[Row]] = {}
        for row in other.rows:
            key = row[right_position]
            if key is not None:
                buckets.setdefault(key, []).append(row)
        schema = self.schema.concat(other.schema)
        result = Relation(schema)
        for left in self.rows:
            key = left[left_position]
            if key is None:
                continue
            for right in buckets.get(key, []):
                result.rows.append(left + right)
        return result

    def order_by(self, names: Sequence[str], ascending: Optional[Sequence[bool]] = None) -> "Relation":
        positions = [self._resolve(name) for name in names]
        directions = list(ascending) if ascending is not None else [True] * len(positions)
        result = Relation(self.schema, name=self.name)
        result.rows = list(self.rows)
        # Stable sort from the least-significant key to the most significant.
        for position, asc in reversed(list(zip(positions, directions))):
            result.rows.sort(key=lambda row: sort_key(row[position]), reverse=not asc)
        return result

    def limit(self, count: Optional[int], offset: int = 0) -> "Relation":
        result = Relation(self.schema, name=self.name)
        end = None if count is None else offset + count
        result.rows = self.rows[offset:end]
        return result

    # -- helpers -------------------------------------------------------------

    def _resolve(self, name: str) -> int:
        qualifier, _, bare = name.rpartition(".")
        return self.schema.index_of(bare, qualifier or None)

    def to_ascii_table(self, max_rows: int = 20) -> str:
        """Render the relation as a fixed-width text table (for demos/logs)."""
        headers = self.schema.qualified_names
        shown = self.rows[:max_rows]
        cells = [[_format_cell(value) for value in row] for row in shown]
        widths = [len(header) for header in headers]
        for row in cells:
            for index, text in enumerate(row):
                widths[index] = max(widths[index], len(text))
        lines = []
        border = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
        lines.append(border)
        lines.append(
            "|" + "|".join(f" {header.ljust(width)} " for header, width in zip(headers, widths)) + "|"
        )
        lines.append(border)
        for row in cells:
            lines.append(
                "|" + "|".join(f" {text.ljust(width)} " for text, width in zip(row, widths)) + "|"
            )
        lines.append(border)
        if len(self.rows) > max_rows:
            lines.append(f"... {len(self.rows) - max_rows} more rows")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def relation_from_rows(name: str, attribute_specs: Sequence[str],
                       rows: Iterable[Sequence[Any]], qualifier: Optional[str] = None) -> Relation:
    """Convenience constructor used throughout the demo datasets and tests.

    ``attribute_specs`` are ``"name:type"`` strings as accepted by
    :meth:`Schema.of`; ``qualifier`` defaults to the relation name.
    """
    schema = Schema.of(*attribute_specs, qualifier=qualifier if qualifier is not None else name)
    return Relation(schema, rows=rows, name=name)
