"""Relation schemas: ordered, typed attribute lists with name resolution.

A :class:`Schema` is an immutable ordered collection of :class:`Attribute`
objects.  Attributes may carry a *qualifier* — the table binding (alias) the
attribute belongs to — which is how the executor resolves references such as
``r1.revenue`` after a join has concatenated several source schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Attribute:
    """A named, typed column, optionally qualified by its table binding."""

    name: str
    type: DataType = DataType.ANY
    qualifier: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def with_qualifier(self, qualifier: Optional[str]) -> "Attribute":
        """Return a copy bound to a (possibly different) table binding."""
        return replace(self, qualifier=qualifier)

    def matches(self, name: str, qualifier: Optional[str] = None) -> bool:
        """Case-insensitive match on name and (when given) qualifier."""
        if self.name.lower() != name.lower():
            return False
        if qualifier is None:
            return True
        return (self.qualifier or "").lower() == qualifier.lower()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.qualified_name}:{self.type.value}"


class Schema:
    """An ordered list of attributes with index/lookup helpers."""

    def __init__(self, attributes: Iterable[Attribute]):
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._index: Dict[str, List[int]] = {}
        for position, attribute in enumerate(self.attributes):
            self._index.setdefault(attribute.name.lower(), []).append(position)
        # Lazily built caches; schemas are immutable, so derived schemas and
        # the memo token can be computed once and shared (the executor's warm
        # path re-derives the same schemas for every execution of a plan).
        # The derivation memo is bounded: long-lived catalog schemas see one
        # entry per distinct alias/join partner, which clients control.
        self._token: Optional[tuple] = None
        self._derived: Dict[object, object] = {}

    #: Bound on per-schema derivation memo entries (oldest evicted first).
    DERIVED_CACHE_SIZE = 128

    def _remember_derived(self, key: object, value: object) -> None:
        # Lock-free on purpose (schemas are constructed on hot paths, so no
        # per-instance lock): dict get/set are atomic under the GIL, and the
        # eviction pop tolerates losing a race — dropping a memo entry only
        # costs a recomputation, never correctness.
        derived = self._derived
        while len(derived) >= self.DERIVED_CACHE_SIZE:
            try:
                derived.pop(next(iter(derived)))
            except (KeyError, StopIteration, RuntimeError):
                break
        derived[key] = value

    @property
    def memo_token(self) -> tuple:
        """A cheap-to-hash structural identity (plain nested tuples).

        Used as the schema component of compiled-closure memo keys: hashing
        primitive tuples is several times cheaper than re-hashing dataclass
        attributes on every operator construction.
        """
        token = self._token
        if token is None:
            token = tuple(
                (a.name, a.type.value, a.qualifier) for a in self.attributes
            )
            self._token = token
        return token

    # -- constructors -------------------------------------------------------

    @classmethod
    def of(cls, *specs: str, qualifier: Optional[str] = None) -> "Schema":
        """Build a schema from ``"name:type"`` strings (type defaults to ANY).

        >>> Schema.of("cname:string", "revenue:integer", qualifier="r1")
        """
        attributes = []
        for spec in specs:
            name, _, type_name = spec.partition(":")
            data_type = DataType.from_name(type_name) if type_name else DataType.ANY
            attributes.append(Attribute(name=name, type=data_type, qualifier=qualifier))
        return cls(attributes)

    # -- basic container behaviour -------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, index: int) -> Attribute:
        return self.attributes[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({', '.join(str(a) for a in self.attributes)})"

    # -- lookups ------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return [attribute.name for attribute in self.attributes]

    @property
    def qualified_names(self) -> List[str]:
        return [attribute.qualified_name for attribute in self.attributes]

    def index_of(self, name: str, qualifier: Optional[str] = None) -> int:
        """Resolve an attribute reference to its position.

        Resolution is case-insensitive.  An unqualified name that matches
        attributes under several qualifiers is ambiguous and raises
        :class:`SchemaError`, mirroring SQL semantics.
        """
        candidates = self._index.get(name.lower(), [])
        if qualifier is not None:
            matches = [
                position
                for position in candidates
                if (self.attributes[position].qualifier or "").lower() == qualifier.lower()
            ]
        else:
            matches = list(candidates)
        if not matches:
            raise SchemaError(f"unknown attribute {qualifier + '.' if qualifier else ''}{name}")
        if len(matches) > 1:
            raise SchemaError(f"ambiguous attribute reference {name!r}")
        return matches[0]

    def attribute(self, name: str, qualifier: Optional[str] = None) -> Attribute:
        return self.attributes[self.index_of(name, qualifier)]

    def has(self, name: str, qualifier: Optional[str] = None) -> bool:
        try:
            self.index_of(name, qualifier)
            return True
        except SchemaError:
            return False

    # -- derivations --------------------------------------------------------

    def with_qualifier(self, qualifier: Optional[str]) -> "Schema":
        """Re-qualify every attribute (used when a table is aliased).

        Memoized per qualifier: staging the same fetched relation under the
        same binding on every execution of a cached plan yields the *same*
        schema object, keeping downstream identity-based memos warm.
        """
        key = ("qualify", qualifier)
        derived = self._derived.get(key)
        if derived is None:
            derived = Schema(
                attribute.with_qualifier(qualifier) for attribute in self.attributes
            )
            self._remember_derived(key, derived)
        return derived

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (the schema of a join result).

        Memoized per right-hand schema identity (with the operand kept alive
        by the entry, so its id cannot be recycled while cached).
        """
        key = ("concat", id(other))
        entry = self._derived.get(key)
        if entry is not None:
            operand, derived = entry  # type: ignore[misc]
            if operand is other:
                return derived
        derived = Schema(self.attributes + other.attributes)
        self._remember_derived(key, (other, derived))
        return derived

    def project(self, positions: Sequence[int]) -> "Schema":
        """Schema of a projection given attribute positions."""
        try:
            return Schema(self.attributes[position] for position in positions)
        except IndexError as exc:
            raise SchemaError(f"projection position out of range: {positions}") from exc

    def rename(self, names: Sequence[str]) -> "Schema":
        """Return a schema with the same types but new names (and no qualifiers)."""
        if len(names) != len(self.attributes):
            raise SchemaError(
                f"rename expects {len(self.attributes)} names, got {len(names)}"
            )
        return Schema(
            Attribute(name=name, type=attribute.type, qualifier=None)
            for name, attribute in zip(names, self.attributes)
        )

    def validate_row(self, row: Sequence) -> Tuple:
        """Type-check and coerce a row against this schema."""
        if len(row) != len(self.attributes):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity {len(self.attributes)}"
            )
        return tuple(
            attribute.type.validate(value) for attribute, value in zip(self.attributes, row)
        )
