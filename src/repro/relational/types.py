"""Value types and SQL-style three-valued comparison semantics.

The prototype moves data between very different substrates — relational
sources, regex-extracted web pages, conversion arithmetic inserted by the
mediator — so a small, predictable type system matters more than a rich one.
Four scalar types are supported (integers, floats, strings, booleans) plus
NULL.  Comparison and arithmetic follow SQL semantics: any operation on NULL
yields NULL, and predicates treat NULL as "unknown" (rows are only kept when
the predicate is definitely true).
"""

from __future__ import annotations

import enum
from decimal import Decimal as _Decimal
from typing import Any, Optional

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Declared type of an attribute."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    #: ``ANY`` is used for computed columns whose type is unknown statically.
    ANY = "any"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Map a SQL-ish type name (``int``, ``varchar``, ``number``...) to a DataType."""
        normalized = name.strip().lower()
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "smallint": cls.INTEGER,
            "number": cls.FLOAT,
            "numeric": cls.FLOAT,
            "decimal": cls.FLOAT,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "char": cls.STRING,
            "varchar": cls.STRING,
            "varchar2": cls.STRING,
            "text": cls.STRING,
            "string": cls.STRING,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
            "any": cls.ANY,
        }
        try:
            return aliases[normalized]
        except KeyError as exc:
            raise TypeMismatchError(f"unknown type name {name!r}") from exc

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` into this type (NULL passes through), or raise."""
        if value is None:
            return None
        if self is DataType.ANY:
            return value
        if self is DataType.INTEGER:
            if isinstance(value, bool):
                raise TypeMismatchError(f"boolean {value!r} is not an integer")
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                try:
                    return int(value.replace(",", "").strip())
                except ValueError:
                    pass
            raise TypeMismatchError(f"{value!r} is not an integer")
        if self is DataType.FLOAT:
            if isinstance(value, bool):
                raise TypeMismatchError(f"boolean {value!r} is not a number")
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                try:
                    return float(value.replace(",", "").strip())
                except ValueError:
                    pass
            raise TypeMismatchError(f"{value!r} is not a number")
        if self is DataType.STRING:
            if isinstance(value, str):
                return value
            return str(value)
        if self is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)) and value in (0, 1):
                return bool(value)
            if isinstance(value, str) and value.lower() in ("true", "false"):
                return value.lower() == "true"
            raise TypeMismatchError(f"{value!r} is not a boolean")
        raise TypeMismatchError(f"unsupported type {self!r}")  # pragma: no cover

    @classmethod
    def infer(cls, value: Any) -> "DataType":
        """Infer the type of a Python value."""
        if value is None:
            return cls.ANY
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.STRING
        return cls.ANY

    def unify(self, other: "DataType") -> "DataType":
        """The most specific type covering both (INTEGER ∪ FLOAT = FLOAT, else ANY)."""
        if self is other:
            return self
        if self is DataType.ANY:
            return other
        if other is DataType.ANY:
            return self
        numeric = {DataType.INTEGER, DataType.FLOAT}
        if self in numeric and other in numeric:
            return DataType.FLOAT
        return DataType.ANY


# ---------------------------------------------------------------------------
# Three-valued comparison helpers
# ---------------------------------------------------------------------------


def is_null(value: Any) -> bool:
    """True when the value is SQL NULL."""
    return value is None


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL equality: NULL operands yield NULL (None)."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) or isinstance(right, bool):
        return bool(left) == bool(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def sql_compare(left: Any, right: Any) -> Optional[int]:
    """Three-way comparison: -1/0/+1, or None when either operand is NULL.

    Mixed numeric comparisons are allowed; comparing a number with a string
    raises :class:`TypeMismatchError` (the engine treats that as a query
    error rather than silently ordering heterogeneous values).
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) and isinstance(right, bool):
        left, right = int(left), int(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        if float(left) < float(right):
            return -1
        if float(left) > float(right):
            return 1
        return 0
    if isinstance(left, str) and isinstance(right, str):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    raise TypeMismatchError(f"cannot compare {left!r} with {right!r}")


def sort_key(value: Any) -> tuple:
    """A total-order key for ORDER BY: NULLs first, then numbers, then strings."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    if isinstance(value, _Decimal):
        return (1, float(value), "")
    return (2, 0, str(value))
