"""Physical operators: iterator-style building blocks for query execution.

The multi-database access engine composes these operators into execution
plans for the *local* part of a mediated query — the part that cannot be
pushed down to any single source (typically cross-source joins, final
projections and ordering).  The local SQL processor in
:mod:`repro.relational.query` uses the same operators so that source-side and
mediator-side execution share one code path.

Every operator exposes:

* ``schema`` — the output schema;
* ``__iter__`` — yields output rows (tuples);
* ``explain(indent)`` — a human-readable plan rendering;
* ``estimated_rows`` — a cheap cardinality guess used by the cost model.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.compile import ExpressionCompiler
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType, sort_key
from repro.sql.ast import Node


class PhysicalOperator:
    """Base class of all physical operators."""

    #: Short name used in EXPLAIN output.
    operator_name = "operator"

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    @property
    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    @property
    def estimated_rows(self) -> int:
        """A crude cardinality estimate (children's product by default)."""
        estimate = 1
        for child in self.children:
            estimate *= max(child.estimated_rows, 1)
        return estimate

    def explain(self, indent: int = 0) -> str:
        """Render this operator subtree as an indented plan."""
        line = "  " * indent + f"{self.operator_name}{self._explain_details()}"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _explain_details(self) -> str:
        return ""

    def to_relation(self, name: Optional[str] = None) -> Relation:
        """Fully materialize the operator's output."""
        relation = Relation(self.schema, name=name)
        relation.rows = list(self)
        return relation


class TableScan(PhysicalOperator):
    """Scan a materialized relation, optionally re-qualifying its schema."""

    operator_name = "Scan"

    def __init__(self, relation: Relation, binding: Optional[str] = None):
        self.relation = relation
        self.binding = binding
        self._schema = relation.schema.with_qualifier(binding) if binding else relation.schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def __iter__(self) -> Iterator[Row]:
        return iter(self.relation.rows)

    @property
    def estimated_rows(self) -> int:
        return len(self.relation)

    def _explain_details(self) -> str:
        label = self.relation.name or "<anonymous>"
        alias = f" AS {self.binding}" if self.binding and self.binding != label else ""
        return f"({label}{alias}, {len(self.relation)} rows)"


class Filter(PhysicalOperator):
    """Keep rows satisfying a SQL predicate (three-valued: NULL drops the row)."""

    operator_name = "Filter"

    def __init__(self, child: PhysicalOperator, condition: Node,
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.child = child
        self.condition = condition
        self._predicate = ExpressionCompiler(child.schema, subquery_executor).predicate(condition)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        predicate = self._predicate
        for row in self.child:
            if predicate(row) is True:
                yield row

    @property
    def estimated_rows(self) -> int:
        # Default filter selectivity of 1/3, floor of 1.
        return max(self.child.estimated_rows // 3, 1)

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        return f"({to_sql(self.condition)})"


class Project(PhysicalOperator):
    """Compute output expressions for every input row."""

    operator_name = "Project"

    def __init__(self, child: PhysicalOperator, expressions: Sequence[Node],
                 names: Sequence[str],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        if len(expressions) != len(names):
            raise ExecutionError("projection expressions and names must align")
        self.child = child
        self.expressions = list(expressions)
        self.names = list(names)
        self._project = ExpressionCompiler(child.schema, subquery_executor).projection(
            self.expressions
        )
        from repro.relational.eval import expression_type

        self._schema = Schema(
            Attribute(name=name, type=expression_type(expr, child.schema))
            for name, expr in zip(self.names, self.expressions)
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        project = self._project
        for row in self.child:
            yield project(row)

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def _explain_details(self) -> str:
        return f"({', '.join(self.names)})"


class CrossProduct(PhysicalOperator):
    """Cartesian product; the right input is materialized once."""

    operator_name = "CrossProduct"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.left = left
        self.right = right
        self._schema = left.schema.concat(right.schema)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        for left_row in self.left:
            for right_row in right_rows:
                yield left_row + right_row


class NestedLoopJoin(PhysicalOperator):
    """Theta join evaluated as a filtered cross product."""

    operator_name = "NestedLoopJoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, condition: Optional[Node],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.left = left
        self.right = right
        self.condition = condition
        self._schema = left.schema.concat(right.schema)
        self._predicate = (
            ExpressionCompiler(self._schema, subquery_executor).predicate(condition)
            if condition is not None else None
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        predicate = self._predicate
        if predicate is None:
            for left_row in self.left:
                for right_row in right_rows:
                    yield left_row + right_row
            return
        for left_row in self.left:
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate(combined) is True:
                    yield combined

    @property
    def estimated_rows(self) -> int:
        estimate = self.left.estimated_rows * self.right.estimated_rows
        return max(estimate // 3, 1) if self.condition is not None else estimate

    def _explain_details(self) -> str:
        if self.condition is None:
            return ""
        from repro.sql.printer import to_sql

        return f"({to_sql(self.condition)})"


class HashJoin(PhysicalOperator):
    """Equi-join on one or more key expressions per side, with an optional
    residual filter.

    ``left_key``/``right_key`` accept a single expression (the historical
    signature) or an aligned sequence of expressions forming a composite key;
    the planner emits composite keys when a join step carries several
    equi-join conjuncts, so none of them degrade into per-pair residual
    evaluation."""

    operator_name = "HashJoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key, right_key, residual: Optional[Node] = None,
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.left = left
        self.right = right
        self.left_keys: List[Node] = list(left_key) if not isinstance(left_key, Node) else [left_key]
        self.right_keys: List[Node] = list(right_key) if not isinstance(right_key, Node) else [right_key]
        if len(self.left_keys) != len(self.right_keys) or not self.left_keys:
            raise ExecutionError("hash join requires aligned, non-empty key lists")
        self.residual = residual
        self._schema = left.schema.concat(right.schema)
        left_compiler = ExpressionCompiler(left.schema, subquery_executor)
        right_compiler = ExpressionCompiler(right.schema, subquery_executor)
        self._left_key_fns = [left_compiler.compile(key) for key in self.left_keys]
        self._right_key_fns = [right_compiler.compile(key) for key in self.right_keys]
        self._residual_predicate = (
            ExpressionCompiler(self._schema, subquery_executor).predicate(residual)
            if residual is not None else None
        )

    # Backwards-compatible single-key views (used by explain and older callers).
    @property
    def left_key(self) -> Node:
        return self.left_keys[0]

    @property
    def right_key(self) -> Node:
        return self.right_keys[0]

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    @staticmethod
    def _composite_key(fns, row) -> Optional[Tuple]:
        """The normalized bucket key of one row, or None when any part is NULL
        (SQL equality with NULL can never be true, so the row cannot match)."""
        parts = []
        for fn in fns:
            value = fn(row)
            if value is None:
                return None
            parts.append(_hash_key(value))
        return tuple(parts)

    def __iter__(self) -> Iterator[Row]:
        buckets: Dict[Any, List[Row]] = {}
        right_fns = self._right_key_fns
        for right_row in self.right:
            key = self._composite_key(right_fns, right_row)
            if key is None:
                continue
            buckets.setdefault(key, []).append(right_row)
        residual_predicate = self._residual_predicate
        left_fns = self._left_key_fns
        empty: List[Row] = []
        for left_row in self.left:
            key = self._composite_key(left_fns, left_row)
            if key is None:
                continue
            for right_row in buckets.get(key, empty):
                combined = left_row + right_row
                if residual_predicate is None or residual_predicate(combined) is True:
                    yield combined

    @property
    def estimated_rows(self) -> int:
        return max(self.left.estimated_rows, self.right.estimated_rows)

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        keys = " AND ".join(
            f"{to_sql(lk)} = {to_sql(rk)}"
            for lk, rk in zip(self.left_keys, self.right_keys)
        )
        detail = f"({keys}"
        if self.residual is not None:
            detail += f", residual {to_sql(self.residual)}"
        return detail + ")"


def _hash_key(value: Any) -> Any:
    """Normalize join keys so 1, 1.0 and Decimal("1") hash to the same bucket."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    if isinstance(value, Decimal):
        return ("n", float(value))
    return ("s", value)


class Distinct(PhysicalOperator):
    """Remove duplicate rows, preserving first-occurrence order."""

    operator_name = "Distinct"

    def __init__(self, child: PhysicalOperator):
        self.child = child

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        seen = set()
        for row in self.child:
            key = tuple(_hash_key(value) if value is not None else None for value in row)
            if key not in seen:
                seen.add(key)
                yield row

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows


class Sort(PhysicalOperator):
    """Materializing sort on a list of (expression, ascending) keys."""

    operator_name = "Sort"

    def __init__(self, child: PhysicalOperator, keys: Sequence[Tuple[Node, bool]],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.child = child
        self.keys = list(keys)
        compiler = ExpressionCompiler(child.schema, subquery_executor)
        self._key_fns = [
            (compiler.sort_key(expr), ascending) for expr, ascending in self.keys
        ]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        rows = list(self.child)
        for key_fn, ascending in reversed(self._key_fns):
            rows.sort(key=key_fn, reverse=not ascending)
        return iter(rows)

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        parts = [f"{to_sql(expr)}{'' if asc else ' DESC'}" for expr, asc in self.keys]
        return f"({', '.join(parts)})"


class Limit(PhysicalOperator):
    """LIMIT/OFFSET."""

    operator_name = "Limit"

    def __init__(self, child: PhysicalOperator, count: Optional[int], offset: int = 0):
        self.child = child
        self.count = count
        self.offset = offset or 0

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if self.count is not None and produced >= self.count:
                return
            produced += 1
            yield row

    @property
    def estimated_rows(self) -> int:
        # Rows skipped by OFFSET never reach the output.
        available = max(self.child.estimated_rows - self.offset, 0)
        if self.count is None:
            return available
        return min(available, self.count)

    def _explain_details(self) -> str:
        return f"({self.count}, offset {self.offset})"


class UnionAll(PhysicalOperator):
    """Concatenate the outputs of several children (schemas must align in arity)."""

    operator_name = "UnionAll"

    def __init__(self, inputs: Sequence[PhysicalOperator]):
        if not inputs:
            raise ExecutionError("UnionAll requires at least one input")
        arities = {len(child.schema) for child in inputs}
        if len(arities) != 1:
            raise ExecutionError("UNION inputs must have the same arity")
        self.inputs = list(inputs)

    @property
    def schema(self) -> Schema:
        return self.inputs[0].schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return tuple(self.inputs)

    def __iter__(self) -> Iterator[Row]:
        for child in self.inputs:
            yield from child

    @property
    def estimated_rows(self) -> int:
        return sum(child.estimated_rows for child in self.inputs)


class Materialize(PhysicalOperator):
    """Materialize a child once; later iterations replay the buffered rows.

    Used by the execution controller when an intermediate result feeds several
    consumers (and to model spooling into the engine's temporary storage).
    """

    operator_name = "Materialize"

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self._buffer: Optional[List[Row]] = None

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        if self._buffer is None:
            self._buffer = list(self.child)
        return iter(self._buffer)

    @property
    def estimated_rows(self) -> int:
        if self._buffer is not None:
            return len(self._buffer)
        return self.child.estimated_rows
