"""Physical operators: iterator-style building blocks for query execution.

The multi-database access engine composes these operators into execution
plans for the *local* part of a mediated query — the part that cannot be
pushed down to any single source (typically cross-source joins, final
projections and ordering).  The local SQL processor in
:mod:`repro.relational.query` uses the same operators so that source-side and
mediator-side execution share one code path.

Every operator exposes:

* ``schema`` — the output schema;
* ``__iter__`` — yields output rows (tuples);
* ``explain(indent)`` — a human-readable plan rendering;
* ``estimated_rows`` — a cheap cardinality guess used by the cost model.
"""

from __future__ import annotations

import heapq
from decimal import Decimal
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.budget import MemoryBudget, SpillFile, estimate_row_bytes
from repro.relational.compile import ExpressionCompiler
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType, sort_key
from repro.sql.ast import Node


class PhysicalOperator:
    """Base class of all physical operators."""

    #: Short name used in EXPLAIN output.
    operator_name = "operator"

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    @property
    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    @property
    def estimated_rows(self) -> int:
        """A crude cardinality estimate (children's product by default)."""
        estimate = 1
        for child in self.children:
            estimate *= max(child.estimated_rows, 1)
        return estimate

    def explain(self, indent: int = 0) -> str:
        """Render this operator subtree as an indented plan."""
        line = "  " * indent + f"{self.operator_name}{self._explain_details()}"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _explain_details(self) -> str:
        return ""

    def to_relation(self, name: Optional[str] = None) -> Relation:
        """Fully materialize the operator's output."""
        relation = Relation(self.schema, name=name)
        relation.rows = list(self)
        return relation


class TableScan(PhysicalOperator):
    """Scan a materialized relation, optionally re-qualifying its schema."""

    operator_name = "Scan"

    def __init__(self, relation: Relation, binding: Optional[str] = None):
        self.relation = relation
        self.binding = binding
        self._schema = relation.schema.with_qualifier(binding) if binding else relation.schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def __iter__(self) -> Iterator[Row]:
        return iter(self.relation.rows)

    @property
    def estimated_rows(self) -> int:
        return len(self.relation)

    def _explain_details(self) -> str:
        label = self.relation.name or "<anonymous>"
        alias = f" AS {self.binding}" if self.binding and self.binding != label else ""
        return f"({label}{alias}, {len(self.relation)} rows)"


class Filter(PhysicalOperator):
    """Keep rows satisfying a SQL predicate (three-valued: NULL drops the row)."""

    operator_name = "Filter"

    def __init__(self, child: PhysicalOperator, condition: Node,
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.child = child
        self.condition = condition
        self._predicate = ExpressionCompiler(child.schema, subquery_executor).predicate(condition)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        predicate = self._predicate
        for row in self.child:
            if predicate(row) is True:
                yield row

    @property
    def estimated_rows(self) -> int:
        # Default filter selectivity of 1/3, floor of 1.
        return max(self.child.estimated_rows // 3, 1)

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        return f"({to_sql(self.condition)})"


class Project(PhysicalOperator):
    """Compute output expressions for every input row."""

    operator_name = "Project"

    def __init__(self, child: PhysicalOperator, expressions: Sequence[Node],
                 names: Sequence[str],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        if len(expressions) != len(names):
            raise ExecutionError("projection expressions and names must align")
        self.child = child
        self.expressions = list(expressions)
        self.names = list(names)
        self._project = ExpressionCompiler(child.schema, subquery_executor).projection(
            self.expressions
        )
        from repro.relational.eval import expression_type

        self._schema = Schema(
            Attribute(name=name, type=expression_type(expr, child.schema))
            for name, expr in zip(self.names, self.expressions)
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        project = self._project
        for row in self.child:
            yield project(row)

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def _explain_details(self) -> str:
        return f"({', '.join(self.names)})"


class CrossProduct(PhysicalOperator):
    """Cartesian product; the right input is materialized once."""

    operator_name = "CrossProduct"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.left = left
        self.right = right
        self._schema = left.schema.concat(right.schema)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        for left_row in self.left:
            for right_row in right_rows:
                yield left_row + right_row


class NestedLoopJoin(PhysicalOperator):
    """Theta join evaluated as a filtered cross product."""

    operator_name = "NestedLoopJoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, condition: Optional[Node],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.left = left
        self.right = right
        self.condition = condition
        self._schema = left.schema.concat(right.schema)
        self._predicate = (
            ExpressionCompiler(self._schema, subquery_executor).predicate(condition)
            if condition is not None else None
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        predicate = self._predicate
        if predicate is None:
            for left_row in self.left:
                for right_row in right_rows:
                    yield left_row + right_row
            return
        for left_row in self.left:
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate(combined) is True:
                    yield combined

    @property
    def estimated_rows(self) -> int:
        estimate = self.left.estimated_rows * self.right.estimated_rows
        return max(estimate // 3, 1) if self.condition is not None else estimate

    def _explain_details(self) -> str:
        if self.condition is None:
            return ""
        from repro.sql.printer import to_sql

        return f"({to_sql(self.condition)})"


class HashJoin(PhysicalOperator):
    """Equi-join on one or more key expressions per side, with an optional
    residual filter.

    ``left_key``/``right_key`` accept a single expression (the historical
    signature) or an aligned sequence of expressions forming a composite key;
    the planner emits composite keys when a join step carries several
    equi-join conjuncts, so none of them degrade into per-pair residual
    evaluation."""

    operator_name = "HashJoin"

    #: Build-side partitions used by the spilled (Grace) fallback.
    SPILL_PARTITIONS = 32

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key, right_key, residual: Optional[Node] = None,
                 subquery_executor: Optional[Callable[[Node], Relation]] = None,
                 budget: Optional[MemoryBudget] = None):
        self.left = left
        self.right = right
        self.budget = budget
        #: True once an iteration had to fall back to partitioned spilling.
        self.spilled = False
        self.left_keys: List[Node] = list(left_key) if not isinstance(left_key, Node) else [left_key]
        self.right_keys: List[Node] = list(right_key) if not isinstance(right_key, Node) else [right_key]
        if len(self.left_keys) != len(self.right_keys) or not self.left_keys:
            raise ExecutionError("hash join requires aligned, non-empty key lists")
        self.residual = residual
        self._schema = left.schema.concat(right.schema)
        left_compiler = ExpressionCompiler(left.schema, subquery_executor)
        right_compiler = ExpressionCompiler(right.schema, subquery_executor)
        self._left_key_fns = [left_compiler.compile(key) for key in self.left_keys]
        self._right_key_fns = [right_compiler.compile(key) for key in self.right_keys]
        self._residual_predicate = (
            ExpressionCompiler(self._schema, subquery_executor).predicate(residual)
            if residual is not None else None
        )

    # Backwards-compatible single-key views (used by explain and older callers).
    @property
    def left_key(self) -> Node:
        return self.left_keys[0]

    @property
    def right_key(self) -> Node:
        return self.right_keys[0]

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    @staticmethod
    def _composite_key(fns, row) -> Optional[Tuple]:
        """The normalized bucket key of one row, or None when any part is NULL
        (SQL equality with NULL can never be true, so the row cannot match)."""
        parts = []
        for fn in fns:
            value = fn(row)
            if value is None:
                return None
            parts.append(_hash_key(value))
        return tuple(parts)

    def __iter__(self) -> Iterator[Row]:
        buckets: Dict[Any, List[Row]] = {}
        right_fns = self._right_key_fns
        budget = self.budget
        build_bytes = 0
        build_rows = 0
        build_spill: Optional[List[SpillFile]] = None
        try:
            for right_row in self.right:
                key = self._composite_key(right_fns, right_row)
                if key is None:
                    continue
                if build_spill is None and budget is not None:
                    nbytes = estimate_row_bytes(right_row)
                    if budget.try_reserve(nbytes):
                        build_bytes += nbytes
                    else:
                        # The build side outgrew the budget: switch to Grace
                        # partitioning — flush the buckets built so far to
                        # per-partition spill files and keep partitioning.
                        build_spill = [SpillFile("hashjoin-build-")
                                       for _ in range(self.SPILL_PARTITIONS)]
                        for built_key, built_rows in buckets.items():
                            partition = build_spill[hash(built_key) % self.SPILL_PARTITIONS]
                            for built_row in built_rows:
                                partition.append((built_key, built_row))
                        budget.record_spill(build_rows, build_bytes)
                        budget.release(build_bytes)
                        build_bytes = 0
                        buckets = {}
                        self.spilled = True
                if build_spill is not None:
                    build_spill[hash(key) % self.SPILL_PARTITIONS].append((key, right_row))
                else:
                    buckets.setdefault(key, []).append(right_row)
                    build_rows += 1

            residual_predicate = self._residual_predicate
            left_fns = self._left_key_fns
            if build_spill is None:
                empty: List[Row] = []
                for left_row in self.left:
                    key = self._composite_key(left_fns, left_row)
                    if key is None:
                        continue
                    for right_row in buckets.get(key, empty):
                        combined = left_row + right_row
                        if residual_predicate is None or residual_predicate(combined) is True:
                            yield combined
                return

            # Grace fallback: partition the (streamed-once) probe side by the
            # same hash, then join partition by partition.  Output order is
            # deterministic — partitions in index order, probe order within
            # each — but differs from the in-memory build's probe order.
            probe_spill = [SpillFile("hashjoin-probe-")
                           for _ in range(self.SPILL_PARTITIONS)]
            try:
                for left_row in self.left:
                    key = self._composite_key(left_fns, left_row)
                    if key is None:
                        continue
                    probe_spill[hash(key) % self.SPILL_PARTITIONS].append((key, left_row))
                for index in range(self.SPILL_PARTITIONS):
                    partition_buckets: Dict[Any, List[Row]] = {}
                    for key, right_row in build_spill[index].read():
                        partition_buckets.setdefault(key, []).append(right_row)
                    for key, left_row in probe_spill[index].read():
                        for right_row in partition_buckets.get(key, ()):
                            combined = left_row + right_row
                            if residual_predicate is None or residual_predicate(combined) is True:
                                yield combined
            finally:
                for spill in probe_spill:
                    spill.close()
        finally:
            if build_spill is not None:
                for spill in build_spill:
                    spill.close()
            if budget is not None and build_bytes:
                budget.release(build_bytes)

    @property
    def estimated_rows(self) -> int:
        return max(self.left.estimated_rows, self.right.estimated_rows)

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        keys = " AND ".join(
            f"{to_sql(lk)} = {to_sql(rk)}"
            for lk, rk in zip(self.left_keys, self.right_keys)
        )
        detail = f"({keys}"
        if self.residual is not None:
            detail += f", residual {to_sql(self.residual)}"
        return detail + ")"


def _hash_key(value: Any) -> Any:
    """Normalize join keys so 1, 1.0 and Decimal("1") hash to the same bucket."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    if isinstance(value, Decimal):
        return ("n", float(value))
    return ("s", value)


def _default_distinct_key(row: Row) -> Tuple:
    return tuple(_hash_key(value) if value is not None else None for value in row)


class Distinct(PhysicalOperator):
    """Remove duplicate rows, preserving first-occurrence order.

    ``key`` customizes the duplicate test (a callable mapping a row to a
    hashable, picklable key); the default normalizes numerics the same way the
    hash join does.  With a :class:`MemoryBudget`, a seen-set that outgrows
    the budget triggers an external two-phase dedup: seen keys and the
    remaining input are hash-partitioned to spill files, each partition is
    deduplicated independently, and survivors merge back **in original input
    order** — the spilled path yields exactly the rows, in exactly the order,
    of the in-memory path.
    """

    operator_name = "Distinct"

    #: Partition fan-out of the spilled dedup.
    SPILL_PARTITIONS = 32

    def __init__(self, child: PhysicalOperator,
                 budget: Optional[MemoryBudget] = None,
                 key: Optional[Callable[[Row], Tuple]] = None):
        self.child = child
        self.budget = budget
        self._key = key or _default_distinct_key
        #: True once an iteration had to fall back to partitioned spilling.
        self.spilled = False

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        key_fn = self._key
        budget = self.budget
        seen = set()
        seen_bytes = 0
        iterator = enumerate(iter(self.child))
        try:
            for sequence, row in iterator:
                key = key_fn(row)
                if key in seen:
                    continue
                nbytes = estimate_row_bytes(row)
                if budget is not None and not budget.try_reserve(nbytes):
                    # The spill path releases (and re-accounts) the seen-set
                    # itself; zero the local so the finally does not double-release.
                    spill_bytes, seen_bytes = seen_bytes, 0
                    yield from self._spill_remainder(
                        iterator, seen, spill_bytes, sequence, row, key
                    )
                    return
                seen.add(key)
                seen_bytes += nbytes
                yield row
        finally:
            # Runs on exhaustion *and* on early termination (a downstream
            # LIMIT closing this generator): the reservation never outlives
            # the operator.
            if budget is not None and seen_bytes:
                budget.release(seen_bytes)

    def _spill_remainder(self, iterator, seen, seen_bytes: int,
                         sequence: int, row: Row, key) -> Iterator[Row]:
        """External dedup of everything not yet emitted.

        Keys already emitted become suppression markers in their partitions
        (they sort before any row, being written first); remaining rows carry
        their input sequence number so the surviving first occurrences can be
        merged back into global input order.
        """
        budget = self.budget
        self.spilled = True
        partitions = [SpillFile("distinct-") for _ in range(self.SPILL_PARTITIONS)]
        survivors = [SpillFile("distinct-out-") for _ in range(self.SPILL_PARTITIONS)]
        try:
            for emitted_key in seen:
                partitions[hash(emitted_key) % self.SPILL_PARTITIONS].append(
                    (None, emitted_key)
                )
            budget.record_spill(len(seen), seen_bytes)
            budget.release(seen_bytes)
            seen.clear()

            partitions[hash(key) % self.SPILL_PARTITIONS].append((sequence, row, key))
            for later_sequence, later_row in iterator:
                later_key = self._key(later_row)
                partitions[hash(later_key) % self.SPILL_PARTITIONS].append(
                    (later_sequence, later_row, later_key)
                )

            # Phase 2: per-partition dedup (markers first, then rows in input
            # order); survivors stream out per partition, already
            # sequence-sorted because partition files preserve write order.
            for index in range(self.SPILL_PARTITIONS):
                local_seen = set()
                for item in partitions[index].read():
                    if item[0] is None:
                        local_seen.add(item[1])
                        continue
                    item_sequence, item_row, item_key = item
                    if item_key in local_seen:
                        continue
                    local_seen.add(item_key)
                    survivors[index].append((item_sequence, item_row))
                partitions[index].close()

            merged = heapq.merge(
                *[survivor.read() for survivor in survivors],
                key=lambda pair: pair[0],
            )
            for _sequence, survivor_row in merged:
                yield survivor_row
        finally:
            for spill in partitions:
                spill.close()
            for spill in survivors:
                spill.close()

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows


class _Descending:
    """Wraps a sort key so ascending comparisons produce descending order.

    ``sort_key`` values are totally ordered tuples, so inverting ``<`` is
    enough for ``list.sort``, ``heapq.merge`` and ``heapq.nsmallest``.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return other.value < self.value

    def __le__(self, other: "_Descending") -> bool:
        return not self.value < other.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Descending) and self.value == other.value


class Sort(PhysicalOperator):
    """Sort on a list of (expression, ascending) keys.

    By default the input is buffered and sorted in memory (the historical
    behaviour).  Two extensions serve the streaming execution core:

    * ``budget`` — a shared :class:`MemoryBudget`; when buffering the input
      would exceed it, the buffered prefix is sorted and spilled as a run,
      and the final output is an external merge over the (sorted) runs.  The
      merged order is byte-identical to the in-memory sort, including
      stability: runs partition the input by arrival time and
      :func:`heapq.merge` is stable across its inputs.
    * ``limit`` — a top-k bound (LIMIT + OFFSET already combined by the
      caller): only the ``limit`` smallest rows are kept, in a bounded heap
      that never spills.

    ``key_functions`` overrides the compiled per-key functions — an aligned
    list of ``(row -> orderable, ascending)`` pairs — used by the streaming
    finalizer to order by output positions instead of expressions.
    """

    operator_name = "Sort"

    #: Smallest buffer worth spilling as a run.  Without a floor, a budget
    #: pinned by *another* operator would degenerate into one run (one open
    #: temp file) per input row; with it, runs are at least
    #: ``min(this, limit/2)`` bytes, bounding open files to input/run size.
    MIN_SPILL_RUN_BYTES = 32 * 1024

    def __init__(self, child: PhysicalOperator, keys: Sequence[Tuple[Node, bool]],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None,
                 budget: Optional[MemoryBudget] = None,
                 limit: Optional[int] = None,
                 key_functions: Optional[Sequence[Tuple[Callable[[Row], Any], bool]]] = None):
        self.child = child
        self.keys = list(keys)
        self.budget = budget
        self.limit = limit
        if key_functions is not None:
            self._key_fns = list(key_functions)
        else:
            compiler = ExpressionCompiler(child.schema, subquery_executor)
            self._key_fns = [
                (compiler.sort_key(expr), ascending) for expr, ascending in self.keys
            ]
        #: How many sorted runs the last iteration spilled (0 = in memory).
        self.spill_runs = 0

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def _composite_key(self) -> Callable[[Row], Any]:
        """One total-order key equivalent to the per-key stable sort cascade."""
        key_fns = self._key_fns
        if len(key_fns) == 1 and key_fns[0][1]:
            return key_fns[0][0]

        def composite(row: Row) -> Tuple:
            return tuple(
                fn(row) if ascending else _Descending(fn(row))
                for fn, ascending in key_fns
            )

        return composite

    def __iter__(self) -> Iterator[Row]:
        key = self._composite_key()
        budget = self.budget

        if self.limit is not None:
            # Top-k: nsmallest is stable (documented equivalent to
            # sorted(...)[:n]) and holds at most ``limit`` rows.
            rows = heapq.nsmallest(self.limit, self.child, key=key)
            held = sum(estimate_row_bytes(row) for row in rows)
            if budget is not None:
                budget.reserve(held)
            try:
                yield from rows
            finally:
                if budget is not None:
                    budget.release(held)
            return

        buffer: List[Row] = []
        buffer_bytes = 0
        runs: List[SpillFile] = []
        self.spill_runs = 0
        min_run_bytes = self.MIN_SPILL_RUN_BYTES
        if budget is not None and budget.limit_bytes is not None:
            min_run_bytes = min(min_run_bytes, max(1, budget.limit_bytes // 2))
        try:
            for row in self.child:
                nbytes = estimate_row_bytes(row)
                if budget is not None and not budget.try_reserve(nbytes):
                    if buffer_bytes >= min_run_bytes:
                        buffer.sort(key=key)
                        run = SpillFile("sort-run-")
                        run.extend(buffer)
                        runs.append(run)
                        self.spill_runs += 1
                        budget.record_spill(len(buffer), buffer_bytes)
                        budget.release(buffer_bytes)
                        buffer = []
                        buffer_bytes = 0
                    # The row must be held somewhere even when other operators
                    # occupy the whole budget (or the buffer is still below a
                    # useful run size).
                    budget.reserve(nbytes)
                buffer.append(row)
                buffer_bytes += nbytes

            buffer.sort(key=key)
            if not runs:
                yield from buffer
                return
            # Stable k-way merge: runs in spill order, the in-memory tail
            # last, mirrors one stable sort of the whole input.
            streams = [run.read() for run in runs]
            streams.append(iter(buffer))
            yield from heapq.merge(*streams, key=key)
        finally:
            for run in runs:
                run.close()
            if budget is not None and buffer_bytes:
                budget.release(buffer_bytes)

    @property
    def estimated_rows(self) -> int:
        if self.limit is not None:
            return min(self.child.estimated_rows, self.limit)
        return self.child.estimated_rows

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        parts = [f"{to_sql(expr)}{'' if asc else ' DESC'}" for expr, asc in self.keys]
        if self.limit is not None:
            parts.append(f"top {self.limit}")
        return f"({', '.join(parts)})"


class Limit(PhysicalOperator):
    """LIMIT/OFFSET."""

    operator_name = "Limit"

    def __init__(self, child: PhysicalOperator, count: Optional[int], offset: int = 0):
        self.child = child
        self.count = count
        self.offset = offset or 0

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if self.count is not None and produced >= self.count:
                return
            produced += 1
            yield row

    @property
    def estimated_rows(self) -> int:
        # Rows skipped by OFFSET never reach the output.
        available = max(self.child.estimated_rows - self.offset, 0)
        if self.count is None:
            return available
        return min(available, self.count)

    def _explain_details(self) -> str:
        return f"({self.count}, offset {self.offset})"


class UnionAll(PhysicalOperator):
    """Concatenate the outputs of several children (schemas must align in arity)."""

    operator_name = "UnionAll"

    def __init__(self, inputs: Sequence[PhysicalOperator]):
        if not inputs:
            raise ExecutionError("UnionAll requires at least one input")
        arities = {len(child.schema) for child in inputs}
        if len(arities) != 1:
            raise ExecutionError("UNION inputs must have the same arity")
        self.inputs = list(inputs)

    @property
    def schema(self) -> Schema:
        return self.inputs[0].schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return tuple(self.inputs)

    def __iter__(self) -> Iterator[Row]:
        for child in self.inputs:
            yield from child

    @property
    def estimated_rows(self) -> int:
        return sum(child.estimated_rows for child in self.inputs)


class Materialize(PhysicalOperator):
    """Materialize a child once; later iterations replay the buffered rows.

    Used by the execution controller when an intermediate result feeds several
    consumers (and to model spooling into the engine's temporary storage).
    """

    operator_name = "Materialize"

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self._buffer: Optional[List[Row]] = None

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        if self._buffer is None:
            self._buffer = list(self.child)
        return iter(self._buffer)

    @property
    def estimated_rows(self) -> int:
        if self._buffer is not None:
            return len(self._buffer)
        return self.child.estimated_rows
