"""Physical operators: iterator-style building blocks for query execution.

The multi-database access engine composes these operators into execution
plans for the *local* part of a mediated query — the part that cannot be
pushed down to any single source (typically cross-source joins, final
projections and ordering).  The local SQL processor in
:mod:`repro.relational.query` uses the same operators so that source-side and
mediator-side execution share one code path.

Every operator exposes:

* ``schema`` — the output schema;
* ``__iter__`` — yields output rows (tuples);
* ``explain(indent)`` — a human-readable plan rendering;
* ``estimated_rows`` — a cheap cardinality guess used by the cost model.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.eval import ExpressionEvaluator
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType, sort_key
from repro.sql.ast import Node


class PhysicalOperator:
    """Base class of all physical operators."""

    #: Short name used in EXPLAIN output.
    operator_name = "operator"

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    @property
    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    @property
    def estimated_rows(self) -> int:
        """A crude cardinality estimate (children's product by default)."""
        estimate = 1
        for child in self.children:
            estimate *= max(child.estimated_rows, 1)
        return estimate

    def explain(self, indent: int = 0) -> str:
        """Render this operator subtree as an indented plan."""
        line = "  " * indent + f"{self.operator_name}{self._explain_details()}"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _explain_details(self) -> str:
        return ""

    def to_relation(self, name: Optional[str] = None) -> Relation:
        """Fully materialize the operator's output."""
        relation = Relation(self.schema, name=name)
        relation.rows = list(self)
        return relation


class TableScan(PhysicalOperator):
    """Scan a materialized relation, optionally re-qualifying its schema."""

    operator_name = "Scan"

    def __init__(self, relation: Relation, binding: Optional[str] = None):
        self.relation = relation
        self.binding = binding
        self._schema = relation.schema.with_qualifier(binding) if binding else relation.schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def __iter__(self) -> Iterator[Row]:
        return iter(self.relation.rows)

    @property
    def estimated_rows(self) -> int:
        return len(self.relation)

    def _explain_details(self) -> str:
        label = self.relation.name or "<anonymous>"
        alias = f" AS {self.binding}" if self.binding and self.binding != label else ""
        return f"({label}{alias}, {len(self.relation)} rows)"


class Filter(PhysicalOperator):
    """Keep rows satisfying a SQL predicate (three-valued: NULL drops the row)."""

    operator_name = "Filter"

    def __init__(self, child: PhysicalOperator, condition: Node,
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.child = child
        self.condition = condition
        self._evaluator = ExpressionEvaluator(child.schema, subquery_executor)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        predicate = self._evaluator.predicate(self.condition)
        for row in self.child:
            if predicate(row) is True:
                yield row

    @property
    def estimated_rows(self) -> int:
        # Default filter selectivity of 1/3, floor of 1.
        return max(self.child.estimated_rows // 3, 1)

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        return f"({to_sql(self.condition)})"


class Project(PhysicalOperator):
    """Compute output expressions for every input row."""

    operator_name = "Project"

    def __init__(self, child: PhysicalOperator, expressions: Sequence[Node],
                 names: Sequence[str],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        if len(expressions) != len(names):
            raise ExecutionError("projection expressions and names must align")
        self.child = child
        self.expressions = list(expressions)
        self.names = list(names)
        self._evaluator = ExpressionEvaluator(child.schema, subquery_executor)
        from repro.relational.eval import expression_type

        self._schema = Schema(
            Attribute(name=name, type=expression_type(expr, child.schema))
            for name, expr in zip(self.names, self.expressions)
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            yield tuple(self._evaluator.evaluate(expr, row) for expr in self.expressions)

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def _explain_details(self) -> str:
        return f"({', '.join(self.names)})"


class CrossProduct(PhysicalOperator):
    """Cartesian product; the right input is materialized once."""

    operator_name = "CrossProduct"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.left = left
        self.right = right
        self._schema = left.schema.concat(right.schema)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        for left_row in self.left:
            for right_row in right_rows:
                yield left_row + right_row


class NestedLoopJoin(PhysicalOperator):
    """Theta join evaluated as a filtered cross product."""

    operator_name = "NestedLoopJoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, condition: Optional[Node],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.left = left
        self.right = right
        self.condition = condition
        self._schema = left.schema.concat(right.schema)
        self._evaluator = ExpressionEvaluator(self._schema, subquery_executor)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        predicate = self._evaluator.predicate(self.condition) if self.condition is not None else None
        for left_row in self.left:
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate is None or predicate(combined) is True:
                    yield combined

    @property
    def estimated_rows(self) -> int:
        estimate = self.left.estimated_rows * self.right.estimated_rows
        return max(estimate // 3, 1) if self.condition is not None else estimate

    def _explain_details(self) -> str:
        if self.condition is None:
            return ""
        from repro.sql.printer import to_sql

        return f"({to_sql(self.condition)})"


class HashJoin(PhysicalOperator):
    """Equi-join on one key expression per side, with an optional residual filter."""

    operator_name = "HashJoin"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_key: Node, right_key: Node, residual: Optional[Node] = None,
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self._schema = left.schema.concat(right.schema)
        self._left_eval = ExpressionEvaluator(left.schema, subquery_executor)
        self._right_eval = ExpressionEvaluator(right.schema, subquery_executor)
        self._combined_eval = ExpressionEvaluator(self._schema, subquery_executor)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.left, self.right)

    def __iter__(self) -> Iterator[Row]:
        buckets: Dict[Any, List[Row]] = {}
        for right_row in self.right:
            key = self._right_eval.evaluate(self.right_key, right_row)
            if key is None:
                continue
            buckets.setdefault(_hash_key(key), []).append(right_row)
        residual_predicate = (
            self._combined_eval.predicate(self.residual) if self.residual is not None else None
        )
        for left_row in self.left:
            key = self._left_eval.evaluate(self.left_key, left_row)
            if key is None:
                continue
            for right_row in buckets.get(_hash_key(key), []):
                combined = left_row + right_row
                if residual_predicate is None or residual_predicate(combined) is True:
                    yield combined

    @property
    def estimated_rows(self) -> int:
        return max(self.left.estimated_rows, self.right.estimated_rows)

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        detail = f"({to_sql(self.left_key)} = {to_sql(self.right_key)}"
        if self.residual is not None:
            detail += f", residual {to_sql(self.residual)}"
        return detail + ")"


def _hash_key(value: Any) -> Any:
    """Normalize join keys so 1 and 1.0 hash to the same bucket."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    return ("s", value)


class Distinct(PhysicalOperator):
    """Remove duplicate rows, preserving first-occurrence order."""

    operator_name = "Distinct"

    def __init__(self, child: PhysicalOperator):
        self.child = child

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        seen = set()
        for row in self.child:
            key = tuple(_hash_key(value) if value is not None else None for value in row)
            if key not in seen:
                seen.add(key)
                yield row

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows


class Sort(PhysicalOperator):
    """Materializing sort on a list of (expression, ascending) keys."""

    operator_name = "Sort"

    def __init__(self, child: PhysicalOperator, keys: Sequence[Tuple[Node, bool]],
                 subquery_executor: Optional[Callable[[Node], Relation]] = None):
        self.child = child
        self.keys = list(keys)
        self._evaluator = ExpressionEvaluator(child.schema, subquery_executor)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        rows = list(self.child)
        for expr, ascending in reversed(self.keys):
            rows.sort(
                key=lambda row: sort_key(self._evaluator.evaluate(expr, row)),
                reverse=not ascending,
            )
        return iter(rows)

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def _explain_details(self) -> str:
        from repro.sql.printer import to_sql

        parts = [f"{to_sql(expr)}{'' if asc else ' DESC'}" for expr, asc in self.keys]
        return f"({', '.join(parts)})"


class Limit(PhysicalOperator):
    """LIMIT/OFFSET."""

    operator_name = "Limit"

    def __init__(self, child: PhysicalOperator, count: Optional[int], offset: int = 0):
        self.child = child
        self.count = count
        self.offset = offset or 0

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if self.count is not None and produced >= self.count:
                return
            produced += 1
            yield row

    @property
    def estimated_rows(self) -> int:
        if self.count is None:
            return self.child.estimated_rows
        return min(self.child.estimated_rows, self.count)

    def _explain_details(self) -> str:
        return f"({self.count}, offset {self.offset})"


class UnionAll(PhysicalOperator):
    """Concatenate the outputs of several children (schemas must align in arity)."""

    operator_name = "UnionAll"

    def __init__(self, inputs: Sequence[PhysicalOperator]):
        if not inputs:
            raise ExecutionError("UnionAll requires at least one input")
        arities = {len(child.schema) for child in inputs}
        if len(arities) != 1:
            raise ExecutionError("UNION inputs must have the same arity")
        self.inputs = list(inputs)

    @property
    def schema(self) -> Schema:
        return self.inputs[0].schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return tuple(self.inputs)

    def __iter__(self) -> Iterator[Row]:
        for child in self.inputs:
            yield from child

    @property
    def estimated_rows(self) -> int:
        return sum(child.estimated_rows for child in self.inputs)


class Materialize(PhysicalOperator):
    """Materialize a child once; later iterations replay the buffered rows.

    Used by the execution controller when an intermediate result feeds several
    consumers (and to model spooling into the engine's temporary storage).
    """

    operator_name = "Materialize"

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self._buffer: Optional[List[Row]] = None

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def __iter__(self) -> Iterator[Row]:
        if self._buffer is None:
            self._buffer = list(self.child)
        return iter(self._buffer)

    @property
    def estimated_rows(self) -> int:
        if self._buffer is not None:
            return len(self._buffer)
        return self.child.estimated_rows
