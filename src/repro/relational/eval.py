"""Evaluation of SQL AST expressions over relation rows.

The evaluator binds column references against a :class:`Schema` (whose
attribute qualifiers are the table bindings of the enclosing query) and
evaluates arithmetic, comparisons, boolean connectives, predicates (IN,
BETWEEN, LIKE, IS NULL, CASE) and scalar functions with SQL three-valued
logic: NULL propagates through arithmetic and comparisons, and ``AND``/``OR``
follow Kleene semantics.

Aggregate function calls are *not* evaluated here — the grouping operator in
:mod:`repro.relational.operators` computes them and replaces the calls with
pre-computed columns before final projection.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import EvaluationError
from repro.relational.schema import Schema
from repro.relational.types import sql_compare, sql_equal
from repro.sql.ast import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Node,
    Star,
    Subquery,
    UnaryOp,
)

Row = Sequence[Any]


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%`` and ``_`` wildcards) to a regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


#: Scalar functions available to queries (beyond the aggregates).
_SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "ABS": lambda x: None if x is None else abs(x),
    "ROUND": lambda x, digits=0: None if x is None else round(x, int(digits)),
    "FLOOR": lambda x: None if x is None else math.floor(x),
    "CEIL": lambda x: None if x is None else math.ceil(x),
    "UPPER": lambda s: None if s is None else str(s).upper(),
    "LOWER": lambda s: None if s is None else str(s).lower(),
    "TRIM": lambda s: None if s is None else str(s).strip(),
    "LENGTH": lambda s: None if s is None else len(str(s)),
    "SUBSTR": lambda s, start, length=None: _substr(s, start, length),
    "COALESCE": lambda *args: next((a for a in args if a is not None), None),
    "NULLIF": lambda a, b: None if sql_equal(a, b) is True else a,
    "CONCAT": lambda *args: None if any(a is None for a in args) else "".join(str(a) for a in args),
}


def _substr(value: Any, start: Any, length: Any) -> Any:
    if value is None or start is None:
        return None
    text = str(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


class ExpressionEvaluator:
    """Evaluates expressions against rows of a fixed schema.

    The evaluator pre-resolves nothing: resolution happens per column
    reference at evaluation time, which keeps it usable on the concatenated
    schemas produced by joins.  A per-instance memo of resolved positions
    avoids repeated lookups on hot paths.
    """

    def __init__(self, schema: Schema,
                 subquery_executor: Optional[Callable[[Node], "object"]] = None):
        self.schema = schema
        self._positions: Dict[ColumnRef, int] = {}
        self._like_cache: Dict[str, "re.Pattern[str]"] = {}
        #: Optional callback used to evaluate scalar/EXISTS/IN subqueries.
        #: It receives the Select AST and must return a Relation.
        self._subquery_executor = subquery_executor

    # -- public API ----------------------------------------------------------

    def evaluate(self, node: Node, row: Row) -> Any:
        """Evaluate an expression over one row, returning a value or None."""
        return self._eval(node, row)

    def predicate(self, node: Node) -> Callable[[Row], Optional[bool]]:
        """Wrap an expression as a row predicate (returns True/False/None)."""

        def check(row: Row) -> Optional[bool]:
            value = self._eval(node, row)
            if value is None:
                return None
            return bool(value)

        return check

    # -- dispatch -------------------------------------------------------------

    def _eval(self, node: Node, row: Row) -> Any:
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, ColumnRef):
            return row[self._position(node)]
        if isinstance(node, BinaryOp):
            return self._binary(node, row)
        if isinstance(node, UnaryOp):
            return self._unary(node, row)
        if isinstance(node, FunctionCall):
            return self._function(node, row)
        if isinstance(node, InList):
            return self._in_list(node, row)
        if isinstance(node, Between):
            return self._between(node, row)
        if isinstance(node, Like):
            return self._like(node, row)
        if isinstance(node, IsNull):
            value = self._eval(node.expr, row)
            return (value is not None) if node.negated else (value is None)
        if isinstance(node, Case):
            return self._case(node, row)
        if isinstance(node, Subquery):
            return self._scalar_subquery(node, row)
        if isinstance(node, Exists):
            return self._exists(node, row)
        if isinstance(node, Star):
            raise EvaluationError("'*' is only valid inside COUNT(*) or a select list")
        raise EvaluationError(f"cannot evaluate expression {node!r}")

    # -- pieces ---------------------------------------------------------------

    def _position(self, ref: ColumnRef) -> int:
        position = self._positions.get(ref)
        if position is None:
            position = self.schema.index_of(ref.name, ref.table)
            self._positions[ref] = position
        return position

    def _binary(self, node: BinaryOp, row: Row) -> Any:
        op = node.op.upper()

        if op == "AND":
            left = self._as_bool(self._eval(node.left, row))
            if left is False:
                return False
            right = self._as_bool(self._eval(node.right, row))
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self._as_bool(self._eval(node.left, row))
            if left is True:
                return True
            right = self._as_bool(self._eval(node.right, row))
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False

        left = self._eval(node.left, row)
        right = self._eval(node.right, row)

        if op == "=":
            return sql_equal(left, right)
        if op == "<>":
            equal = sql_equal(left, right)
            return None if equal is None else not equal
        if op in ("<", "<=", ">", ">="):
            comparison = sql_compare(left, right)
            if comparison is None:
                return None
            return {
                "<": comparison < 0,
                "<=": comparison <= 0,
                ">": comparison > 0,
                ">=": comparison >= 0,
            }[op]

        if left is None or right is None:
            return None
        if op == "+":
            return self._arith(left, right, lambda a, b: a + b)
        if op == "-":
            return self._arith(left, right, lambda a, b: a - b)
        if op == "*":
            return self._arith(left, right, lambda a, b: a * b)
        if op == "/":
            try:
                return self._arith(left, right, lambda a, b: a / b)
            except ZeroDivisionError:
                return None
        if op == "%":
            try:
                return self._arith(left, right, lambda a, b: a % b)
            except ZeroDivisionError:
                return None
        if op == "||":
            return f"{left}{right}"
        raise EvaluationError(f"unsupported operator {node.op!r}")

    @staticmethod
    def _arith(left: Any, right: Any, fn: Callable[[Any, Any], Any]) -> Any:
        if not isinstance(left, (int, float)) or isinstance(left, bool):
            raise EvaluationError(f"arithmetic on non-numeric value {left!r}")
        if not isinstance(right, (int, float)) or isinstance(right, bool):
            raise EvaluationError(f"arithmetic on non-numeric value {right!r}")
        return fn(left, right)

    @staticmethod
    def _as_bool(value: Any) -> Optional[bool]:
        if value is None:
            return None
        return bool(value)

    def _unary(self, node: UnaryOp, row: Row) -> Any:
        value = self._eval(node.operand, row)
        if node.op.upper() == "NOT":
            as_bool = self._as_bool(value)
            return None if as_bool is None else not as_bool
        if node.op == "-":
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EvaluationError(f"cannot negate {value!r}")
            return -value
        raise EvaluationError(f"unsupported unary operator {node.op!r}")

    def _function(self, node: FunctionCall, row: Row) -> Any:
        name = node.name.upper()
        fn = _SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise EvaluationError(
                f"unknown function {name!r} (aggregates are only valid with GROUP BY handling)"
            )
        args = [self._eval(arg, row) for arg in node.args]
        try:
            return fn(*args)
        except EvaluationError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise EvaluationError(f"error evaluating {name}: {exc}") from exc

    def _in_list(self, node: InList, row: Row) -> Optional[bool]:
        value = self._eval(node.expr, row)

        # IN (SELECT ...) — delegate to the subquery executor.
        if len(node.items) == 1 and isinstance(node.items[0], Subquery):
            relation = self._run_subquery(node.items[0], row)
            members = [r[0] for r in relation.rows]
        else:
            members = [self._eval(item, row) for item in node.items]

        if value is None:
            return None
        saw_null = False
        for member in members:
            equal = sql_equal(value, member)
            if equal is True:
                return False if node.negated else True
            if equal is None:
                saw_null = True
        if saw_null:
            return None
        return True if node.negated else False

    def _between(self, node: Between, row: Row) -> Optional[bool]:
        value = self._eval(node.expr, row)
        low = self._eval(node.low, row)
        high = self._eval(node.high, row)
        low_cmp = sql_compare(value, low) if value is not None and low is not None else None
        high_cmp = sql_compare(value, high) if value is not None and high is not None else None
        if low_cmp is None or high_cmp is None:
            return None
        inside = low_cmp >= 0 and high_cmp <= 0
        return not inside if node.negated else inside

    def _like(self, node: Like, row: Row) -> Optional[bool]:
        value = self._eval(node.expr, row)
        pattern = self._eval(node.pattern, row)
        if value is None or pattern is None:
            return None
        regex = self._like_cache.get(pattern)
        if regex is None:
            regex = like_to_regex(str(pattern))
            self._like_cache[pattern] = regex
        matched = bool(regex.match(str(value)))
        return not matched if node.negated else matched

    def _case(self, node: Case, row: Row) -> Any:
        for condition, value in node.whens:
            if self._as_bool(self._eval(condition, row)) is True:
                return self._eval(value, row)
        if node.default is not None:
            return self._eval(node.default, row)
        return None

    # -- subqueries ------------------------------------------------------------

    def _run_subquery(self, node: Subquery, row: Row):
        if self._subquery_executor is None:
            raise EvaluationError("subqueries are not supported in this evaluation context")
        return self._subquery_executor(node.query)

    def _scalar_subquery(self, node: Subquery, row: Row) -> Any:
        relation = self._run_subquery(node, row)
        if len(relation.rows) == 0:
            return None
        if len(relation.rows) > 1 or len(relation.schema) != 1:
            raise EvaluationError("scalar subquery must return a single value")
        return relation.rows[0][0]

    def _exists(self, node: Exists, row: Row) -> bool:
        relation = self._run_subquery(node.subquery, row)
        result = len(relation.rows) > 0
        return not result if node.negated else result


def evaluate_literal_expression(node: Node) -> Any:
    """Evaluate an expression containing no column references (e.g. INSERT values)."""
    evaluator = ExpressionEvaluator(Schema([]))
    return evaluator.evaluate(node, ())


def expression_type(node: Node, schema: Schema):
    """Best-effort static type of an expression (used to build result schemas)."""
    from repro.relational.types import DataType

    if isinstance(node, Literal):
        return DataType.infer(node.value)
    if isinstance(node, ColumnRef):
        try:
            return schema.attribute(node.name, node.table).type
        except Exception:
            return DataType.ANY
    if isinstance(node, BinaryOp):
        op = node.op.upper()
        if op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
            return DataType.BOOLEAN
        if op == "||":
            return DataType.STRING
        left = expression_type(node.left, schema)
        right = expression_type(node.right, schema)
        if op == "/":
            return DataType.FLOAT
        return left.unify(right)
    if isinstance(node, UnaryOp):
        if node.op.upper() == "NOT":
            return DataType.BOOLEAN
        return expression_type(node.operand, schema)
    if isinstance(node, FunctionCall):
        name = node.name.upper()
        if name in ("COUNT", "LENGTH"):
            return DataType.INTEGER
        if name in ("SUM", "AVG", "ROUND", "ABS", "FLOOR", "CEIL"):
            return DataType.FLOAT
        if name in ("UPPER", "LOWER", "TRIM", "SUBSTR", "CONCAT"):
            return DataType.STRING
        return DataType.ANY
    if isinstance(node, (InList, Between, Like, IsNull, Exists)):
        return DataType.BOOLEAN
    if isinstance(node, Case):
        types = [expression_type(value, schema) for _, value in node.whens]
        if node.default is not None:
            types.append(expression_type(node.default, schema))
        result = types[0]
        for candidate in types[1:]:
            result = result.unify(candidate)
        return result
    return DataType.ANY
