"""Memory budgets and spill files for the streaming execution core.

The paper's engine "uses two local secondary storages ... to handle large
results or large sets of temporary data"; this module supplies the accounting
half of that contract for the *pipelined* operators.  A :class:`MemoryBudget`
is one shared pool of bytes that every memory-hungry operator of a statement
(`Sort` buffers, `Distinct` seen-sets, `HashJoin` build sides) draws from.
When an operator's reservation would push the pool past its limit the
operator spills to a :class:`SpillFile` and keeps streaming — execution never
fails on the budget, it degrades to secondary storage deterministically.

Budgets are deliberately approximate: :func:`estimate_row_bytes` charges a
flat per-value estimate (the same scale the temporary store's accounting
uses), not ``sys.getsizeof`` truth.  The point is a *bounded, comparable*
peak-memory figure per statement, not an allocator audit.

All accounting is thread-safe: one statement's operators may run on the
executor's fetch pool threads as well as the consumer's thread.
"""

from __future__ import annotations

import pickle
import tempfile
import threading
from decimal import Decimal
from typing import Any, Dict, Iterator, List, Optional, Sequence

#: Flat per-row container overhead charged on top of the per-value estimate
#: (tuple header + references), so zero-width rows still cost something.
ROW_OVERHEAD_BYTES = 56

#: How many items one pickled spill batch holds.  Batching keeps the pickle
#: overhead per row small while bounding reader memory to one batch per
#: concurrently open spill file.
SPILL_BATCH_ITEMS = 512


def estimate_row_bytes(row: Sequence[Any]) -> int:
    """A cheap, deterministic byte estimate of one row (tuple of SQL values)."""
    total = ROW_OVERHEAD_BYTES
    for value in row:
        if value is None or isinstance(value, bool):
            total += 1
        elif isinstance(value, (int, float)):
            total += 8
        elif isinstance(value, Decimal):
            total += 16
        elif isinstance(value, str):
            total += len(value)
        else:
            total += len(str(value))
    return total


class MemoryBudget:
    """A shared pool of bytes that budget-aware operators reserve against.

    ``limit_bytes=None`` means unbounded: reservations always succeed, but the
    peak is still tracked, so every execution reports a peak-memory figure
    whether or not a limit is configured.

    ``try_reserve`` is the spill trigger: it atomically reserves when the
    reservation fits and refuses (reserving nothing) when it does not — the
    caller then spills, releases what it held, and retries or force-reserves
    via :meth:`reserve` for data that must live somewhere.
    """

    def __init__(self, limit_bytes: Optional[int] = None):
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError(f"memory budget must be positive, got {limit_bytes}")
        self.limit_bytes = limit_bytes
        self._lock = threading.Lock()
        self._used = 0
        self.peak_bytes = 0
        self.spill_count = 0
        self.spilled_rows = 0
        self.spilled_bytes = 0

    # -- accounting -------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def try_reserve(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` if it fits under the limit; False otherwise."""
        with self._lock:
            if self.limit_bytes is not None and self._used + nbytes > self.limit_bytes:
                return False
            self._used += nbytes
            if self._used > self.peak_bytes:
                self.peak_bytes = self._used
            return True

    def reserve(self, nbytes: int) -> None:
        """Reserve unconditionally (data that must be held regardless)."""
        with self._lock:
            self._used += nbytes
            if self._used > self.peak_bytes:
                self.peak_bytes = self._used

    def release(self, nbytes: int) -> None:
        with self._lock:
            self._used = max(0, self._used - nbytes)

    def record_spill(self, rows: int, nbytes: int) -> None:
        """Note that ``rows`` (~``nbytes``) moved to secondary storage."""
        with self._lock:
            self.spill_count += 1
            self.spilled_rows += rows
            self.spilled_bytes += nbytes

    # -- introspection ----------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "limit_bytes": self.limit_bytes if self.limit_bytes is not None else 0,
                "used_bytes": self._used,
                "peak_bytes": self.peak_bytes,
                "spill_count": self.spill_count,
                "spilled_rows": self.spilled_rows,
                "spilled_bytes": self.spilled_bytes,
            }


class SpillFile:
    """An anonymous temp file holding a sequence of picklable items.

    Writes are batched (:data:`SPILL_BATCH_ITEMS` per pickle frame) so per-item
    overhead stays small; :meth:`read` streams the items back in write order
    holding at most one batch in memory.  A spill file is single-pass per
    read: call :meth:`read` again to re-stream from the start.
    """

    def __init__(self, prefix: str = "repro-spill-"):
        self._file = tempfile.TemporaryFile(prefix=prefix)
        self._batch: List[Any] = []
        self._closed = False
        self.items = 0

    def append(self, item: Any) -> None:
        self._batch.append(item)
        self.items += 1
        if len(self._batch) >= SPILL_BATCH_ITEMS:
            self._flush()

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    def _flush(self) -> None:
        if self._batch:
            pickle.dump(self._batch, self._file, protocol=pickle.HIGHEST_PROTOCOL)
            self._batch = []

    def read(self) -> Iterator[Any]:
        """Yield every item in write order (streams batch by batch)."""
        self._flush()
        self._file.seek(0)
        while True:
            try:
                batch = pickle.load(self._file)
            except EOFError:
                return
            for item in batch:
                yield item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._batch = []
            try:
                self._file.close()
            except OSError:  # pragma: no cover - temp file teardown best-effort
                pass

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
