"""A local SQL query processor over in-memory relations.

This module implements the SQL semantics used in two places:

* inside :class:`repro.sources.memory.MemorySQLSource`, the stand-in for the
  paper's Oracle databases — each source runs its own local processor over its
  own tables;
* inside the multi-database access engine, which uses the same processor for
  the "local operations (e.g. joins across sources)" the paper describes,
  executing them over wrapper results staged in temporary storage.

Supported: SELECT (DISTINCT) with expressions and aliases, FROM with
comma-joins, explicit INNER/LEFT/CROSS joins and derived tables, WHERE,
GROUP BY + aggregates (COUNT/SUM/AVG/MIN/MAX) with HAVING, ORDER BY,
LIMIT/OFFSET, UNION/UNION ALL, uncorrelated IN/EXISTS/scalar subqueries, and
the CREATE TABLE / INSERT statements used to load demo data.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import EvaluationError, ExecutionError, SchemaError, SQLUnsupportedError
from repro.relational.compile import ExpressionCompiler
from repro.relational.eval import ExpressionEvaluator, expression_type
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    CreateTable,
    FunctionCall,
    Insert,
    Join,
    Literal,
    Node,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    Union,
    is_aggregate_call,
    walk,
)
from repro.sql.parser import DerivedTable, parse
from repro.sql.printer import to_sql


class QueryProcessor:
    """Executes parsed SQL statements against a table provider.

    ``resolver`` maps a table name (and optional source qualifier) to a
    :class:`Relation`; a plain mapping of names to relations also works via
    :meth:`over_tables`.
    """

    def __init__(self, resolver: Callable[[str, Optional[str]], Relation]):
        self._resolve_table = resolver

    # -- constructors -------------------------------------------------------

    @classmethod
    def over_tables(cls, tables: Mapping[str, Relation]) -> "QueryProcessor":
        """Build a processor over a case-insensitive name → relation mapping."""
        lowered = {name.lower(): relation for name, relation in tables.items()}

        def resolver(name: str, source: Optional[str]) -> Relation:
            try:
                return lowered[name.lower()]
            except KeyError as exc:
                raise ExecutionError(f"unknown table {name!r}") from exc

        return cls(resolver)

    # -- public API ---------------------------------------------------------

    def execute(self, statement) -> Relation:
        """Execute a Select or Union statement (or SQL text) and return a Relation."""
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, Select):
            return self._execute_select(statement)
        if isinstance(statement, Union):
            return self._execute_union(statement)
        raise SQLUnsupportedError(f"cannot execute statement of type {type(statement).__name__}")

    def finalize_select(self, select: Select, rows: List[Row], schema: Schema) -> Relation:
        """Finish a SELECT whose FROM/WHERE phases were evaluated elsewhere.

        The multi-database engine stages and joins source results itself (its
        "local operations"); it then hands the joined rows plus their combined
        schema to this method, which applies the remaining phases — grouping
        and aggregates, HAVING, the select list, DISTINCT, ORDER BY and
        LIMIT — with semantics identical to :meth:`execute`.
        """
        has_aggregates = any(
            is_aggregate_call(node)
            for item in select.items
            for node in walk(item.expr)
        ) or (select.having is not None and any(is_aggregate_call(n) for n in walk(select.having)))

        if select.group_by or has_aggregates:
            output_rows, output_schema, _context = self._execute_grouped(select, rows, schema)
        else:
            output_rows, output_schema, _context = self._execute_flat(select, rows, schema)

        if select.order_by:
            output_rows = self._order_rows(select, output_rows, output_schema, schema)
        if select.distinct:
            output_rows = _distinct_rows(output_rows)
        if select.limit is not None or select.offset is not None:
            offset = select.offset or 0
            end = None if select.limit is None else offset + select.limit
            output_rows = output_rows[offset:end]

        result = Relation(output_schema)
        result.rows = [row for row, _context_row in output_rows]
        return result

    # -- UNION ---------------------------------------------------------------

    def _execute_union(self, statement: Union) -> Relation:
        results = [self._execute_select(select) for select in statement.selects]
        combined = results[0]
        for result in results[1:]:
            combined = combined.union(result, all=True)
        if not statement.all:
            combined = combined.distinct()
        # Column names come from the first branch, per SQL convention.
        return combined.rename(results[0].schema.names)

    # -- SELECT ---------------------------------------------------------------

    def _execute_select(self, select: Select) -> Relation:
        source_relation, source_schema = self._build_from(select)

        rows = source_relation

        if select.where is not None:
            predicate = ExpressionCompiler(
                source_schema, self._subquery_executor
            ).predicate(select.where)
            rows = [row for row in rows if predicate(row) is True]

        has_aggregates = any(
            is_aggregate_call(node)
            for item in select.items
            for node in walk(item.expr)
        ) or (select.having is not None and any(is_aggregate_call(n) for n in walk(select.having)))

        if select.group_by or has_aggregates:
            output_rows, output_schema, order_context = self._execute_grouped(
                select, rows, source_schema
            )
        else:
            output_rows, output_schema, order_context = self._execute_flat(
                select, rows, source_schema
            )

        # ORDER BY: keys may reference output aliases or source columns.
        if select.order_by:
            output_rows = self._order_rows(select, output_rows, output_schema, order_context)

        if select.distinct:
            output_rows = _distinct_rows(output_rows)

        if select.limit is not None or select.offset is not None:
            offset = select.offset or 0
            end = None if select.limit is None else offset + select.limit
            output_rows = output_rows[offset:end]

        result = Relation(output_schema)
        result.rows = [row for row, _context in output_rows]
        return result

    # -- FROM clause -----------------------------------------------------------

    def _build_from(self, select: Select) -> Tuple[List[Row], Schema]:
        """Evaluate the FROM clause into (rows, schema) of the joined input."""
        if not select.tables:
            # SELECT without FROM: a single empty row lets literal expressions evaluate.
            return [()], Schema([])

        rows: Optional[List[Row]] = None
        schema: Optional[Schema] = None
        for table in select.tables:
            table_rows, table_schema = self._table_rows(table)
            if rows is None:
                rows, schema = table_rows, table_schema
            else:
                rows = [left + right for left in rows for right in table_rows]
                schema = schema.concat(table_schema)
        assert rows is not None and schema is not None
        return rows, schema

    def _table_rows(self, node: Node) -> Tuple[List[Row], Schema]:
        if isinstance(node, TableRef):
            relation = self._resolve_table(node.name, node.source)
            schema = relation.schema.with_qualifier(node.binding)
            return list(relation.rows), schema
        if isinstance(node, DerivedTable):
            relation = self._execute_select(node.query)
            schema = relation.schema.with_qualifier(node.alias)
            return list(relation.rows), schema
        if isinstance(node, Join):
            return self._join_rows(node)
        raise SQLUnsupportedError(f"unsupported FROM item {node!r}")

    def _join_rows(self, node: Join) -> Tuple[List[Row], Schema]:
        left_rows, left_schema = self._table_rows(node.left)
        right_rows, right_schema = self._table_rows(node.right)
        schema = left_schema.concat(right_schema)

        if node.kind == "INNER" and node.condition is not None:
            hashed = self._hash_join_rows(
                node.condition, left_rows, left_schema, right_rows, right_schema
            )
            if hashed is not None:
                return hashed, schema

        predicate = (
            ExpressionCompiler(schema, self._subquery_executor).predicate(node.condition)
            if node.condition is not None else None
        )

        if node.kind in ("INNER", "CROSS"):
            combined = []
            for left in left_rows:
                for right in right_rows:
                    row = left + right
                    if predicate is None or predicate(row) is True:
                        combined.append(row)
            return combined, schema

        if node.kind == "LEFT":
            combined = []
            null_right = tuple([None] * len(right_schema))
            for left in left_rows:
                matched = False
                for right in right_rows:
                    row = left + right
                    if predicate is None or predicate(row) is True:
                        combined.append(row)
                        matched = True
                if not matched:
                    combined.append(left + null_right)
            return combined, schema

        if node.kind == "RIGHT":
            combined = []
            null_left = tuple([None] * len(left_schema))
            for right in right_rows:
                matched = False
                for left in left_rows:
                    row = left + right
                    if predicate is None or predicate(row) is True:
                        combined.append(row)
                        matched = True
                if not matched:
                    combined.append(null_left + right)
            return combined, schema

        raise SQLUnsupportedError(f"unsupported join kind {node.kind!r}")

    def _hash_join_rows(self, condition: Node, left_rows: List[Row], left_schema: Schema,
                        right_rows: List[Row], right_schema: Schema) -> Optional[List[Row]]:
        """Evaluate an INNER join through a hash join when the condition has
        equi-join conjuncts; returns None when no conjunct qualifies (the
        caller falls back to the nested loop).

        The full ON condition is re-evaluated on every bucket match, so the
        hash buckets are purely a prefilter and the accepted rows are exactly
        the nested loop's.  Boolean key values force the nested-loop fallback:
        SQL equality coerces booleans against *any* number (``True = 2`` is
        true), which no bucket normalization can reproduce."""
        from repro.relational.operators import HashJoin, TableScan
        from repro.sql.ast import conjuncts

        combined_schema = left_schema.concat(right_schema)

        def side_of(ref: ColumnRef) -> Optional[str]:
            # The ref must resolve on exactly one side, and unambiguously in
            # the combined schema (otherwise evaluation would raise anyway).
            if not combined_schema.has(ref.name, ref.table):
                return None
            in_left = left_schema.has(ref.name, ref.table)
            in_right = right_schema.has(ref.name, ref.table)
            if in_left and not in_right:
                return "left"
            if in_right and not in_left:
                return "right"
            return None

        left_keys: List[ColumnRef] = []
        right_keys: List[ColumnRef] = []
        for conjunct in conjuncts(condition):
            if (
                isinstance(conjunct, BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                first, second = side_of(conjunct.left), side_of(conjunct.right)
                if first == "left" and second == "right":
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                elif first == "right" and second == "left":
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
        if not left_keys:
            return None

        left_positions = [left_schema.index_of(ref.name, ref.table) for ref in left_keys]
        right_positions = [right_schema.index_of(ref.name, ref.table) for ref in right_keys]
        if any(
            type(row[position]) is bool
            for rows, positions in ((left_rows, left_positions), (right_rows, right_positions))
            for row in rows
            for position in positions
        ):
            return None

        left_relation = Relation(left_schema, name="join_left", validate=False)
        left_relation.rows = list(left_rows)
        right_relation = Relation(right_schema, name="join_right", validate=False)
        right_relation.rows = list(right_rows)
        join = HashJoin(
            TableScan(left_relation), TableScan(right_relation),
            left_keys, right_keys, residual=condition,
            subquery_executor=self._subquery_executor,
        )
        return list(join)

    # -- flat (non-grouped) SELECT ----------------------------------------------

    def _execute_flat(self, select: Select, rows: List[Row], schema: Schema):
        items = self._expand_stars(select.items, schema)
        project = ExpressionCompiler(schema, self._subquery_executor).projection(
            [item.expr for item in items]
        )
        names = _output_names(items)
        output_schema = Schema(
            Attribute(name=name, type=expression_type(item.expr, schema))
            for name, item in zip(names, items)
        )
        return [(project(row), row) for row in rows], output_schema, schema

    # -- grouped SELECT -----------------------------------------------------------

    def _execute_grouped(self, select: Select, rows: List[Row], schema: Schema):
        items = self._expand_stars(select.items, schema)
        compiler = ExpressionCompiler(schema, self._subquery_executor)
        key_fns = [compiler.compile(expr) for expr in select.group_by]

        # Group rows by the GROUP BY key (a single global group when absent).
        groups: Dict[Tuple, List[Row]] = {}
        group_order: List[Tuple] = []
        for row in rows:
            key = tuple(_group_key(fn(row)) for fn in key_fns)
            if key not in groups:
                groups[key] = []
                group_order.append(key)
            groups[key].append(row)
        if not select.group_by and not groups:
            # Aggregates over an empty input still produce one row (COUNT = 0).
            groups[()] = []
            group_order.append(())

        # Collect every aggregate call appearing in the outputs and HAVING.
        aggregate_calls: List[FunctionCall] = []
        for item in items:
            aggregate_calls.extend(n for n in walk(item.expr) if is_aggregate_call(n))
        if select.having is not None:
            aggregate_calls.extend(n for n in walk(select.having) if is_aggregate_call(n))

        names = _output_names(items)
        output_schema = Schema(
            Attribute(name=name, type=expression_type(item.expr, schema))
            for name, item in zip(names, items)
        )

        # Compile each distinct aggregate's argument once, not once per group.
        compiled_calls = []
        for call in aggregate_calls:
            signature = _call_signature(call)
            arg_fn = (
                compiler.compile(call.args[0])
                if call.args and not isinstance(call.args[0], Star) else None
            )
            compiled_calls.append((signature, call, arg_fn))

        output: List[Tuple[Row, Row]] = []
        for key in group_order:
            group_rows = groups[key]
            aggregates = {
                signature: _compute_aggregate(call, group_rows, arg_fn)
                for signature, call, arg_fn in compiled_calls
            }
            group_evaluator = _GroupEvaluator(schema, aggregates, group_rows, self._subquery_executor)

            if select.having is not None:
                keep = group_evaluator.predicate(select.having)(_representative(group_rows, schema))
                if keep is not True:
                    continue

            representative = _representative(group_rows, schema)
            values = tuple(
                group_evaluator.evaluate(item.expr, representative) for item in items
            )
            output.append((values, representative))
        return output, output_schema, schema

    # -- ORDER BY -------------------------------------------------------------------

    def _order_rows(self, select: Select, output_rows, output_schema: Schema, schema: Schema):
        from repro.relational.types import sort_key as value_sort_key

        alias_positions = {name.lower(): index for index, name in enumerate(output_schema.names)}
        compiler = ExpressionCompiler(schema, self._subquery_executor)

        def key_fn_for(order_expr: Node) -> Callable[[Tuple[Row, Row]], Any]:
            """Resolve one ORDER BY key to a (output_row, context_row) -> key."""
            # An unqualified column name matching an output alias refers to it.
            if isinstance(order_expr, ColumnRef) and order_expr.table is None:
                position = alias_positions.get(order_expr.name.lower())
                if position is not None:
                    return lambda pair: value_sort_key(pair[0][position])
            # A literal integer is a 1-based output position, per SQL convention.
            if isinstance(order_expr, Literal) and isinstance(order_expr.value, int):
                literal_position = order_expr.value - 1

                def positional(pair):
                    if 0 <= literal_position < len(pair[0]):
                        return value_sort_key(pair[0][literal_position])
                    return value_sort_key(order_expr.value)

                return positional
            compiled = compiler.compile(order_expr)
            return lambda pair: value_sort_key(compiled(pair[1]))

        rows = list(output_rows)
        for order_item in reversed(select.order_by):
            rows.sort(key=key_fn_for(order_item.expr), reverse=not order_item.ascending)
        return rows

    # -- helpers ---------------------------------------------------------------------

    def _expand_stars(self, items: Sequence[SelectItem], schema: Schema) -> List[SelectItem]:
        return expand_star_items(items, schema)

    def _subquery_executor(self, select: Select) -> Relation:
        """Execute an uncorrelated subquery (correlation is not supported)."""
        return self._execute_select(select)


# ---------------------------------------------------------------------------
# Finalization helpers shared with the streaming executor
# ---------------------------------------------------------------------------


def expand_star_items(items: Sequence[SelectItem], schema: Schema) -> List[SelectItem]:
    """Expand ``*`` / ``t.*`` select items against the input schema."""
    expanded: List[SelectItem] = []
    for item in items:
        if isinstance(item.expr, Star):
            table = item.expr.table
            for attribute in schema:
                if table is None or (attribute.qualifier or "").lower() == table.lower():
                    expanded.append(
                        SelectItem(ColumnRef(name=attribute.name, table=attribute.qualifier))
                    )
            if not expanded:
                raise SchemaError(f"'*' expansion found no columns for {table!r}")
        else:
            expanded.append(item)
    return expanded


def output_names(items: Sequence[SelectItem]) -> List[str]:
    """Public name of :func:`_output_names` (select-list output columns)."""
    return _output_names(items)


def finalize_distinct_key(row: Sequence[Any]) -> Tuple:
    """The duplicate-detection key SELECT DISTINCT finalization uses.

    The streaming executor's Distinct operator must use exactly this key so
    streamed answers are byte-identical to the materialized finalizer's.
    """
    return tuple(_group_key(value) for value in row)


# ---------------------------------------------------------------------------
# Aggregation helpers
# ---------------------------------------------------------------------------


def _call_signature(call: FunctionCall) -> str:
    """A structural key identifying an aggregate call (COUNT(*) vs COUNT(x)...)."""
    return to_sql(call)


def _compute_aggregate(call: FunctionCall, rows: List[Row], arg_fn) -> Any:
    """Compute one aggregate over a group; ``arg_fn`` is the compiled argument
    expression (None for COUNT(*) / argument-less calls)."""
    name = call.name.upper()
    if name == "COUNT" and (not call.args or isinstance(call.args[0], Star)):
        return len(rows)

    if not call.args:
        raise EvaluationError(f"aggregate {name} requires an argument")
    if arg_fn is None:
        raise EvaluationError("'*' is only valid inside COUNT(*) or a select list")
    values = [value for value in (arg_fn(row) for row in rows) if value is not None]
    if call.distinct:
        seen = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen

    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise EvaluationError(f"unknown aggregate {name}")


class _GroupEvaluator(ExpressionEvaluator):
    """An evaluator that substitutes pre-computed values for aggregate calls."""

    def __init__(self, schema: Schema, aggregates: Dict[str, Any], group_rows: List[Row],
                 subquery_executor=None):
        super().__init__(schema, subquery_executor)
        self._aggregates = aggregates
        self._group_rows = group_rows

    def _eval(self, node: Node, row: Row) -> Any:
        if is_aggregate_call(node):
            signature = _call_signature(node)  # type: ignore[arg-type]
            if signature in self._aggregates:
                return self._aggregates[signature]
        return super()._eval(node, row)


def _representative(group_rows: List[Row], schema: Schema) -> Row:
    """A row standing in for the group when evaluating non-aggregate expressions."""
    if group_rows:
        return group_rows[0]
    return tuple([None] * len(schema))


def _group_key(value: Any) -> Any:
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float, Decimal)):
        return ("n", float(value))
    if value is None:
        return ("null",)
    return ("s", str(value))


def _output_names(items: Sequence[SelectItem]) -> List[str]:
    names: List[str] = []
    for index, item in enumerate(items):
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, ColumnRef):
            names.append(item.expr.name)
        else:
            names.append(f"col_{index + 1}")
    return names


def _distinct_rows(output_rows):
    seen = set()
    result = []
    for values, context in output_rows:
        key = tuple(_group_key(value) for value in values)
        if key not in seen:
            seen.add(key)
            result.append((values, context))
    return result


# ---------------------------------------------------------------------------
# A tiny updatable database: CREATE TABLE / INSERT / SELECT
# ---------------------------------------------------------------------------


class Database:
    """A named collection of relations with DDL/DML support.

    This is the storage behind :class:`repro.sources.memory.MemorySQLSource`
    and the engine's temporary store.  It intentionally supports only what the
    prototype needs: creating tables, bulk-inserting rows and querying.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self.tables: Dict[str, Relation] = {}

    # -- catalog ---------------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Relation:
        key = name.lower()
        if key in self.tables:
            raise ExecutionError(f"table {name!r} already exists")
        relation = Relation(schema.with_qualifier(None), name=name)
        self.tables[key] = relation
        return relation

    def drop_table(self, name: str) -> None:
        self.tables.pop(name.lower(), None)

    def register(self, relation: Relation, name: Optional[str] = None) -> None:
        """Register an existing relation under a (new) name."""
        key = (name or relation.name or "").lower()
        if not key:
            raise ExecutionError("cannot register an unnamed relation")
        self.tables[key] = relation

    def table(self, name: str) -> Relation:
        try:
            return self.tables[name.lower()]
        except KeyError as exc:
            raise ExecutionError(f"unknown table {name!r} in database {self.name!r}") from exc

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    @property
    def table_names(self) -> List[str]:
        return [relation.name or key for key, relation in sorted(self.tables.items())]

    # -- statement execution -----------------------------------------------------

    def execute(self, statement) -> Relation:
        """Execute SQL text or a parsed statement; DML returns an empty relation."""
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, Insert):
            return self._execute_insert(statement)
        processor = QueryProcessor.over_tables(self.tables)
        return processor.execute(statement)

    def _execute_create(self, statement: CreateTable) -> Relation:
        schema = Schema(
            Attribute(name=column.name, type=DataType.from_name(column.type_name))
            for column in statement.columns
        )
        return self.create_table(statement.name, schema)

    def _execute_insert(self, statement: Insert) -> Relation:
        from repro.relational.eval import evaluate_literal_expression

        relation = self.table(statement.table)
        if statement.columns:
            # Guard the column list up front: a typo'd or extra column would
            # otherwise silently drop values into the void.
            known = {attribute.name.lower() for attribute in relation.schema}
            unknown = [name for name in statement.columns if name.lower() not in known]
            if unknown:
                raise SchemaError(
                    f"INSERT into {statement.table!r} names unknown column(s) "
                    f"{', '.join(repr(name) for name in unknown)}"
                )
            lowered_names = [name.lower() for name in statement.columns]
            if len(set(lowered_names)) != len(lowered_names):
                duplicates = sorted({
                    name for name in lowered_names if lowered_names.count(name) > 1
                })
                raise SchemaError(
                    f"INSERT into {statement.table!r} names column(s) "
                    f"{', '.join(repr(name) for name in duplicates)} more than once"
                )
        for row_number, row_exprs in enumerate(statement.rows, start=1):
            values = [evaluate_literal_expression(expr) for expr in row_exprs]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise SchemaError(
                        f"INSERT row {row_number} has {len(values)} value(s) "
                        f"for {len(statement.columns)} column(s)"
                    )
                lowered = {
                    name.lower(): value
                    for name, value in zip(statement.columns, values)
                }
                row = [lowered.get(attribute.name.lower()) for attribute in relation.schema]
            else:
                # Schema.validate_row rejects arity mismatches with a clear
                # SchemaError; nothing reaches the operators malformed.
                row = values
            relation.append(row)
        return Relation(relation.schema)
