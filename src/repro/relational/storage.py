"""Local secondary storage for the multi-database access engine.

The paper notes that "for the management of dictionary information and in
order to handle large results or large sets of temporary data, the
multi-database access engine uses two local secondary storages".  This module
simulates those two stores:

* a **dictionary store** holding schema/metadata relations served by the
  engine's dictionary services, and
* a **temporary store** holding intermediate results (wrapper answers,
  staged join inputs) with simple accounting of how many rows/bytes were
  spilled — the accounting is what the cost model and the benchmarks read.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import StorageError
from repro.relational.query import Database
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass
class StorageStatistics:
    """Counters describing use of a storage area."""

    tables_created: int = 0
    tables_dropped: int = 0
    rows_written: int = 0
    rows_read: int = 0
    bytes_written: int = 0
    peak_tables: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "tables_created": self.tables_created,
            "tables_dropped": self.tables_dropped,
            "rows_written": self.rows_written,
            "rows_read": self.rows_read,
            "bytes_written": self.bytes_written,
            "peak_tables": self.peak_tables,
        }


def _estimate_row_bytes(relation: Relation) -> int:
    """A rough per-row byte estimate used only for the simulated accounting."""
    if not relation.rows:
        return 0
    sample = relation.rows[0]
    total = 0
    for value in sample:
        if value is None:
            total += 1
        elif isinstance(value, bool):
            total += 1
        elif isinstance(value, int):
            total += 8
        elif isinstance(value, float):
            total += 8
        else:
            total += len(str(value))
    return total


class TemporaryStore:
    """Named temporary relations with usage accounting.

    The store behaves like a small heap of spill files: callers materialize a
    relation into it, get back a handle name, and later read or drop it.  The
    execution controller uses it to stage wrapper results before local joins.
    """

    def __init__(self, name: str = "temp"):
        self.name = name
        self._database = Database(name)
        self._counter = itertools.count(1)
        self.statistics = StorageStatistics()
        # Concurrent statements (server sessions) stage into one shared
        # store.  Handle assignment must be atomic: an unguarded
        # has_table/register pair lets two threads claim the same label and
        # silently read each other's staged rows.
        self._lock = threading.Lock()

    # -- write -----------------------------------------------------------------

    def materialize(self, relation: Relation, label: Optional[str] = None,
                    copy: bool = True) -> str:
        """Store ``relation`` and return its handle name.

        ``copy=False`` registers the caller's row list by reference instead of
        duplicating it — callers use it when the rows are already a private
        materialization (an operator output, a frozen cache copy) that nothing
        else will mutate, eliminating a full row copy per staged relation.
        The accounting is identical either way.
        """
        stored = Relation(relation.schema)
        stored.rows = relation.rows if not copy else list(relation.rows)
        with self._lock:
            handle = label or f"tmp_{next(self._counter)}"
            if self._database.has_table(handle):
                handle = f"{handle}_{next(self._counter)}"
            stored.name = handle
            self._database.register(stored, handle)
            self.statistics.tables_created += 1
            self.statistics.rows_written += len(stored)
            self.statistics.bytes_written += _estimate_row_bytes(stored) * len(stored)
            self.statistics.peak_tables = max(
                self.statistics.peak_tables, len(self._database.tables)
            )
        return handle

    # -- read ------------------------------------------------------------------

    def read(self, handle: str) -> Relation:
        """Fetch a stored relation by handle."""
        with self._lock:
            try:
                relation = self._database.table(handle)
            except Exception as exc:
                raise StorageError(f"unknown temporary relation {handle!r}") from exc
            self.statistics.rows_read += len(relation)
        return relation

    def has(self, handle: str) -> bool:
        return self._database.has_table(handle)

    @property
    def handles(self) -> List[str]:
        return self._database.table_names

    # -- drop ------------------------------------------------------------------

    def drop(self, handle: str) -> None:
        with self._lock:
            if self._database.has_table(handle):
                self._database.drop_table(handle)
                self.statistics.tables_dropped += 1

    def clear(self) -> None:
        for handle in list(self._database.tables):
            self.drop(handle)


class DictionaryStore:
    """The engine's dictionary storage: schema and capability metadata.

    The multi-database engine answers "serving schema information such as
    names and attribute types of the tables located in the various sources"
    from this store.  It holds three system relations:

    * ``dict_sources(source, kind, description)``
    * ``dict_relations(source, relation, attribute, position, type)``
    * ``dict_capabilities(source, capability, supported)``
    """

    SOURCES_SCHEMA = ("source:string", "kind:string", "description:string")
    RELATIONS_SCHEMA = (
        "source:string",
        "relation:string",
        "attribute:string",
        "position:integer",
        "type:string",
    )
    CAPABILITIES_SCHEMA = ("source:string", "capability:string", "supported:boolean")

    def __init__(self) -> None:
        self.database = Database("dictionary")
        self.database.create_table("dict_sources", Schema.of(*self.SOURCES_SCHEMA))
        self.database.create_table("dict_relations", Schema.of(*self.RELATIONS_SCHEMA))
        self.database.create_table("dict_capabilities", Schema.of(*self.CAPABILITIES_SCHEMA))
        self.statistics = StorageStatistics()

    # -- registration ------------------------------------------------------------

    def register_source(self, source: str, kind: str, description: str = "") -> None:
        self.database.table("dict_sources").append((source, kind, description))
        self.statistics.rows_written += 1

    def register_relation(self, source: str, relation: str, schema: Schema) -> None:
        table = self.database.table("dict_relations")
        for position, attribute in enumerate(schema):
            table.append((source, relation, attribute.name, position, attribute.type.value))
            self.statistics.rows_written += 1

    def register_capability(self, source: str, capability: str, supported: bool) -> None:
        self.database.table("dict_capabilities").append((source, capability, supported))
        self.statistics.rows_written += 1

    # -- lookups -------------------------------------------------------------------

    def sources(self) -> List[str]:
        self.statistics.rows_read += len(self.database.table("dict_sources"))
        return [row[0] for row in self.database.table("dict_sources")]

    def relations_of(self, source: str) -> List[str]:
        table = self.database.table("dict_relations")
        self.statistics.rows_read += len(table)
        names: List[str] = []
        for row in table:
            if row[0] == source and row[1] not in names:
                names.append(row[1])
        return names

    def attributes_of(self, source: str, relation: str) -> List[Dict[str, object]]:
        table = self.database.table("dict_relations")
        self.statistics.rows_read += len(table)
        rows = [
            {"attribute": row[2], "position": row[3], "type": row[4]}
            for row in table
            if row[0] == source and row[1].lower() == relation.lower()
        ]
        return sorted(rows, key=lambda entry: entry["position"])

    def query(self, sql: str) -> Relation:
        """Run an arbitrary SQL query over the dictionary relations."""
        return self.database.execute(sql)
