"""Relational substrate: schemas, relations, evaluation, operators, storage.

This package is the data plane shared by every layer of the COIN prototype
reproduction: wrappers produce :class:`Relation` objects, the multi-database
engine combines them with the physical operators, the local SQL processor in
:mod:`repro.relational.query` provides full SELECT semantics for in-memory
sources and for local (mediator-side) operations, and the storage module
simulates the engine's two local secondary storages.
"""

from repro.relational.types import DataType, is_null, sort_key, sql_compare, sql_equal
from repro.relational.schema import Attribute, Schema
from repro.relational.relation import Relation, Row, relation_from_rows
from repro.relational.eval import (
    ExpressionEvaluator,
    evaluate_literal_expression,
    expression_type,
    like_to_regex,
)
from repro.relational.compile import (
    ExpressionCompiler,
    compile_expression,
    compile_predicate,
    compile_projection,
)
from repro.relational.operators import (
    CrossProduct,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Materialize,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    Sort,
    TableScan,
    UnionAll,
)
from repro.relational.query import Database, QueryProcessor
from repro.relational.storage import DictionaryStore, StorageStatistics, TemporaryStore
from repro.relational.csvio import relation_from_csv, relation_to_csv

__all__ = [
    "DataType",
    "is_null",
    "sort_key",
    "sql_compare",
    "sql_equal",
    "Attribute",
    "Schema",
    "Relation",
    "Row",
    "relation_from_rows",
    "ExpressionEvaluator",
    "ExpressionCompiler",
    "compile_expression",
    "compile_predicate",
    "compile_projection",
    "evaluate_literal_expression",
    "expression_type",
    "like_to_regex",
    "CrossProduct",
    "Distinct",
    "Filter",
    "HashJoin",
    "Limit",
    "Materialize",
    "NestedLoopJoin",
    "PhysicalOperator",
    "Project",
    "Sort",
    "TableScan",
    "UnionAll",
    "Database",
    "QueryProcessor",
    "DictionaryStore",
    "StorageStatistics",
    "TemporaryStore",
    "relation_from_csv",
    "relation_to_csv",
]
