"""Canonical source-request keys and a bounded source-result cache.

The paper's setting makes "execution and communication costs" the dominant
term of a mediated query: every source request is a round trip to an
autonomous system.  Two mechanisms in this module cut those round trips:

* :func:`request_key` canonicalizes a :class:`~repro.engine.plan.SourceRequest`
  into a hashable :class:`RequestKey` (wrapper, relation, request text).  Two
  mediation branches asking the same wrapper for byte-identical pushed-down
  SQL — or for a plain FETCH of the same relation — map to the same key, which
  is what the executor's scheduler deduplicates on.  Per-branch
  ``local_filters`` are deliberately **not** part of the key: they are applied
  locally after the shared fetch, so they never force a second round trip.

* :class:`SourceResultCache` memoizes fetched relations across *statements*:
  a bounded LRU keyed by :class:`RequestKey`, with explicit invalidation per
  wrapper or per relation.  Entries are frozen copies of the fetched rows, so
  later mutations of a source relation do not silently leak into cached
  answers — staleness is only resolved by :meth:`SourceResultCache.invalidate`
  (or eviction), which is the deployment contract: whoever changes a source
  tells the federation.

All cache operations are thread-safe; the executor dispatches fetches on a
thread pool and records hits/misses from worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan imports cost)
    from repro.engine.plan import SourceRequest


@dataclass(frozen=True)
class RequestKey:
    """The canonical identity of one source round trip."""

    wrapper: str
    relation: str
    text: str

    def describe(self) -> str:
        return f"{self.wrapper}: {self.text}"


def request_key(request: "SourceRequest") -> RequestKey:
    """Canonicalize a plan's source request for dedup and caching.

    The text component is the rendered pushed-down SQL (the planner builds
    structurally identical ASTs for identical push-downs, so rendering is a
    stable canonical form) or ``FETCH <relation>`` for scan-only sources.
    Wrapper and relation names are case-insensitive throughout the catalog and
    are lowered here for the same reason.
    """
    return RequestKey(
        wrapper=request.wrapper_name.lower(),
        relation=request.relation.lower(),
        text=request.request_text,
    )


@dataclass
class CacheStatistics:
    """Counters describing one cache instance's traffic."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class SourceResultCache:
    """Bounded LRU cache of source results, keyed by canonical request.

    ``get``/``put`` are O(1); ``invalidate`` walks the (bounded) key set.  The
    cache stores frozen row copies: a hit returns the rows the source shipped
    when the entry was created, never a live view of the source's relation.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[RequestKey, Relation]" = OrderedDict()
        self._lock = threading.Lock()
        self.statistics = CacheStatistics()

    # -- access -----------------------------------------------------------------

    def get(self, key: RequestKey) -> Optional[Relation]:
        with self._lock:
            relation = self._entries.get(key)
            if relation is None:
                self.statistics.misses += 1
                return None
            self._entries.move_to_end(key)
            self.statistics.hits += 1
            # Hand out a copy: a consumer mutating the returned relation must
            # not corrupt the stored entry (the frozen-copy contract holds on
            # the way out as well as on the way in).
            return self._copy(relation)

    def put(self, key: RequestKey, relation: Relation) -> None:
        frozen = self._copy(relation)
        with self._lock:
            self._entries[key] = frozen
            self._entries.move_to_end(key)
            self.statistics.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1

    @staticmethod
    def _copy(relation: Relation) -> Relation:
        duplicate = Relation(relation.schema, name=relation.name)
        duplicate.rows = list(relation.rows)
        return duplicate

    # -- invalidation --------------------------------------------------------------

    def invalidate(self, wrapper: Optional[str] = None,
                   relation: Optional[str] = None) -> int:
        """Drop entries for one wrapper and/or relation; return the drop count.

        With both arguments ``None`` the whole cache is cleared.  Call this
        whenever a source's data is known to have changed (the federation does
        so automatically when a wrapper is re-registered).
        """
        wrapper_lower = wrapper.lower() if wrapper is not None else None
        relation_lower = relation.lower() if relation is not None else None
        with self._lock:
            doomed = [
                key for key in self._entries
                if (wrapper_lower is None or key.wrapper == wrapper_lower)
                and (relation_lower is None or key.relation == relation_lower)
            ]
            for key in doomed:
                del self._entries[key]
            self.statistics.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        return self.invalidate()

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: RequestKey) -> bool:
        with self._lock:
            return key in self._entries

    def snapshot(self) -> Dict[str, int]:
        data = self.statistics.snapshot()
        data["entries"] = len(self)
        data["capacity"] = self.capacity
        return data
