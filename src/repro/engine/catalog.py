"""The engine's catalog and dictionary services.

"[The engine's] main functions are: serving schema information such as names
and attribute types of the table located in the various sources; ..."

The :class:`Catalog` records, for every relation exported by a wrapper, which
wrapper serves it, its schema, the capabilities and cost parameters of the
underlying source, and a cardinality estimate for the planner.  The same
information is mirrored into the relational
:class:`~repro.relational.storage.DictionaryStore` so that schema questions
can themselves be answered with SQL over the dictionary relations — the
"dictionary services" of the prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import CatalogError
from repro.consistency.constraints import Constraint, ConstraintSet, PrimaryKey
from repro.engine.feedback import CardinalityFeedback
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.storage import DictionaryStore
from repro.sources.base import SourceCapabilities
from repro.wrappers.wrapper import Wrapper, WrapperRegistry


@dataclass
class CatalogEntry:
    """Everything the engine knows about one relation."""

    relation: str
    wrapper_name: str
    schema: Schema
    capabilities: SourceCapabilities
    estimated_rows: int = 100
    description: str = ""

    @property
    def qualified_name(self) -> str:
        return f"{self.wrapper_name}.{self.relation}"


class Catalog:
    """Relation-level metadata plus SQL-queryable dictionary storage."""

    #: Default cardinality estimate when a wrapper cannot report one cheaply.
    DEFAULT_ESTIMATED_ROWS = 100

    def __init__(self, wrappers: Optional[WrapperRegistry] = None):
        self.wrappers = wrappers if wrappers is not None else WrapperRegistry()
        self._entries: Dict[str, CatalogEntry] = {}
        self.dictionary = DictionaryStore()
        #: Declared integrity constraints over the catalogued relations.
        #: Registration bumps the generation, so everything keyed on it
        #: (cached plans, prepared statements, violation reports) re-derives.
        self.constraints = ConstraintSet()
        #: Monotonic dictionary version.  Bumped whenever the set of relations
        #: a plan could read changes — wrapper/relation (re)registration and
        #: explicit source invalidation — so cached plans and prepared queries
        #: keyed on it can never consult a stale dictionary.  Cardinality
        #: feedback (:meth:`update_estimate`) deliberately does *not* bump it:
        #: estimates only steer costs, never correctness.
        self.generation = 0
        #: Runtime cardinality/latency observations feeding the cost model.
        #: Generation-aware: any dictionary change clears the observations
        #: (its monotonic *epoch* survives and keys cached plans).
        self.feedback = CardinalityFeedback()

    def bump_generation(self) -> int:
        """Advance the dictionary version and return the new value."""
        self.generation += 1
        # Observations were measured against the old dictionary contents;
        # they must not survive a registration or invalidation.
        self.feedback.clear()
        return self.generation

    # -- registration -----------------------------------------------------------

    def register_wrapper(self, wrapper: Wrapper, estimate_rows: bool = True) -> List[CatalogEntry]:
        """Register a wrapper and catalog every relation it exports.

        With ``estimate_rows=True`` the catalog asks SQL-capable wrappers for a
        COUNT(*) per relation (cheap for in-memory sources); web wrappers keep
        the default estimate to avoid triggering a crawl at registration time.
        """
        self.wrappers.register(wrapper)
        self.dictionary.register_source(wrapper.name, type(wrapper).__name__)
        for capability, supported in _capability_flags(wrapper.capabilities).items():
            self.dictionary.register_capability(wrapper.name, capability, supported)

        entries = []
        for relation in wrapper.relation_names():
            schema = wrapper.schema_of(relation)
            estimated = self.DEFAULT_ESTIMATED_ROWS
            if estimate_rows and wrapper.capabilities.aggregation:
                estimated = self._count_rows(wrapper, relation, estimated)
            entry = CatalogEntry(
                relation=relation,
                wrapper_name=wrapper.name,
                schema=schema,
                capabilities=wrapper.capabilities,
                estimated_rows=estimated,
            )
            self._register_entry(entry)
            entries.append(entry)
        self.bump_generation()
        return entries

    def register_relation(self, relation: str, wrapper_name: str, schema: Schema,
                          capabilities: Optional[SourceCapabilities] = None,
                          estimated_rows: Optional[int] = None) -> CatalogEntry:
        """Register a single relation explicitly (used for ancillary views)."""
        wrapper = self.wrappers.get(wrapper_name)
        entry = CatalogEntry(
            relation=relation,
            wrapper_name=wrapper_name,
            schema=schema,
            capabilities=capabilities or wrapper.capabilities,
            estimated_rows=estimated_rows if estimated_rows is not None else self.DEFAULT_ESTIMATED_ROWS,
        )
        self._register_entry(entry)
        self.bump_generation()
        return entry

    def _register_entry(self, entry: CatalogEntry) -> None:
        key = entry.relation.lower()
        if key in self._entries:
            raise CatalogError(
                f"relation {entry.relation!r} is already served by wrapper "
                f"{self._entries[key].wrapper_name!r}"
            )
        self._entries[key] = entry
        self.dictionary.register_relation(entry.wrapper_name, entry.relation, entry.schema)

    def _count_rows(self, wrapper: Wrapper, relation: str, default: int) -> int:
        try:
            result = wrapper.query(f"SELECT COUNT(*) AS n FROM {relation}")
            value = result.rows[0][0]
            return int(value) if value is not None else default
        except Exception:
            return default

    # -- integrity constraints ----------------------------------------------------

    def register_constraint(self, constraint: Constraint) -> Constraint:
        """Declare an integrity constraint over catalogued relations.

        Every relation the constraint reads must already be catalogued (the
        constraint is validated against the live schemas).  Registration is a
        dictionary change: the generation is bumped so cached plans and
        memoized violation reports from before the declaration become
        unreachable.
        """
        registered = self.constraints.register(constraint, self.schema_of)
        self.bump_generation()
        return registered

    def constraints_for(self, relation: str) -> List[Constraint]:
        """Constraints reading the given relation (empty when undeclared)."""
        self.entry(relation)  # unknown relations fail loudly, as elsewhere
        return self.constraints.for_relation(relation)

    def key_of(self, relation: str) -> Optional[PrimaryKey]:
        """The relation's declared primary key, or None."""
        return self.constraints.key_of(relation)

    # -- lookup -------------------------------------------------------------------

    def entry(self, relation: str) -> CatalogEntry:
        try:
            return self._entries[relation.lower()]
        except KeyError as exc:
            raise CatalogError(f"unknown relation {relation!r}") from exc

    def has_relation(self, relation: str) -> bool:
        return relation.lower() in self._entries

    def wrapper_for(self, relation: str) -> Wrapper:
        return self.wrappers.get(self.entry(relation).wrapper_name)

    def schema_of(self, relation: str) -> Schema:
        return self.entry(relation).schema

    def update_estimate(self, relation: str, estimated_rows: int) -> None:
        self.entry(relation).estimated_rows = max(int(estimated_rows), 0)

    @property
    def relations(self) -> List[str]:
        return sorted(entry.relation for entry in self._entries.values())

    @property
    def entries(self) -> List[CatalogEntry]:
        return [self._entries[key] for key in sorted(self._entries)]

    def __len__(self) -> int:
        return len(self._entries)

    # -- dictionary services ------------------------------------------------------------

    def list_sources(self) -> List[str]:
        """Names of all registered wrappers (the dictionary's source list)."""
        return self.dictionary.sources()

    def list_relations(self, source: Optional[str] = None) -> List[str]:
        if source is None:
            return self.relations
        return self.dictionary.relations_of(source)

    def describe_relation(self, relation: str) -> List[Dict[str, object]]:
        """Attribute descriptions (name, position, type) of one relation."""
        entry = self.entry(relation)
        return self.dictionary.attributes_of(entry.wrapper_name, entry.relation)

    def query_dictionary(self, sql: str) -> Relation:
        """Run SQL directly over the dictionary relations (dict_sources, ...)."""
        return self.dictionary.query(sql)


def _capability_flags(capabilities: SourceCapabilities) -> Dict[str, bool]:
    return {
        "selection": capabilities.selection,
        "projection": capabilities.projection,
        "join": capabilities.join,
        "arithmetic": capabilities.arithmetic,
        "aggregation": capabilities.aggregation,
        "order_by": capabilities.order_by,
        "union": capabilities.union,
    }
