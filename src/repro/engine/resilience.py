"""Fault tolerance for federated execution: retries, breakers, deadlines.

The paper's mediator queries autonomous sources — on-line databases and web
sites that slow down, flake and vanish without notice.  This module is the
resilience layer the scheduler threads every distinct source round trip
through:

* :class:`RetryPolicy` — classifies :class:`~repro.errors.SourceError` /
  :class:`~repro.errors.WrapperError` failures into *transient* (worth
  retrying: simulated network blips, sources briefly unavailable) and
  *permanent* (capability mismatches, malformed wrapper specs — retrying
  cannot help), and spaces retries with exponential backoff whose jitter is
  **deterministically seeded** per (request, attempt): fault-injection tests
  and benchmarks replay byte-identical schedules regardless of thread
  interleaving.
* :class:`CircuitBreaker` — one per wrapper, closed → open after a run of
  consecutive failures, open → half-open after a cooldown, half-open →
  closed on a successful probe.  An open circuit rejects requests *fast*:
  a dead source costs nothing per statement instead of a full retry budget.
* :class:`Deadline` — a per-statement time bound propagated from
  ``Federation.query(..., timeout_seconds=...)`` through fetch waits, retry
  backoff sleeps and streaming finalization.  Expiry raises
  :class:`~repro.errors.DeadlineExceededError` and is never downgraded to a
  partial answer.
* :class:`SourceHealth` / :class:`HealthRegistry` — rolling
  success/failure/latency statistics per wrapper, surfaced through the
  engine's statistics façade so operators can see which sources are rotten
  before receivers complain.

Everything time-related goes through an injectable :class:`Clock`
(``now``/``sleep``), so breaker transitions and backoff schedules are testable
with a :class:`ManualClock` — no wall-clock sleeps, no flaky timing tests.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    CapabilityError,
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
    SourceError,
    WrapperError,
)

#: Valid values of the ``on_source_error`` execution option.
ON_SOURCE_ERROR_MODES = ("fail", "partial")


def validate_on_source_error(mode: str) -> str:
    if mode not in ON_SOURCE_ERROR_MODES:
        raise ExecutionError(
            f"unknown on_source_error mode {mode!r}; "
            f"expected one of {', '.join(ON_SOURCE_ERROR_MODES)}"
        )
    return mode


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Clock:
    """The two time primitives the resilience layer uses, injectable."""

    now: Callable[[], float]
    sleep: Callable[[float], None]


SYSTEM_CLOCK = Clock(now=time.monotonic, sleep=time.sleep)


class ManualClock:
    """A deterministic test clock: ``sleep`` advances time instead of waiting.

    Thread-safe; records every sleep so tests can assert exact backoff
    schedules.  Use ``manual_clock.clock`` wherever a :class:`Clock` is
    expected.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._lock = threading.Lock()
        self.sleeps: List[float] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self.sleeps.append(seconds)
            self._now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._now += max(0.0, seconds)

    @property
    def clock(self) -> Clock:
        return Clock(now=self.now, sleep=self.sleep)


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class Deadline:
    """A statement-wide time bound (``timeout_seconds=None`` = unbounded).

    One deadline is created per statement and handed to every fetch wait,
    retry sleep and row pull, so a statement's total wall clock — not each
    individual wait — is what the receiver bounded.
    """

    __slots__ = ("timeout_seconds", "_expires_at", "_clock")

    def __init__(self, timeout_seconds: Optional[float],
                 clock: Clock = SYSTEM_CLOCK):
        if timeout_seconds is not None:
            timeout_seconds = float(timeout_seconds)
            if timeout_seconds <= 0:
                raise ExecutionError(
                    f"timeout_seconds must be positive, got {timeout_seconds}"
                )
        self.timeout_seconds = timeout_seconds
        self._clock = clock
        self._expires_at = (
            clock.now() + timeout_seconds if timeout_seconds is not None else None
        )

    @classmethod
    def unbounded(cls, clock: Clock = SYSTEM_CLOCK) -> "Deadline":
        return cls(None, clock)

    @property
    def bounded(self) -> bool:
        return self._expires_at is not None

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative), or None when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock.now())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock.now() >= self._expires_at

    def check(self, context: str) -> None:
        """Raise :class:`DeadlineExceededError` when the deadline has passed."""
        if self.expired:
            raise DeadlineExceededError(
                f"statement deadline of {self.timeout_seconds}s exceeded "
                f"while {context}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.bounded:
            return "<Deadline unbounded>"
        return f"<Deadline {self.timeout_seconds}s, {self.remaining():.3f}s left>"


# ---------------------------------------------------------------------------
# Error classification and retry policy
# ---------------------------------------------------------------------------


def classify_error(error: BaseException) -> str:
    """``"transient"`` (retry may help) or ``"permanent"`` (it cannot).

    An explicit boolean ``transient`` attribute on the exception overrides
    the class-based rules — fault harnesses and exotic wrappers can tag
    their failures directly.
    """
    override = getattr(error, "transient", None)
    if isinstance(override, bool):
        return "transient" if override else "permanent"
    if isinstance(error, (CircuitOpenError, DeadlineExceededError)):
        return "permanent"
    if isinstance(error, CapabilityError):
        # The source cannot evaluate the request; asking again changes nothing.
        return "permanent"
    if isinstance(error, SourceError):
        # Unavailability and generic source failures model network weather.
        return "transient"
    if isinstance(error, WrapperError):
        # Spec/extraction problems are deterministic: same page, same failure.
        return "permanent"
    return "permanent"


@dataclass(frozen=True)
class RetryPolicy:
    """How transient source failures are retried.

    ``backoff_delay`` grows exponentially and is jittered by a PRNG seeded
    from ``(seed, request_text, attempt)`` — the schedule is a pure function
    of the request, independent of thread scheduling, so chaos tests and the
    resilience benchmark replay identically.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.02
    multiplier: float = 2.0
    max_delay_seconds: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def is_transient(self, error: BaseException) -> bool:
        return classify_error(error) == "transient"

    def backoff_delay(self, request_text: str, attempt: int) -> float:
        """Delay before retrying ``attempt`` (1-based count of failures so far)."""
        delay = min(
            self.base_delay_seconds * (self.multiplier ** max(0, attempt - 1)),
            self.max_delay_seconds,
        )
        if self.jitter > 0:
            rng = random.Random(f"{self.seed}|{request_text}|{attempt}")
            delay *= 1.0 + self.jitter * rng.random()
        return delay


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Per-wrapper closed → open → half-open failure gate.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — requests are rejected instantly (no round trip, no
      retries) until ``cooldown_seconds`` elapse.
    * **half-open** — one probe request is let through at a time; success
      closes the breaker, failure re-opens it (and restarts the cooldown).

    All transitions are lock-guarded and driven by the injected clock, so
    concurrent fetch threads observe a consistent state machine and tests
    can walk it deterministically.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_seconds: float = 30.0,
                 clock: Clock = SYSTEM_CLOCK):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Closed/half-open → open transitions over the breaker's lifetime.
        self.trips = 0
        #: Requests rejected without a round trip while open.
        self.rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """State after applying cooldown expiry (callers hold the lock)."""
        if self._state == "open" and (
            self._clock.now() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = "half_open"
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """May a request proceed right now?  (Counts rejections.)"""
        with self._lock:
            state = self._effective_state()
            if state == "closed":
                return True
            if state == "half_open" and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != "closed":
                self._state = "closed"

    def record_failure(self) -> bool:
        """Record one failed round trip; True when this call tripped it open."""
        with self._lock:
            state = self._effective_state()
            self._probe_in_flight = False
            if state == "half_open":
                self._state = "open"
                self._opened_at = self._clock.now()
                self._consecutive_failures = self.failure_threshold
                self.trips += 1
                return True
            self._consecutive_failures += 1
            if state == "closed" and self._consecutive_failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock.now()
                self.trips += 1
                return True
            return False

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "trips": self.trips,
                "rejections": self.rejections,
            }


# ---------------------------------------------------------------------------
# Source health
# ---------------------------------------------------------------------------

#: Rolling-latency window per wrapper.
HEALTH_WINDOW = 32


class SourceHealth:
    """Rolling success/failure/latency statistics of one wrapper."""

    def __init__(self, wrapper_name: str):
        self.wrapper_name = wrapper_name
        self._lock = threading.Lock()
        self.successes = 0
        self.failures = 0
        self.retries = 0
        self.rejections = 0
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None
        self._recent_latencies: Deque[float] = deque(maxlen=HEALTH_WINDOW)
        self.total_latency_seconds = 0.0

    def record_success(self, latency_seconds: float) -> None:
        with self._lock:
            self.successes += 1
            self.consecutive_failures = 0
            self._recent_latencies.append(latency_seconds)
            self.total_latency_seconds += latency_seconds

    def record_failure(self, latency_seconds: float, error: BaseException) -> None:
        with self._lock:
            self.failures += 1
            self.consecutive_failures += 1
            self.last_error = f"{type(error).__name__}: {error}"
            self.total_latency_seconds += latency_seconds

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.rejections += 1

    def sample_count(self) -> int:
        """Number of latency samples currently in the rolling window."""
        with self._lock:
            return len(self._recent_latencies)

    def latency_quantile(self, quantile: float) -> Optional[float]:
        """The ``quantile`` (0..1) of the rolling latency window, or None.

        Nearest-rank over the (at most ``HEALTH_WINDOW``) recent successful
        round trips — the signal the adaptive fetch timeout is fed from.
        """
        with self._lock:
            recent = sorted(self._recent_latencies)
        if not recent:
            return None
        quantile = min(1.0, max(0.0, quantile))
        index = min(len(recent) - 1, int(round(quantile * (len(recent) - 1))))
        return recent[index]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            attempts = self.successes + self.failures
            recent = list(self._recent_latencies)
        p95 = None
        if recent:
            ordered = sorted(recent)
            p95 = ordered[min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))]
        with self._lock:
            return {
                "successes": self.successes,
                "failures": self.failures,
                "retries": self.retries,
                "rejections": self.rejections,
                "consecutive_failures": self.consecutive_failures,
                "failure_rate": round(self.failures / attempts, 6) if attempts else 0.0,
                "mean_latency_seconds": (
                    round(sum(recent) / len(recent), 6) if recent else 0.0
                ),
                "p95_latency_seconds": round(p95, 6) if p95 is not None else None,
                "latency_samples": len(recent),
                "last_error": self.last_error,
            }


class HealthRegistry:
    """Lock-guarded map wrapper-name → :class:`SourceHealth`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, SourceHealth] = {}

    def wrapper(self, name: str) -> SourceHealth:
        key = name.lower()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = SourceHealth(name)
            return entry

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            entries = dict(self._entries)
        return {name: entry.snapshot() for name, entry in sorted(entries.items())}


# ---------------------------------------------------------------------------
# Per-statement resilience accounting
# ---------------------------------------------------------------------------


@dataclass
class ResilienceReport:
    """The ``resilience`` block of one statement's execution report.

    Counters are recorded from concurrent fetch threads, hence the lock.
    ``degraded_branches`` lists — under ``on_source_error="partial"`` — every
    branch the statement dropped, with the request and error that killed it:
    degradation is never silent.
    """

    mode: str = "fail"
    timeout_seconds: Optional[float] = None
    deadline_remaining_seconds: Optional[float] = None
    attempts: int = 0
    retries: int = 0
    failed_requests: int = 0
    breaker_trips: int = 0
    breaker_rejections: int = 0
    degraded_branches: List[Dict[str, object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_attempt(self) -> None:
        with self._lock:
            self.attempts += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_failed_request(self) -> None:
        with self._lock:
            self.failed_requests += 1

    def record_trip(self) -> None:
        with self._lock:
            self.breaker_trips += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.breaker_rejections += 1

    def record_degraded(self, branch: int, wrapper_name: str, request_text: str,
                        error: BaseException) -> None:
        with self._lock:
            self.degraded_branches.append({
                "branch": branch,
                "wrapper": wrapper_name,
                "request": request_text,
                "error": f"{type(error).__name__}: {error}",
            })

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "mode": self.mode,
                "timeout_seconds": self.timeout_seconds,
                "deadline_remaining_seconds": (
                    round(self.deadline_remaining_seconds, 6)
                    if self.deadline_remaining_seconds is not None else None
                ),
                "attempts": self.attempts,
                "retries": self.retries,
                "failed_requests": self.failed_requests,
                "breaker_trips": self.breaker_trips,
                "breaker_rejections": self.breaker_rejections,
                "degraded_branches": [dict(entry) for entry in self.degraded_branches],
            }


# ---------------------------------------------------------------------------
# The policy bundle the controller owns
# ---------------------------------------------------------------------------


class ResiliencePolicy:
    """Retry policy + per-wrapper breakers + health registry, as one unit.

    Owned by an :class:`~repro.engine.executor.ExecutionController` and
    shared across its statements, so breaker state and health statistics
    persist where they are useful: a wrapper that killed the last five
    statements is rejected fast by the sixth.
    """

    def __init__(self, retry_policy: Optional[RetryPolicy] = None,
                 failure_threshold: int = 5, cooldown_seconds: float = 30.0,
                 clock: Clock = SYSTEM_CLOCK,
                 adaptive_timeouts: bool = True,
                 adaptive_quantile: float = 0.95,
                 adaptive_headroom: float = 4.0,
                 adaptive_min_samples: int = 8,
                 adaptive_min_seconds: float = 0.05,
                 adaptive_max_seconds: float = 30.0):
        self.retry_policy = retry_policy or RetryPolicy()
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        #: Per-source adaptive fetch timeouts: a wrapper whose rolling-window
        #: p95 latency is known gets its own wait bound (p95 × headroom,
        #: clamped) instead of the statement's one-size-fits-all deadline
        #: slice.  ``adaptive_min_samples`` keeps cold wrappers unbounded.
        self.adaptive_timeouts = adaptive_timeouts
        self.adaptive_quantile = adaptive_quantile
        self.adaptive_headroom = adaptive_headroom
        self.adaptive_min_samples = adaptive_min_samples
        self.adaptive_min_seconds = adaptive_min_seconds
        self.adaptive_max_seconds = adaptive_max_seconds
        self.health = HealthRegistry()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def deadline(self, timeout_seconds: Optional[float]) -> Deadline:
        """A fresh statement deadline on this policy's clock."""
        return Deadline(timeout_seconds, self.clock)

    def breaker(self, wrapper_name: str) -> CircuitBreaker:
        key = wrapper_name.lower()
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    cooldown_seconds=self.cooldown_seconds,
                    clock=self.clock,
                )
            return breaker

    def run_fetch(self, wrapper_name: str, request_text: str,
                  fetch: Callable[[], object], deadline: Deadline,
                  stats: ResilienceReport,
                  source_statistics=None, span=None) -> Tuple[object, int]:
        """One guarded source round trip: breaker + retries + deadline.

        Returns ``(result, attempts)``.  Raises the final classified error
        (or :class:`DeadlineExceededError` / :class:`CircuitOpenError`);
        health, breaker and per-statement counters are updated either way.
        When a (recording) fetch ``span`` is passed, every attempt becomes
        one child span annotated with the breaker state it observed, so a
        trace's attempt spans reconcile exactly with the report's
        ``resilience.attempts`` counter.
        """
        breaker = self.breaker(wrapper_name)
        health = self.health.wrapper(wrapper_name)
        policy = self.retry_policy
        attempt = 0
        while True:
            deadline.check(f"fetching {request_text} from wrapper {wrapper_name!r}")
            if not breaker.allow():
                if span is not None:
                    span.event("breaker_rejection", wrapper=wrapper_name,
                               breaker_state=breaker.state)
                health.record_rejection()
                stats.record_rejection()
                raise CircuitOpenError(
                    f"wrapper {wrapper_name!r} is circuit-broken after repeated "
                    f"failures; retrying after cooldown "
                    f"({breaker.cooldown_seconds}s)"
                )
            attempt += 1
            stats.record_attempt()
            attempt_span = None
            if span is not None:
                attempt_span = span.child(
                    "attempt", attempt=attempt, wrapper=wrapper_name,
                    breaker_state=breaker.state,
                )
            started = self.clock.now()
            try:
                result = fetch()
            except Exception as error:
                latency = self.clock.now() - started
                tripped = breaker.record_failure()
                if tripped:
                    stats.record_trip()
                if attempt_span is not None:
                    if tripped:
                        attempt_span.event("breaker_trip", wrapper=wrapper_name)
                    attempt_span.finish(error=error)
                health.record_failure(latency, error)
                if source_statistics is not None:
                    source_statistics.record_failure()
                if not policy.is_transient(error) or attempt >= policy.max_attempts:
                    stats.record_failed_request()
                    raise
                delay = policy.backoff_delay(request_text, attempt)
                remaining = deadline.remaining()
                if remaining is not None and delay >= remaining:
                    stats.record_failed_request()
                    raise DeadlineExceededError(
                        f"statement deadline of {deadline.timeout_seconds}s "
                        f"leaves no room to retry {request_text} on wrapper "
                        f"{wrapper_name!r} (attempt {attempt} failed: {error})"
                    ) from error
                stats.record_retry()
                health.record_retry()
                if source_statistics is not None:
                    source_statistics.record_retry()
                self.clock.sleep(delay)
                continue
            if attempt_span is not None:
                attempt_span.finish()
            breaker.record_success()
            health.record_success(self.clock.now() - started)
            return result, attempt

    def adaptive_fetch_timeout(self, wrapper_name: str) -> Optional[float]:
        """This wrapper's earned wait bound, or None (no bound yet).

        ``None`` until the rolling health window holds at least
        ``adaptive_min_samples`` successful latencies — a cold or rarely-used
        wrapper keeps the statement-deadline-only behaviour.  Afterwards the
        bound is ``quantile × headroom`` clamped to
        ``[adaptive_min_seconds, adaptive_max_seconds]``: a healthy source
        that suddenly stalls is cut loose quickly, a habitually slow one is
        given the latitude its own history justifies.
        """
        if not self.adaptive_timeouts:
            return None
        health = self.health.wrapper(wrapper_name)
        if health.sample_count() < self.adaptive_min_samples:
            return None
        latency = health.latency_quantile(self.adaptive_quantile)
        if latency is None:
            return None
        return min(self.adaptive_max_seconds,
                   max(self.adaptive_min_seconds,
                       latency * self.adaptive_headroom))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            breakers = dict(self._breakers)
        sources = self.health.snapshot()
        for name, entry in sources.items():
            entry["adaptive_fetch_timeout_seconds"] = self.adaptive_fetch_timeout(name)
        return {
            "breakers": {
                name: breaker.snapshot() for name, breaker in sorted(breakers.items())
            },
            "sources": sources,
        }


# ---------------------------------------------------------------------------
# Proactive health probing
# ---------------------------------------------------------------------------


class HealthProber:
    """Background half-open circuit probes: recovery without sacrifice.

    A breaker past its cooldown sits half-open until *some* statement risks a
    request against the wrapper — reactive recovery sacrifices one receiver
    query per dead-source comeback.  The prober instead drives the half-open
    probe itself: ``run_once()`` walks the registered probe callables (one
    cheap fetch per wrapper, typically the smallest catalogued relation) and
    issues a probe against every breaker currently half-open, recording the
    outcome on the breaker *and* the health window so a recovered source is
    rediscovered — and its latency stats re-primed — before the next
    statement arrives.

    ``run_once()`` is deterministic and directly testable (drive it from a
    test with a :class:`ManualClock` policy); ``start()`` runs it on a daemon
    thread every ``interval_seconds`` for real deployments.
    """

    def __init__(self, policy: ResiliencePolicy,
                 probes: Optional[Dict[str, Callable[[], object]]] = None,
                 interval_seconds: float = 1.0):
        self.policy = policy
        self.interval_seconds = float(interval_seconds)
        self._lock = threading.Lock()
        self._probes: Dict[str, Callable[[], object]] = {}
        for name, probe in (probes or {}).items():
            self._probes[name.lower()] = probe
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.probes_attempted = 0
        self.probes_succeeded = 0
        self.probes_failed = 0

    def register(self, wrapper_name: str, probe: Callable[[], object]) -> None:
        with self._lock:
            self._probes[wrapper_name.lower()] = probe

    def run_once(self) -> Dict[str, bool]:
        """Probe every half-open breaker once; ``{wrapper: recovered}``."""
        with self._lock:
            probes = sorted(self._probes.items())
        results: Dict[str, bool] = {}
        for name, probe in probes:
            breaker = self.policy.breaker(name)
            if breaker.state != "half_open":
                continue
            if not breaker.allow():
                continue  # a statement's own probe is already in flight
            health = self.policy.health.wrapper(name)
            started = self.policy.clock.now()
            try:
                probe()
            except Exception as error:
                breaker.record_failure()
                health.record_failure(self.policy.clock.now() - started, error)
                results[name] = False
                with self._lock:
                    self.probes_attempted += 1
                    self.probes_failed += 1
            else:
                breaker.record_success()
                health.record_success(self.policy.clock.now() - started)
                results[name] = True
                with self._lock:
                    self.probes_attempted += 1
                    self.probes_succeeded += 1
        return results

    # -- background operation ----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Run :meth:`run_once` every ``interval_seconds`` on a daemon thread."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="health-prober", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.run_once()
            except Exception:  # pragma: no cover - probes must never kill the loop
                pass

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "running": self.running,
                "interval_seconds": self.interval_seconds,
                "registered_probes": len(self._probes),
                "probes_attempted": self.probes_attempted,
                "probes_succeeded": self.probes_succeeded,
                "probes_failed": self.probes_failed,
            }
