"""The streaming execution core: a pull-based cursor over a query plan.

A :class:`ResultStream` turns plan interpretation inside-out.  Instead of
fetching everything, joining everything and materializing the answer, it

* dispatches the plan's (deduplicated) source fetches **asynchronously** on
  the bounded pool — or lazily, one at a time, when the pool is bounded to a
  single request — and awaits each result only when a branch actually needs
  it staged;
* stages and finalizes branches **lazily**, in plan order, through the same
  physical operators and the same finalization semantics as the eager path —
  the common non-aggregated shape streams through ``Project`` → ``Sort`` →
  ``Distinct`` → ``Limit`` operator by operator, while grouped/aggregated
  branches fall back to the materializing finalizer per branch;
* threads one shared :class:`~repro.relational.budget.MemoryBudget` through
  every memory-hungry operator, so the statement's operator memory is bounded
  and spills are observable in the execution report;
* **terminates early**: a consumer that stops pulling (a satisfied LIMIT, an
  explicit :meth:`close`) cancels source fetches that were never consumed,
  drops the staged temporaries, and releases the fetch pool mid-query.

``ExecutionController.execute`` drains a stream to re-create the historical
eager behaviour byte for byte: same rows, same order, same report fields —
plus the new streaming and memory counters.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    SchemaError,
    SourceUnavailableError,
)
from repro.engine.executor import (
    ExecutionReport,
    OperatorStats,
    _FetchOutcome,
    _InFlightGauge,
    _InstrumentedOperator,
    request_failed_error,
)
from repro.engine.plan import BranchPlan, QueryPlan, SourceRequest
from repro.engine.request_cache import RequestKey
from repro.engine.resilience import Deadline
from repro.obs.trace import current_span
from repro.relational.budget import MemoryBudget, estimate_row_bytes
from repro.relational.operators import (
    Distinct,
    Filter,
    Limit,
    PhysicalOperator,
    Project,
    Sort,
    TableScan,
)
from repro.relational.query import (
    QueryProcessor,
    expand_star_items,
    finalize_distinct_key,
    output_names,
)
from repro.relational.relation import Relation, Row
from repro.relational.schema import Schema
from repro.relational.types import sort_key as value_sort_key
from repro.sql.ast import (
    ColumnRef,
    InList,
    Literal,
    Select,
    conjoin,
    is_aggregate_call,
    walk,
)


def _relation_bytes(relation: Relation) -> int:
    """Sample-based byte estimate of a staged relation (accounting only)."""
    if not relation.rows:
        return 0
    return estimate_row_bytes(relation.rows[0]) * len(relation.rows)


def adaptive_timeout_error(wrapper_name: str, request_text: str,
                           adaptive_seconds: Optional[float]) -> SourceUnavailableError:
    """The transient source failure an adaptive-timeout expiry turns into."""
    bound = (
        f"{adaptive_seconds:.3f}s" if adaptive_seconds is not None else "its bound"
    )
    error = SourceUnavailableError(
        f"wrapper {wrapper_name!r} exceeded its adaptive fetch timeout of "
        f"{bound} (rolling p95 × headroom) awaiting {request_text}"
    )
    error.transient = True
    return error


class _SourceFailure(Exception):
    """Internal control flow: one distinct fetch failed for good.

    Carries the request key and its (error-bearing) outcome so the branch
    builder can either degrade the branch (``on_source_error="partial"``) or
    raise the context-rich terminal error (``"fail"``).
    """

    def __init__(self, key: RequestKey, outcome: _FetchOutcome):
        super().__init__(str(outcome.error))
        self.key = key
        self.outcome = outcome


class ResultStream:
    """A pull-based cursor over one plan execution.

    Iterate it, or drive it DB-API style with :meth:`fetchone` /
    :meth:`fetchmany` / :meth:`fetchall`.  The stream closes itself on
    exhaustion; close it explicitly (or use it as a context manager) when
    abandoning it early so outstanding fetches are cancelled and staged
    temporaries released.  ``report`` is filled progressively and finalized
    (elapsed, peaks, temp-storage snapshot) when the stream finishes.
    """

    def __init__(self, controller, plan: QueryPlan,
                 deadline: Optional[Deadline] = None,
                 on_source_error: str = "fail"):
        if not plan.branches:
            raise ExecutionError(
                "cannot execute a plan with no branches: the planner produced "
                "an empty UNION (no SELECT branch to evaluate)"
            )
        self.controller = controller
        self.plan = plan
        self.report = ExecutionReport()
        self.budget = MemoryBudget(controller.memory_budget_bytes)
        self.report.memory_limit_bytes = controller.memory_budget_bytes or 0
        self._deadline = (
            deadline if deadline is not None
            else Deadline.unbounded(controller.resilience.clock)
        )
        self._partial = on_source_error == "partial"
        self.report.resilience.mode = on_source_error
        self.report.resilience.timeout_seconds = self._deadline.timeout_seconds

        #: The ambient (execute) span at construction time.  Fetch workers
        #: run on pool threads where the tracing contextvar is absent, so the
        #: parent is captured here and children are created explicitly —
        #: ``Span.child`` is thread-safe, and on the untraced path this is
        #: the no-op ``NULL_SPAN`` whose children cost nothing.
        self._parent_span = current_span()
        #: One "stream" child span covering the cursor's lifetime; finished
        #: (with the finalize counters) in :meth:`close`.
        self._span = self._parent_span.child("stream")

        self._started = time.perf_counter()
        self._closed = False
        self._exhausted = False
        self._first_row_seen = False
        self._schema: Optional[Schema] = None
        self._first_branch: Optional[Tuple[Iterator[Row], Schema]] = None
        self._first_branch_index = 0
        self._staged_handles: List[str] = []
        self._staged_released = False
        #: Keys already staged at least once (drives dedup_hit bookkeeping).
        self._consumed_keys: set = set()
        #: Keys whose fetch result was consumed (cache put + estimate done).
        self._finalized_keys: set = set()
        self._gauge = _InFlightGauge()
        self._close_callbacks: List[Callable[[ExecutionReport], None]] = []
        self._processor = QueryProcessor(controller._reject_unknown_table)
        #: (JoinStep, OperatorStats) pairs whose observed cardinality feeds
        #: the adaptive optimizer when the stream drains to exhaustion.
        self._join_watchers: List[Tuple[object, OperatorStats]] = []

        optimizer = self.report.optimizer
        optimizer.feedback_epoch = getattr(plan, "feedback_epoch", 0)
        for branch in plan.branches:
            if not branch.requests:
                continue
            optimizer.join_orders.append(
                [branch.requests[branch.initial_request].binding]
                + [branch.requests[step.request_index].binding
                   for step in branch.join_steps]
            )
            for request in branch.requests:
                if request.estimate_source == "feedback":
                    optimizer.estimates_from_feedback += 1
                else:
                    optimizer.estimates_from_defaults += 1
            for step in branch.join_steps:
                if step.estimate_source == "feedback":
                    optimizer.estimates_from_feedback += 1
                else:
                    optimizer.estimates_from_defaults += 1

        # -- phase 1: dedup, cache-resolve, dispatch ---------------------------
        self._distinct: Dict[RequestKey, SourceRequest] = {}
        total_units = 0
        for branch_index, branch in enumerate(plan.branches):
            for request_index, request in enumerate(branch.requests):
                if request.bind is not None:
                    # A bound request has no final SQL until its driver's key
                    # set is known; the branch builder derives and schedules
                    # its per-batch requests when the driver is staged.
                    continue
                total_units += 1
                key = controller._plan_key(request, branch_index, request_index)
                if key not in self._distinct:
                    self._distinct[key] = request
        self.report.distinct_requests = len(self._distinct)
        self.report.dedup_hits = total_units - len(self._distinct)

        self._cache = controller.request_cache if controller.deduplicate else None
        self._outcomes: Dict[RequestKey, _FetchOutcome] = {}
        pending: List[RequestKey] = []
        for key, request in self._distinct.items():
            cached = self._cache.get(key) if self._cache is not None else None
            if cached is not None:
                self._outcomes[key] = _FetchOutcome(
                    relation=cached, request_text=request.request_text,
                    cache_hit=True, frozen=True,
                )
                self.report.cache_hits += 1
            else:
                pending.append(key)

        self._pool: Optional[ThreadPoolExecutor] = None
        self._futures: Dict[RequestKey, "Future[_FetchOutcome]"] = {}
        # A bounded statement must never block uninterruptibly inside a
        # wrapper call on the consumer's thread, so a deadline forces pool
        # dispatch even for a single pending fetch: the wait happens in
        # ``future.result(timeout=...)`` where the deadline can fire.
        dispatch = len(pending) > 1 or (bool(pending) and self._deadline.bounded)
        if controller.max_concurrent_requests > 1 and dispatch:
            pending = self._dispatch_order(pending)
            workers = min(controller.max_concurrent_requests, len(pending))
            self._pool = ThreadPoolExecutor(max_workers=workers,
                                            thread_name_prefix="source-fetch")
            queued_at = time.perf_counter()
            for key in pending:
                self._futures[key] = self._pool.submit(self._fetch, key, queued_at)
        # else: remaining fetches happen lazily, serially, on first staging —
        # branches a satisfied LIMIT never reaches cost no round trip at all.

        self._rows = self._generate()

    # -- fetching ------------------------------------------------------------------

    def _dispatch_order(self, pending: List[RequestKey]) -> List[RequestKey]:
        """Order pool submissions so the expected-slowest fetch starts first.

        With more pending fetches than pool workers, plan order can leave the
        statement's long pole queued behind quick lookups; its latency then
        adds to the tail instead of overlapping it.  The catalog's per-wrapper
        EWMA latency profiles (request overhead + per-row transfer, mature
        after three observations) give an expected wall-clock cost per fetch;
        submitting in descending cost keeps the critical path at the front of
        the pool.  Wrappers without a mature profile cost 0.0 and keep plan
        order behind the profiled ones.
        """
        feedback = getattr(self.controller.catalog, "feedback", None)
        expected: Dict[RequestKey, float] = {}
        profiled = False
        for key in pending:
            request = self._distinct[key]
            cost = 0.0
            profile = (feedback.source_profile(request.wrapper_name)
                       if feedback is not None else None)
            if profile is not None:
                profiled = True
                rows = max(int(request.estimated_result_rows or 0), 1)
                cost = profile.request_seconds + profile.seconds_per_row * rows
            expected[key] = cost
        if profiled:
            indexed = sorted(range(len(pending)),
                             key=lambda i: (-expected[pending[i]], i))
            pending = [pending[i] for i in indexed]
            self.report.dispatch_policy = "latency"
        self.report.dispatch_order = [
            self._distinct[key].binding for key in pending
        ]
        return pending

    def _fetch(self, key: RequestKey, queued_at: float) -> _FetchOutcome:
        """One guarded round trip: retries, breaker and deadline applied.

        Never raises: a fetch that fails for good returns an outcome whose
        ``error`` is set (and whose relation is None), so pool futures always
        resolve and ``close()``-time banking can check the fetch outcome.
        """
        request = self._distinct[key]
        wrapper = self.controller.catalog.wrappers.get(request.wrapper_name)

        def attempt():
            if request.sql is not None:
                return wrapper.query(request.sql)
            return wrapper.fetch(request.relation)

        # Explicit parentage: this may run on a pool thread, where the
        # tracing contextvar does not propagate.  The span is finished on
        # every path out, so a fetch that completes never leaks an open span.
        fetch_span = self._parent_span.child(
            "fetch", wrapper=request.wrapper_name, binding=request.binding,
            request=request.request_text,
        )
        with self._gauge:
            fetch_started = time.perf_counter()
            try:
                fetched, attempts = self.controller.resilience.run_fetch(
                    wrapper_name=request.wrapper_name,
                    request_text=request.request_text,
                    fetch=attempt,
                    deadline=self._deadline,
                    stats=self.report.resilience,
                    source_statistics=getattr(wrapper, "source_statistics", None),
                    span=fetch_span if fetch_span.recording else None,
                )
            except Exception as error:
                fetch_span.finish(error=error)
                return _FetchOutcome(
                    relation=None,
                    request_text=request.request_text,
                    fetch_seconds=time.perf_counter() - fetch_started,
                    wait_seconds=fetch_started - queued_at,
                    error=error,
                )
            fetch_elapsed = time.perf_counter() - fetch_started
        fetch_span.annotate(rows=len(fetched), attempts=attempts)
        fetch_span.finish()
        return _FetchOutcome(
            relation=fetched,
            request_text=request.request_text,
            fetch_seconds=fetch_elapsed,
            wait_seconds=fetch_started - queued_at,
            attempts=attempts,
        )

    def _outcome(self, key: RequestKey) -> _FetchOutcome:
        """The fetch result for ``key``, awaiting or issuing it if needed.

        Raises :class:`DeadlineExceededError` when the statement deadline
        fires first (in the wait, or inside the fetch's retry loop), and
        :class:`_SourceFailure` when the fetch failed for good — the branch
        builder turns the latter into degradation or a terminal error.
        """
        outcome = self._outcomes.get(key)
        if outcome is None:
            future = self._futures.get(key)
            if future is not None:
                request = self._distinct[key]
                wait = self._deadline.remaining()
                # A wrapper with an earned latency profile gets its own wait
                # bound (p95 × headroom): a habitually-fast source that
                # suddenly stalls is cut loose long before the statement
                # deadline instead of consuming all of it.
                adaptive = None
                if self._deadline.bounded:
                    adaptive = self.controller.resilience.adaptive_fetch_timeout(
                        request.wrapper_name
                    )
                    if adaptive is not None:
                        wait = adaptive if wait is None else min(wait, adaptive)
                try:
                    outcome = future.result(timeout=wait)
                except FutureTimeoutError:
                    remaining = self._deadline.remaining()
                    if remaining is not None and remaining <= 0:
                        raise DeadlineExceededError(
                            f"statement deadline of "
                            f"{self._deadline.timeout_seconds}s exceeded awaiting "
                            f"{request.request_text} from wrapper "
                            f"{request.wrapper_name!r}"
                        ) from None
                    # The adaptive bound fired with deadline budget left: a
                    # *source* failure (transient — the wrapper may recover),
                    # so partial mode can degrade the branch instead of
                    # killing the statement.
                    error = adaptive_timeout_error(
                        request.wrapper_name, request.request_text, adaptive
                    )
                    outcome = _FetchOutcome(
                        relation=None,
                        request_text=request.request_text,
                        error=error,
                    )
            else:
                request = self._distinct[key]
                self._deadline.check(
                    f"fetching {request.request_text} from wrapper "
                    f"{request.wrapper_name!r}"
                )
                outcome = self._fetch(key, time.perf_counter())
            self._outcomes[key] = outcome
        self._consume_outcome(key, outcome)
        if outcome.error is not None:
            if isinstance(outcome.error, DeadlineExceededError):
                # A deadline expiry is a statement-level failure, never a
                # degradable source failure.
                raise outcome.error
            raise _SourceFailure(key, outcome)
        return outcome

    def _consume_outcome(self, key: RequestKey, outcome: _FetchOutcome) -> None:
        """One-time bookkeeping per distinct fetch: cache put + feedback.

        A failed fetch is finalized without banking: neither the cache, the
        catalog estimates nor the cardinality feedback may ever see a
        poisoned (failed or partially fetched) result, whether the failure is
        consumed by a branch or discovered while closing.  Limited requests
        (pushed LIMIT) and bind-join batches ship deliberately truncated row
        sets, so they feed the source latency profile but never cardinality.
        """
        if key in self._finalized_keys:
            return
        self._finalized_keys.add(key)
        if outcome.error is not None:
            return
        request = self._distinct[key]
        if self._cache is not None and not outcome.cache_hit:
            self._cache.put(key, outcome.relation)
        feedback = getattr(self.controller.catalog, "feedback", None)
        if feedback is not None and not outcome.cache_hit:
            feedback.record_source(
                request.wrapper_name, outcome.fetch_seconds, len(outcome.relation)
            )
        if request.bind_batch:
            return
        if request.sql is not None and request.sql.limit is not None:
            return
        observed = len(outcome.relation)
        # Keep estimates honest for subsequent planning rounds — once per
        # distinct request, so branch fan-out does not skew the estimate.
        # Only an *unfiltered* fetch reflects the relation's base
        # cardinality; filtered counts go to the feedback store instead,
        # keyed by their predicate fingerprint.
        if not request.pushed_conjuncts:
            self.controller.catalog.update_estimate(
                request.relation, max(observed, 1)
            )
        if feedback is not None:
            planned = (request.estimated_result_rows
                       if request.estimated_result_rows > 0 else None)
            feedback.record_request(
                request.relation, request.predicate_fingerprint,
                observed, planned_rows=planned,
            )

    # -- bind joins ----------------------------------------------------------------

    @staticmethod
    def _bind_depth(branch: BranchPlan, index: int) -> int:
        """Length of the bind chain above request ``index`` (drivers first)."""
        depth, current = 0, branch.requests[index].bind
        while current is not None and depth <= len(branch.requests):
            depth += 1
            current = branch.requests[current.driver_index].bind
        return depth

    def _empty_bound_relation(self, request: SourceRequest) -> Relation:
        """The empty result of a bound fetch whose driver produced no keys."""
        base = self.controller.catalog.schema_of(request.relation)
        if request.projected_columns:
            attributes = [base.attribute(name) for name in request.projected_columns]
        else:
            attributes = list(base.attributes)
        return Relation(Schema(attributes), name=f"{request.binding}_bound")

    def _stage_bound(self, branch_index: int, index: int, request: SourceRequest,
                     staged: Dict[int, Relation]) -> Tuple[Relation, str]:
        """Fetch and stage one bound request: ship the driver's key set.

        The driver's staged rows yield the distinct non-NULL values of each
        key column; the first column's values are chunked into ``batch_size``
        ``IN`` lists (the other columns ship their full lists in every batch,
        so batches stay disjoint and their union is the same superset).  Each
        batch flows through the scheduler's regular dedup/cache/pool path —
        a repeated statement with an unchanged key set is answered from the
        source-result cache without any round trip.
        """
        controller = self.controller
        report = self.report
        optimizer = report.optimizer
        spec = request.bind
        driver = staged.get(spec.driver_index)
        if driver is None:
            raise ExecutionError(
                f"bind join for {request.binding!r} references driver request "
                f"{spec.driver_index}, which is not staged"
            )
        with report.lock:
            optimizer.bind_joins += 1

        column_values: List[List[object]] = []
        for driver_column in spec.driver_columns:
            position = driver.schema.index_of(driver_column, spec.driver_binding)
            values = {row[position] for row in driver.rows if row[position] is not None}
            # Sorted for a deterministic (and therefore cacheable) SQL text.
            column_values.append(sorted(values, key=value_sort_key))

        if not driver.rows or any(not values for values in column_values):
            # No keys: the equi join upstream cannot match anything, so the
            # round trip is skipped entirely.
            with report.lock:
                optimizer.bind_empty_key_skips += 1
                optimizer.bind_rows_avoided += spec.estimated_unbound_rows
            outcome = _FetchOutcome(
                relation=self._empty_bound_relation(request),
                request_text=f"{request.request_text} /* bind: empty key set */",
                frozen=True,
            )
            return controller._stage_request(
                request, report, branch_index, outcome, first_use=True
            )

        qualifier_table = request.sql.tables[0]
        qualifier = qualifier_table.alias or qualifier_table.name
        batch_size = max(1, spec.batch_size)
        first_values = column_values[0]
        chunks = [first_values[start:start + batch_size]
                  for start in range(0, len(first_values), batch_size)]

        batch_keys: List[RequestKey] = []
        keys_shipped = 0
        for batch_number, chunk in enumerate(chunks):
            conjuncts: List[object] = []
            if request.sql.where is not None:
                conjuncts.append(request.sql.where)
            conjuncts.append(InList(
                expr=ColumnRef(name=spec.bound_columns[0], table=qualifier),
                items=tuple(Literal(value) for value in chunk),
            ))
            keys_shipped += len(chunk)
            for bound_column, values in zip(spec.bound_columns[1:], column_values[1:]):
                conjuncts.append(InList(
                    expr=ColumnRef(name=bound_column, table=qualifier),
                    items=tuple(Literal(value) for value in values),
                ))
                keys_shipped += len(values)
            batch_sql = replace(request.sql, where=conjoin(conjuncts))
            batch_request = replace(request, sql=batch_sql, bind=None, bind_batch=True)
            key = controller._plan_key(
                batch_request, branch_index, f"{index}.{batch_number}"
            )
            if key in self._distinct:
                with report.lock:
                    report.dedup_hits += 1
            else:
                self._distinct[key] = batch_request
                with report.lock:
                    report.distinct_requests += 1
                cached = self._cache.get(key) if self._cache is not None else None
                if cached is not None:
                    self._outcomes[key] = _FetchOutcome(
                        relation=cached, request_text=batch_request.request_text,
                        cache_hit=True, frozen=True,
                    )
                    with report.lock:
                        report.cache_hits += 1
                elif self._pool is not None:
                    self._futures[key] = self._pool.submit(
                        self._fetch, key, time.perf_counter()
                    )
            batch_keys.append(key)

        combined_rows: List[Row] = []
        schema: Optional[Schema] = None
        fetch_seconds = 0.0
        wait_seconds = 0.0
        all_cache_hits = True
        any_first = False
        for key in batch_keys:
            outcome = self._outcome(key)
            if key not in self._consumed_keys:
                any_first = True
                fetch_seconds += outcome.fetch_seconds
                wait_seconds += outcome.wait_seconds
            self._consumed_keys.add(key)
            all_cache_hits = all_cache_hits and outcome.cache_hit
            if schema is None:
                schema = outcome.relation.schema
            combined_rows.extend(outcome.relation.rows)

        avoided = max(0, spec.estimated_unbound_rows - len(combined_rows))
        with report.lock:
            optimizer.bind_batches += len(batch_keys)
            optimizer.bind_keys_shipped += keys_shipped
            optimizer.bind_rows_fetched += len(combined_rows)
            optimizer.bind_rows_avoided += avoided
            if combined_rows and avoided:
                optimizer.bind_bytes_saved += (
                    estimate_row_bytes(combined_rows[0]) * avoided
                )

        combined = Relation(schema, name=f"{request.binding}_bound")
        combined.rows = combined_rows
        total_keys = sum(len(values) for values in column_values)
        outcome = _FetchOutcome(
            relation=combined,
            request_text=(f"{request.request_text} /* bind {len(batch_keys)} "
                          f"batch(es), {total_keys} key(s) */"),
            cache_hit=all_cache_hits,
            frozen=True,
            fetch_seconds=fetch_seconds,
            wait_seconds=wait_seconds,
        )
        return controller._stage_request(
            request, report, branch_index, outcome, first_use=any_first
        )

    # -- branch pipelines ----------------------------------------------------------

    def _build_branch(self, branch_index: int) -> Optional[Tuple[Iterator[Row], Schema]]:
        """Stage one branch's inputs and build its (streaming) pipeline.

        Returns None when the branch was degraded: one of its sources failed
        for good and the stream runs under ``on_source_error="partial"`` —
        the drop is recorded in the report's resilience block.  In ``"fail"``
        mode the same failure raises the context-rich terminal error.
        """
        controller = self.controller
        branch: BranchPlan = self.plan.branches[branch_index]
        report = self.report

        staged: Dict[int, Relation] = {}
        # Bound requests derive their batched IN-list SQL from their driver's
        # staged rows, so they stage after every unbound request, ordered by
        # bind-chain depth (a driver may itself be bound).
        unbound = [(index, request) for index, request in enumerate(branch.requests)
                   if request.bind is None]
        bound = [(index, request) for index, request in enumerate(branch.requests)
                 if request.bind is not None]
        bound.sort(key=lambda pair: self._bind_depth(branch, pair[0]))
        for index, request in unbound + bound:
            try:
                if request.bind is None:
                    key = controller._plan_key(request, branch_index, index)
                    outcome = self._outcome(key)
                    relation, handle = controller._stage_request(
                        request, report, branch_index, outcome,
                        first_use=key not in self._consumed_keys,
                    )
                    self._consumed_keys.add(key)
                else:
                    relation, handle = self._stage_bound(
                        branch_index, index, request, staged
                    )
            except _SourceFailure as failure:
                failed_request = self._distinct[failure.key]
                if self._partial:
                    report.resilience.record_degraded(
                        branch_index,
                        failed_request.wrapper_name,
                        failed_request.request_text,
                        failure.outcome.error,
                    )
                    # Degraded answers are always kept by the trace sampler.
                    self._span.flag("partial")
                    self._span.event(
                        "branch_degraded", branch=branch_index,
                        wrapper=failed_request.wrapper_name,
                    )
                    return None
                raise request_failed_error(
                    failed_request, failure.outcome.error
                ) from failure.outcome.error
            self._staged_handles.append(handle)
            with report.lock:
                report.staged_bytes += _relation_bytes(relation)
            staged[index] = relation

        def instrument(operator: PhysicalOperator) -> PhysicalOperator:
            stats = OperatorStats(
                branch=branch_index,
                operator=operator.operator_name,
                detail=operator._explain_details(),
            )
            with report.lock:
                report.operator_stats.append(stats)
            return _InstrumentedOperator(operator, stats)

        pipeline: PhysicalOperator = instrument(TableScan(staged[branch.initial_request]))
        unlimited = branch.select.limit is None and branch.fetch_limit is None
        for step in branch.join_steps:
            operator = instrument(
                controller._join(pipeline, staged[step.request_index], step, self.budget)
            )
            # An unlimited branch drains its joins completely, so the
            # instrumented row count is the true intermediate cardinality —
            # recorded into the feedback store when the stream exhausts.
            if step.feedback_key and unlimited:
                self._join_watchers.append((step, operator.stats))
            pipeline = operator
        if branch.post_join_conditions:
            pipeline = instrument(
                Filter(pipeline, conjoin(list(branch.post_join_conditions)))
            )

        streaming = self._streaming_finalizer(branch, pipeline, instrument)
        if streaming is not None:
            return streaming
        # Grouped/aggregated (or alias-opaque ORDER BY) branches: finalize
        # with the materializing processor — semantics identical to the eager
        # path, streamed to the consumer as one branch-sized chunk.
        relation = self._processor.finalize_select(
            branch.select, list(pipeline), pipeline.schema
        )
        return iter(relation.rows), relation.schema

    def _streaming_finalizer(self, branch: BranchPlan, pipeline: PhysicalOperator,
                             instrument: Callable[[PhysicalOperator], PhysicalOperator],
                             ) -> Optional[Tuple[Iterator[Row], Schema]]:
        """Build the operator form of SELECT finalization, when it streams.

        Mirrors ``QueryProcessor.finalize_select`` exactly for the eligible
        shape: no GROUP BY, no aggregates, no HAVING, and every ORDER BY key
        resolvable against the *output* row (alias or 1-based position).
        Anything else returns None and finalizes materialized.
        """
        select: Select = branch.select
        has_aggregates = any(
            is_aggregate_call(node)
            for item in select.items
            for node in walk(item.expr)
        )
        if select.group_by or has_aggregates or select.having is not None:
            return None

        items = expand_star_items(list(select.items), pipeline.schema)
        names = output_names(items)
        subquery_executor = self._processor._subquery_executor
        project = Project(pipeline, [item.expr for item in items], names,
                          subquery_executor)
        output_schema = project.schema
        operator: PhysicalOperator = instrument(project)

        if select.order_by:
            alias_positions = {
                name.lower(): index
                for index, name in enumerate(output_schema.names)
            }
            # An ORDER BY key structurally identical to a projected expression
            # yields exactly the value sitting at that output position, so it
            # can be ordered post-projection without the source context row.
            expression_positions: Dict[object, int] = {}
            for index, item in enumerate(items):
                expression_positions.setdefault(item.expr, index)
            key_functions: List[Tuple[Callable[[Row], object], bool]] = []
            for item in select.order_by:
                expr = item.expr
                position: Optional[int] = None
                if (isinstance(expr, ColumnRef) and expr.table is None
                        and expr.name.lower() in alias_positions):
                    position = alias_positions[expr.name.lower()]
                elif (isinstance(expr, Literal) and isinstance(expr.value, int)
                        and not isinstance(expr.value, bool)):
                    literal_position = expr.value - 1

                    def positional(row: Row, position=literal_position,
                                   literal=expr.value):
                        if 0 <= position < len(row):
                            return value_sort_key(row[position])
                        return value_sort_key(literal)

                    key_functions.append((positional, item.ascending))
                    continue
                elif expr in expression_positions:
                    position = expression_positions[expr]
                if position is None:
                    # The key needs the pre-projection context row; only the
                    # materializing finalizer carries that context.
                    return None
                key_functions.append((
                    lambda row, position=position: value_sort_key(row[position]),
                    item.ascending,
                ))
            top_k = branch.fetch_limit if not select.distinct else None
            operator = instrument(Sort(
                operator,
                [(item.expr, item.ascending) for item in select.order_by],
                key_functions=key_functions,
                budget=self.budget,
                limit=top_k,
            ))

        if select.distinct:
            operator = instrument(Distinct(
                operator, budget=self.budget, key=finalize_distinct_key
            ))

        if select.limit is not None or select.offset is not None:
            operator = instrument(Limit(operator, select.limit, select.offset or 0))

        return iter(operator), output_schema

    def _ensure_first_branch(self) -> None:
        """Build the first *surviving* branch (partial mode skips dead ones)."""
        if self._first_branch is not None:
            return
        for branch_index in range(len(self.plan.branches)):
            built = self._build_branch(branch_index)
            if built is not None:
                self._first_branch = built
                self._first_branch_index = branch_index
                self._schema = built[1]
                return
        raise ExecutionError(
            f"all {len(self.plan.branches)} branches were degraded by source "
            "failures; no surviving branch can answer the statement "
            "(on_source_error='partial' requires at least one live source)"
        )

    # -- row production --------------------------------------------------------------

    def _generate(self) -> Iterator[Row]:
        self._ensure_first_branch()
        rows_iter, _schema = self._first_branch
        base_arity = len(self._schema)
        union_distinct = len(self.plan.branches) > 1 and not self.plan.union_all
        seen = set() if union_distinct else None
        report = self.report

        for branch_index in range(self._first_branch_index, len(self.plan.branches)):
            if branch_index > self._first_branch_index:
                built = self._build_branch(branch_index)
                if built is None:
                    continue  # degraded mid-stream: the answer flows on
                rows_iter, branch_schema = built
                if len(branch_schema) != base_arity:
                    raise SchemaError("UNION requires relations of the same arity")
            branch_count = 0
            for row in rows_iter:
                branch_count += 1
                if seen is not None:
                    key = tuple(row)
                    if key in seen:
                        continue
                    seen.add(key)
                yield row
            with report.lock:
                report.branch_rows.append(branch_count)

    # -- consumer API ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The result schema (stages the first branch's inputs if needed)."""
        self._ensure_first_branch()
        return self._schema

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def closed(self) -> bool:
        return self._closed

    def __iter__(self) -> "ResultStream":
        return self

    def __next__(self) -> Row:
        if self._exhausted:
            raise StopIteration
        if self._closed:
            raise ExecutionError("cannot fetch from a closed result stream")
        try:
            if self._deadline.bounded:
                self._deadline.check("streaming rows to the consumer")
            row = next(self._rows)
        except StopIteration:
            self._exhausted = True
            self.close()
            raise
        except BaseException:
            # Mid-stream failure: release resources and cancel outstanding
            # fetches so a broken statement never pins the scheduler.
            self.close()
            raise
        report = self.report
        with report.lock:
            if not self._first_row_seen:
                self._first_row_seen = True
                report.first_row_seconds = time.perf_counter() - self._started
            report.rows_streamed += 1
        return row

    def fetchone(self) -> Optional[Row]:
        try:
            return next(self)
        except StopIteration:
            return None

    def fetchmany(self, size: int = 1) -> List[Row]:
        rows: List[Row] = []
        for _ in range(max(0, size)):
            row = self.fetchone()
            if row is None:
                break
            rows.append(row)
        return rows

    def fetchall(self) -> List[Row]:
        return list(self)

    def to_relation(self, name: Optional[str] = None) -> Relation:
        """Drain the remaining rows into a materialized relation."""
        rows = self.fetchall()
        relation = Relation(self.schema, name=name)
        relation.rows = rows
        return relation

    # -- lifecycle ----------------------------------------------------------------------

    def on_close(self, callback: Callable[[ExecutionReport], None]) -> None:
        """Run ``callback(report)`` once, when the stream finishes or closes."""
        self._close_callbacks.append(callback)

    def close(self) -> None:
        """Finish the stream: cancel what was never consumed, free resources.

        Idempotent.  Outstanding fetches that already completed are banked
        (cached, estimates updated) since their round trip was paid; queued
        ones are cancelled and counted in ``report.cancelled_fetches``.
        """
        if self._closed:
            return
        self._closed = True

        cancelled = 0
        for key, future in self._futures.items():
            if key in self._finalized_keys:
                continue
            if future.cancel():
                cancelled += 1
            elif future.done():
                try:
                    outcome = future.result()
                except BaseException:
                    continue  # defensive: _fetch returns error outcomes
                self._outcomes[key] = outcome
                # Banking checks the fetch outcome: a completed-but-failed
                # fetch is finalized without touching cache or estimates.
                self._consume_outcome(key, outcome)
        if self._pool is not None:
            self._pool.shutdown(wait=False)

        # Close the row generator (and the first branch's operator pipeline,
        # which it references) *explicitly*: suspended Sort/Distinct/HashJoin
        # generators release their memory-budget reservations in ``finally``
        # blocks, and leaving that to garbage collection makes the budget
        # accounting below — and the "drained after close" invariant the
        # server's registries rely on — nondeterministic.
        rows = getattr(self, "_rows", None)
        if rows is not None:
            try:
                rows.close()
            except ValueError:
                # Closed concurrently with a pull (e.g. a registry eviction
                # racing a fetch): the consumer's own exit path releases.
                pass
        first_branch = getattr(self, "_first_branch", None)
        if first_branch is not None:
            branch_close = getattr(first_branch[0], "close", None)
            if branch_close is not None:
                try:
                    branch_close()
                except ValueError:
                    pass

        # A fully drained stream pulled every join to completion, so the
        # instrumented row counts are true intermediate cardinalities; an
        # abandoned stream's partial counts must never reach the optimizer.
        if self._exhausted and self._join_watchers:
            feedback = getattr(self.controller.catalog, "feedback", None)
            if feedback is not None:
                for step, stats in self._join_watchers:
                    planned = (step.estimated_rows
                               if step.estimated_rows > 0 else None)
                    feedback.record_join(
                        step.feedback_key, stats.rows_out, planned_rows=planned
                    )

        self.report.resilience.deadline_remaining_seconds = self._deadline.remaining()
        # Snapshot the helpers before taking the report lock so it never
        # nests inside (or around) theirs.
        temp_storage = self.controller.temp_store.statistics.snapshot()
        memory = self.budget.snapshot()
        report = self.report
        with report.lock:
            report.cancelled_fetches += cancelled
            report.max_in_flight = self._gauge.peak
            report.result_rows = report.rows_streamed
            report.elapsed_seconds = time.perf_counter() - self._started
            report.temp_storage = temp_storage
            report.peak_memory_bytes = memory["peak_bytes"]
            report.spill_count = memory["spill_count"]
            report.spilled_rows = memory["spilled_rows"]
            report.spilled_bytes = memory["spilled_bytes"]

        self._span.annotate(
            rows_streamed=report.rows_streamed,
            cancelled_fetches=report.cancelled_fetches,
            spill_count=report.spill_count,
            exhausted=self._exhausted,
        )
        self._span.finish()

        self._release_staged()

        callbacks, self._close_callbacks = self._close_callbacks, []
        for callback in callbacks:
            callback(self.report)

    def _release_staged(self) -> None:
        if self._staged_released:
            return
        self._staged_released = True
        for handle in self._staged_handles:
            self.controller.temp_store.drop(handle)
        self._staged_handles = []

    def __enter__(self) -> "ResultStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - safety net for abandoned streams
        try:
            self.close()
        except Exception:
            pass
