"""Runtime cardinality and latency feedback for the adaptive optimizer.

The planner prices plans with textbook default selectivities
(:mod:`repro.engine.cost`).  Those defaults are fine for cold catalogs but
systematically wrong for selective predicates and multi-join branches —
wrong enough that the planner ships whole relations over the wire when a
bound key set would cut the transfer by orders of magnitude.

:class:`CardinalityFeedback` closes the loop.  Every executed statement
reports back, per distinct source request, the *observed* row count keyed
by ``(relation, predicate fingerprint)``; per join prefix, the observed
intermediate cardinality keyed by an order-insensitive fingerprint of the
joined ``relation|predicate`` set; and per wrapper, an EWMA latency
profile (seconds per round trip and per transferred row).  The cost model
consults these observations before falling back to defaults, so the next
plan for the same shape is priced from reality.

Two invariants keep feedback safe for the warm-path contracts:

* **Correctness is generation-scoped.**  ``Catalog.bump_generation`` (source
  registration, constraint changes, cache invalidation) clears all recorded
  observations — estimates must never outlive the data they were measured
  on.  The *epoch* is monotonic and survives the clear, so plan-cache keys
  never collide across invalidations.
* **Re-planning is bounded.**  The epoch — the component of every plan-cache
  key that retires plans priced on stale estimates — only advances on a
  *material* estimation error: the observation must differ from the planned
  estimate by at least ``replan_min_rows`` rows *and* by a factor of
  ``replan_ratio``.  Tiny demo relations never trip it, so cached plans for
  small workloads stay warm (``warm_plans == 0`` in the benches), while a
  federated join that was mispriced by thousands of rows re-plans on the
  next statement.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["CardinalityFeedback", "SourceProfile"]

#: Smoothing factor for the per-source latency EWMAs.
EWMA_ALPHA = 0.3

#: Minimum samples before a latency profile is considered trustworthy.
MIN_LATENCY_SAMPLES = 3


@dataclass
class SourceProfile:
    """EWMA latency profile for one wrapper."""

    samples: int = 0
    request_seconds: float = 0.0
    seconds_per_row: float = 0.0

    def observe(self, fetch_seconds: float, rows: int) -> None:
        per_row = fetch_seconds / rows if rows > 0 else 0.0
        if self.samples == 0:
            self.request_seconds = fetch_seconds
            self.seconds_per_row = per_row
        else:
            self.request_seconds += EWMA_ALPHA * (fetch_seconds - self.request_seconds)
            self.seconds_per_row += EWMA_ALPHA * (per_row - self.seconds_per_row)
        self.samples += 1


@dataclass
class _Observation:
    rows: int
    samples: int = 1


class CardinalityFeedback:
    """Bounded, thread-safe registry of runtime optimizer observations."""

    def __init__(self, capacity: int = 512, replan_ratio: float = 2.0,
                 replan_min_rows: int = 256) -> None:
        if capacity < 1:
            raise ValueError("feedback capacity must be at least 1")
        self.capacity = capacity
        self.replan_ratio = max(1.0, float(replan_ratio))
        self.replan_min_rows = max(0, int(replan_min_rows))
        self._lock = threading.Lock()
        self._requests: "OrderedDict[tuple, _Observation]" = OrderedDict()
        self._joins: "OrderedDict[str, _Observation]" = OrderedDict()
        self._sources: Dict[str, SourceProfile] = {}
        self.epoch = 0
        self.observations = 0
        self.epoch_bumps = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, relation: str, fingerprint: str, observed_rows: int,
                       planned_rows: Optional[int] = None) -> None:
        """Record the observed row count of one distinct source request."""
        key = (relation.lower(), fingerprint)
        with self._lock:
            entry = self._requests.get(key)
            if entry is None:
                self._requests[key] = _Observation(rows=int(observed_rows))
            else:
                entry.rows = int(observed_rows)
                entry.samples += 1
                self._requests.move_to_end(key)
            while len(self._requests) > self.capacity:
                self._requests.popitem(last=False)
            self.observations += 1
            self._maybe_bump(observed_rows, planned_rows)

    def record_join(self, fingerprint: str, observed_rows: int,
                    planned_rows: Optional[int] = None) -> None:
        """Record the observed cardinality of one join prefix."""
        if not fingerprint:
            return
        with self._lock:
            entry = self._joins.get(fingerprint)
            if entry is None:
                self._joins[fingerprint] = _Observation(rows=int(observed_rows))
            else:
                entry.rows = int(observed_rows)
                entry.samples += 1
                self._joins.move_to_end(fingerprint)
            while len(self._joins) > self.capacity:
                self._joins.popitem(last=False)
            self.observations += 1
            self._maybe_bump(observed_rows, planned_rows)

    def record_source(self, wrapper_name: str, fetch_seconds: float, rows: int) -> None:
        """Fold one round trip into the wrapper's latency profile."""
        if fetch_seconds < 0:
            return
        name = wrapper_name.lower()
        with self._lock:
            profile = self._sources.get(name)
            if profile is None:
                profile = self._sources[name] = SourceProfile()
            profile.observe(fetch_seconds, rows)

    def _maybe_bump(self, observed: int, planned: Optional[int]) -> None:
        """Advance the epoch only on a material estimation error.

        Caller must hold the lock.  Both an absolute floor and a ratio must
        be exceeded: the floor keeps tiny (demo/bench) workloads from ever
        re-planning, the ratio keeps large-but-accurate estimates stable.
        """
        if planned is None:
            return
        error = abs(int(observed) - int(planned))
        if error < self.replan_min_rows:
            return
        low, high = sorted((max(int(observed), 1), max(int(planned), 1)))
        if high / low < self.replan_ratio:
            return
        self.epoch += 1
        self.epoch_bumps += 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def request_rows(self, relation: str, fingerprint: str = "") -> Optional[int]:
        with self._lock:
            entry = self._requests.get((relation.lower(), fingerprint))
            return entry.rows if entry is not None else None

    def join_rows(self, fingerprint: str) -> Optional[int]:
        with self._lock:
            entry = self._joins.get(fingerprint)
            return entry.rows if entry is not None else None

    def source_profile(self, wrapper_name: str) -> Optional[SourceProfile]:
        with self._lock:
            profile = self._sources.get(wrapper_name.lower())
            if profile is None or profile.samples < MIN_LATENCY_SAMPLES:
                return None
            return profile

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all observations (catalog generation bumped).

        The epoch is *not* reset: it participates in plan-cache keys and
        must stay monotonic for the lifetime of the catalog.
        """
        with self._lock:
            self._requests.clear()
            self._joins.clear()
            self._sources.clear()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "epoch": self.epoch,
                "epoch_bumps": self.epoch_bumps,
                "observations": self.observations,
                "request_entries": len(self._requests),
                "join_entries": len(self._joins),
                "source_profiles": len(self._sources),
            }

    def bind_metrics(self, registry) -> None:
        """Expose this registry's counters through a metrics registry.

        The series are *function-backed*: evaluated against the (already
        lock-guarded) fields at scrape time, so the recording hot path pays
        nothing for being observable.
        """
        registry.counter(
            "feedback_observations_total",
            "Runtime cardinality observations folded into the feedback store.",
            function=lambda: self.observations,
        )
        registry.counter(
            "feedback_epoch_bumps_total",
            "Material estimation errors that invalidated cached plans.",
            function=lambda: self.epoch_bumps,
        )
        registry.gauge(
            "feedback_epoch",
            "Current cardinality-feedback epoch (plan-cache key component).",
            function=lambda: self.epoch,
        )
