"""Plan representation for the multi-database access engine.

A :class:`QueryPlan` describes, for each UNION branch of a (mediated) query:

* one :class:`SourceRequest` per table binding — the sub-query pushed down to
  the wrapper serving that binding's relation (or a plain fetch when the
  source cannot evaluate SQL), together with any residual per-binding filters
  the engine must apply locally;
* the order in which the staged intermediates are joined locally and the join
  conditions applied at each step (the engine performs all cross-source joins
  itself, as the paper describes);
* the final SELECT evaluation (projection, aggregation, ordering) which the
  executor delegates to the local SQL processor.

Plans are pure descriptions: building one never touches a source.  The
executor (:mod:`repro.engine.executor`) interprets them; ``explain()`` renders
them for humans and for the planner benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.cost import CostEstimate
from repro.sql.ast import ColumnRef, Node, Select, Statement
from repro.sql.printer import to_sql


@dataclass(frozen=True)
class BindJoinSpec:
    """Fetch this request as a bind join: ship the driver's key set.

    Instead of fetching the whole (filtered) relation and joining locally,
    the executor first stages the *driver* request, collects the distinct
    values of ``driver_columns`` from it, and fetches this relation with
    batched ``IN``-list predicates over ``bound_columns``.  The fetched rows
    are a superset of what the equi join keeps (per-column ``IN`` lists are
    independent), so the local HashJoin stays in place as the oracle.
    """

    #: Index (within the branch's request list) of the already-staged request
    #: whose column values bound this fetch.
    driver_index: int
    driver_binding: str
    #: Key columns on the driver side, positionally paired with
    #: ``bound_columns`` on this request's side.
    driver_columns: Tuple[str, ...]
    bound_columns: Tuple[str, ...]
    #: Maximum keys per shipped ``IN`` list (first key column is chunked).
    batch_size: int
    estimated_keys: int = 0
    #: What the planner expected an unbound fetch to transfer — the baseline
    #: for the report's ``bind_rows_avoided`` accounting.
    estimated_unbound_rows: int = 0

    def describe(self) -> str:
        keys = ", ".join(self.bound_columns)
        return (f"bind join on ({keys}) from {self.driver_binding} "
                f"[~{self.estimated_keys} keys, batch {self.batch_size}]")


@dataclass
class SourceRequest:
    """What the engine asks one wrapper for, on behalf of one table binding."""

    binding: str
    relation: str
    wrapper_name: str
    #: The pushed-down sub-query; None means "fetch the whole relation".
    sql: Optional[Select]
    #: Single-binding conjuncts the source could not evaluate; the executor
    #: applies them right after staging the result.
    local_filters: Tuple[Node, ...] = ()
    #: Conjuncts that were pushed into ``sql`` (kept for explain/ablation).
    pushed_conjuncts: Tuple[Node, ...] = ()
    #: Columns requested from the source (None = all columns).
    projected_columns: Optional[Tuple[str, ...]] = None
    estimated_base_rows: int = 0
    estimated_result_rows: int = 0
    cost: CostEstimate = field(default_factory=CostEstimate)
    #: Canonical fingerprint of the pushed predicate ("" when unfiltered) —
    #: the key under which runtime feedback records observed row counts.
    predicate_fingerprint: str = ""
    #: Where ``estimated_result_rows`` came from: "feedback" or "default".
    estimate_source: str = "default"
    #: Last observed row count for this (relation, predicate) shape, when
    #: runtime feedback had one at plan time.
    observed_rows: Optional[int] = None
    #: When set, the executor fetches this request as a bind join instead of
    #: dispatching ``sql`` as-is.
    bind: Optional[BindJoinSpec] = None
    #: True only on the synthetic per-batch requests the executor derives
    #: from a bound request; they carry IN-list key sets and must not feed
    #: cardinality feedback or catalog estimates.
    bind_batch: bool = False

    @cached_property
    def request_text(self) -> str:
        """The request as sent to the wrapper: rendered SQL or a FETCH.

        This string is also the canonical form the scheduler deduplicates and
        caches on (see :mod:`repro.engine.request_cache`): two branches whose
        requests render identically share one source round trip.  Cached
        because the scheduler consults it several times per execution and the
        planner never mutates a request after building it.
        """
        if self.sql is not None:
            return to_sql(self.sql)
        return f"FETCH {self.relation}"

    def describe(self) -> str:
        parts = [f"{self.wrapper_name}: {self.request_text}"]
        if self.bind is not None:
            parts.append(f"via {self.bind.describe()}")
        if self.local_filters:
            filters = " AND ".join(to_sql(node) for node in self.local_filters)
            parts.append(f"then filter locally: {filters}")
        estimate = f"(~{self.estimated_result_rows} rows, est={self.estimate_source}"
        if self.observed_rows is not None:
            estimate += f", observed {self.observed_rows}"
        parts.append(estimate + ")")
        return " ".join(parts)


@dataclass
class JoinStep:
    """Joining the next staged intermediate into the running result."""

    request_index: int
    conditions: Tuple[Node, ...] = ()
    #: True when at least one condition is a simple equi-join usable by a hash join.
    hash_join: bool = False
    #: Equi-join conjuncts extracted at plan time, oriented as (key over the
    #: already-joined intermediate, key over this step's staged relation).
    #: Together they form the composite hash key; ``residual_conditions`` are
    #: the remaining conjuncts, evaluated on each key-matched pair.
    equi_keys: Tuple[Tuple[ColumnRef, ColumnRef], ...] = ()
    residual_conditions: Tuple[Node, ...] = ()
    estimated_rows: int = 0
    cost: CostEstimate = field(default_factory=CostEstimate)
    #: Order-insensitive fingerprint of the joined (relation, predicate) set
    #: up to and including this step — the runtime-feedback key under which
    #: the executor records the observed intermediate cardinality.
    feedback_key: str = ""
    #: Where ``estimated_rows`` came from: "feedback" or "default".
    estimate_source: str = "default"

    def describe(self, requests: Sequence[SourceRequest]) -> str:
        binding = requests[self.request_index].binding
        method = "hash join" if self.hash_join else "nested-loop join"
        estimate = f"(~{self.estimated_rows} rows, est={self.estimate_source})"
        if self.hash_join and self.equi_keys:
            keys = " AND ".join(
                f"{to_sql(left)} = {to_sql(right)}" for left, right in self.equi_keys
            )
            text = f"{method} {binding} ON {keys}"
            if self.residual_conditions:
                residual = " AND ".join(to_sql(node) for node in self.residual_conditions)
                text += f" residual {residual}"
            return f"{text} {estimate}"
        if self.conditions:
            condition_text = " AND ".join(to_sql(node) for node in self.conditions)
            return f"{method} {binding} ON {condition_text} {estimate}"
        return f"cartesian product with {binding} {estimate}"


@dataclass
class BranchPlan:
    """The plan of one SELECT branch."""

    select: Select
    requests: List[SourceRequest]
    #: Index of the request the local pipeline starts from.
    initial_request: int
    join_steps: List[JoinStep]
    #: Conditions that could not be attached to any join step (evaluated last).
    post_join_conditions: Tuple[Node, ...] = ()
    #: Safe upper bound on rows this branch can contribute (LIMIT + OFFSET of
    #: a branch whose limit provably commutes with finalization).  The
    #: streaming executor turns it into a bounded top-k Sort, and when the
    #: branch is a single pushable request the planner also pushes it into
    #: the request SQL so the source ships only the needed prefix.
    fetch_limit: Optional[int] = None
    estimated_rows: int = 0
    cost: CostEstimate = field(default_factory=CostEstimate)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}branch: {to_sql(self.select)}"]
        lines.append(f"{pad}  source requests:")
        for index, request in enumerate(self.requests):
            marker = "*" if index == self.initial_request else "-"
            lines.append(f"{pad}    {marker} {request.describe()}")
        if self.join_steps:
            lines.append(f"{pad}  local joins:")
            for step in self.join_steps:
                lines.append(f"{pad}    - {step.describe(self.requests)}")
        if self.post_join_conditions:
            residual = " AND ".join(to_sql(node) for node in self.post_join_conditions)
            lines.append(f"{pad}  residual filter: {residual}")
        if self.fetch_limit is not None:
            lines.append(f"{pad}  fetch limit: {self.fetch_limit}")
        lines.append(
            f"{pad}  estimated rows: {self.estimated_rows}, cost: {self.cost.snapshot()}"
        )
        return "\n".join(lines)


@dataclass
class QueryPlan:
    """The complete plan of a (possibly UNION) statement."""

    statement: Statement
    branches: List[BranchPlan]
    union_all: bool = False
    cost: CostEstimate = field(default_factory=CostEstimate)
    #: How many branch requests were recognized at plan time as identical to a
    #: request of an earlier branch (common subplans of the mediated UNION)
    #: and share one :class:`SourceRequest` object with it.
    shared_requests: int = 0
    #: The feedback epoch the plan was priced under (plan-cache keys include
    #: it, so a materially-wrong estimate retires the cached plan).
    feedback_epoch: int = 0

    @property
    def request_count(self) -> int:
        return sum(len(branch.requests) for branch in self.branches)

    @property
    def estimated_rows(self) -> int:
        return sum(branch.estimated_rows for branch in self.branches)

    def signature(self) -> Tuple:
        """Plan shape for change detection: join orders and bind decisions."""
        branches = []
        for branch in self.branches:
            order = tuple(
                [branch.requests[branch.initial_request].binding.lower()]
                + [branch.requests[step.request_index].binding.lower()
                   for step in branch.join_steps]
            )
            bound = tuple(sorted(
                request.binding.lower()
                for request in branch.requests if request.bind is not None
            ))
            branches.append((order, bound))
        return tuple(branches)

    def explain(self) -> str:
        lines = [f"query plan ({len(self.branches)} branch(es), "
                 f"estimated cost {round(self.cost.total, 2)}, "
                 f"feedback epoch {self.feedback_epoch}):"]
        for index, branch in enumerate(self.branches, start=1):
            lines.append(f"[branch {index}]")
            lines.append(branch.explain(indent=1))
        return "\n".join(lines)
