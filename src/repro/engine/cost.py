"""Cost model for planning multi-source queries.

"Planning and optimizing the multi-source queries taking into account the
sources capabilities as well as the execution and communication costs."

Costs are abstract units.  Three components are modelled:

* **source execution** — the work a source does to answer a pushed-down
  sub-query: per-query overhead plus a per-row scan charge over the base
  relation(s);
* **communication** — a per-row transfer charge on every row shipped from a
  source to the engine;
* **local execution** — the engine's own work: joins over staged intermediate
  results, residual filters and final projection, charged per tuple examined
  or produced.

Cardinalities start from textbook default selectivities, but when the catalog
carries runtime feedback (:mod:`repro.engine.feedback`) the model consults the
observed row counts first — per ``(relation, predicate fingerprint)`` for
source requests, per join-set fingerprint for intermediates, and per wrapper
for latency-derived transfer costs — falling back to the defaults only when
nothing has been observed yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sources.base import SourceCapabilities

#: Default selectivity of one selection conjunct.
SELECTION_SELECTIVITY = 1.0 / 3.0
#: Default selectivity of an equi-join predicate.
EQUI_JOIN_SELECTIVITY = 1.0 / 10.0
#: Cost charged per tuple examined by a local operator.
LOCAL_TUPLE_COST = 0.01
#: Cost charged per tuple written to / read from temporary storage.
TEMP_TUPLE_COST = 0.005
#: Conversion between observed wall-clock seconds and abstract cost units,
#: used when a wrapper's latency profile overrides its static cost knobs.
COST_UNITS_PER_SECOND = 100.0


@dataclass
class CostEstimate:
    """A decomposed cost figure; ``total`` is what the planner compares."""

    source_execution: float = 0.0
    communication: float = 0.0
    local_execution: float = 0.0

    @property
    def total(self) -> float:
        return self.source_execution + self.communication + self.local_execution

    def add(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            source_execution=self.source_execution + other.source_execution,
            communication=self.communication + other.communication,
            local_execution=self.local_execution + other.local_execution,
        )

    def snapshot(self) -> Dict[str, float]:
        return {
            "source_execution": round(self.source_execution, 4),
            "communication": round(self.communication, 4),
            "local_execution": round(self.local_execution, 4),
            "total": round(self.total, 4),
        }


class CostModel:
    """Estimates cardinalities and costs for the planner."""

    def __init__(self, selection_selectivity: float = SELECTION_SELECTIVITY,
                 join_selectivity: float = EQUI_JOIN_SELECTIVITY,
                 local_tuple_cost: float = LOCAL_TUPLE_COST,
                 temp_tuple_cost: float = TEMP_TUPLE_COST,
                 feedback=None):
        self.selection_selectivity = selection_selectivity
        self.join_selectivity = join_selectivity
        self.local_tuple_cost = local_tuple_cost
        self.temp_tuple_cost = temp_tuple_cost
        #: Optional :class:`~repro.engine.feedback.CardinalityFeedback`;
        #: wired to the catalog's registry by the engine/planner.
        self.feedback = feedback

    # -- cardinalities -----------------------------------------------------------

    def selection_cardinality(self, base_rows: int, conjunct_count: int) -> int:
        """Estimated rows surviving ``conjunct_count`` pushed selection conjuncts."""
        estimate = float(max(base_rows, 0))
        for _ in range(conjunct_count):
            estimate *= self.selection_selectivity
        return max(int(round(estimate)), 1) if base_rows > 0 else 0

    def join_cardinality(self, left_rows: int, right_rows: int,
                         has_equi_join: Union[bool, int] = False,
                         equi_keys: Optional[int] = None) -> int:
        """Estimated size of a (possibly cartesian) join of two intermediates.

        ``equi_keys`` is the number of equi-join key pairs; the join
        selectivity is applied once *per key*, so a composite two-column key
        no longer over-estimates by treating the pair as a single predicate.
        ``has_equi_join`` is the legacy boolean form (one key when true).
        """
        keys = equi_keys if equi_keys is not None else int(bool(has_equi_join))
        product = float(max(left_rows, 0) * max(right_rows, 0))
        for _ in range(max(keys, 0)):
            product *= self.join_selectivity
        return max(int(round(product)), 1) if left_rows and right_rows else 0

    def request_cardinality(self, relation: str, base_rows: int, conjunct_count: int,
                            fingerprint: str = "") -> Tuple[int, str]:
        """Estimated result rows of one source request, with provenance.

        Returns ``(rows, source)`` where ``source`` is ``"feedback"`` when a
        runtime observation for the same (relation, predicate fingerprint)
        exists, ``"default"`` otherwise.
        """
        if self.feedback is not None:
            observed = self.feedback.request_rows(relation, fingerprint)
            if observed is not None:
                return max(int(observed), 0), "feedback"
        return self.selection_cardinality(base_rows, conjunct_count), "default"

    def join_rows_estimate(self, feedback_key: str, left_rows: int, right_rows: int,
                           equi_key_count: int, has_conditions: bool) -> Tuple[int, str]:
        """Estimated join-output rows, consulting feedback first."""
        if self.feedback is not None and feedback_key:
            observed = self.feedback.join_rows(feedback_key)
            if observed is not None:
                return max(int(observed), 0), "feedback"
        predicates = max(equi_key_count, 1 if has_conditions else 0)
        return self.join_cardinality(left_rows, right_rows, equi_keys=predicates), "default"

    # -- per-phase costs ------------------------------------------------------------

    def source_query_cost(self, capabilities: SourceCapabilities, base_rows: int,
                          result_rows: int, wrapper_name: Optional[str] = None) -> CostEstimate:
        """Cost of one pushed-down sub-query against one source.

        When a latency profile has been observed for ``wrapper_name`` (at
        least three round trips), the measured per-request and per-row
        seconds override the static cost knobs wherever they are *worse* —
        a source that proved slow is priced as slow.
        """
        overhead = capabilities.query_overhead
        transfer = capabilities.transfer_cost_per_row
        if self.feedback is not None and wrapper_name:
            profile = self.feedback.source_profile(wrapper_name)
            if profile is not None:
                overhead = max(overhead, profile.request_seconds * COST_UNITS_PER_SECOND)
                transfer = max(transfer, profile.seconds_per_row * COST_UNITS_PER_SECOND)
        execution = overhead + capabilities.scan_cost_per_row * max(base_rows, 0)
        communication = transfer * max(result_rows, 0)
        return CostEstimate(source_execution=execution, communication=communication)

    def local_join_cost(self, left_rows: int, right_rows: int, hash_join: bool) -> CostEstimate:
        """Cost of joining two staged intermediates at the engine."""
        if hash_join:
            examined = max(left_rows, 0) + max(right_rows, 0)
        else:
            examined = max(left_rows, 0) * max(right_rows, 0)
        return CostEstimate(local_execution=examined * self.local_tuple_cost)

    def local_scan_cost(self, rows: int) -> CostEstimate:
        """Cost of one local pass over ``rows`` tuples (filter, project, sort...)."""
        return CostEstimate(local_execution=max(rows, 0) * self.local_tuple_cost)

    def staging_cost(self, rows: int) -> CostEstimate:
        """Cost of spooling an intermediate result into temporary storage."""
        return CostEstimate(local_execution=max(rows, 0) * self.temp_tuple_cost)
