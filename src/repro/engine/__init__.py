"""The multi-database access engine: catalog, planner, executor.

The engine sits between the mediation engine and the wrappers (Figure 1 of
the paper): it serves dictionary information, plans and optimizes multi-source
queries under source capabilities and execution/communication costs, and
controls execution — issuing per-source sub-queries and performing the
cross-source joins locally with temporary storage.
"""

from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.cost import CostEstimate, CostModel
from repro.engine.plan import BranchPlan, JoinStep, QueryPlan, SourceRequest
from repro.engine.planner import PlannerConfig, QueryPlanner
from repro.engine.executor import (
    EngineResult,
    ExecutionController,
    ExecutionReport,
    RequestExecution,
)
from repro.engine.engine import EngineStatistics, MultiDatabaseEngine

__all__ = [
    "Catalog",
    "CatalogEntry",
    "CostEstimate",
    "CostModel",
    "BranchPlan",
    "JoinStep",
    "QueryPlan",
    "SourceRequest",
    "PlannerConfig",
    "QueryPlanner",
    "EngineResult",
    "ExecutionController",
    "ExecutionReport",
    "RequestExecution",
    "EngineStatistics",
    "MultiDatabaseEngine",
]
