"""A bounded, versioned cache for compiled query-lifecycle artifacts.

Mediation and planning are compile-once work: for an unchanged catalog and
unchanged context knowledge, the same receiver statement always mediates to
the same branches and plans to the same :class:`~repro.engine.plan.QueryPlan`.
Under the heavy-traffic serving pattern — the same receiver queries arriving
over and over — re-paying conflict detection, abduction and planning per call
is pure overhead, so the query pipeline (:mod:`repro.pipeline`) memoizes both
stages here.

:class:`PlanCacheKey` is the canonical identity of one cached pipeline
product: the statement's AST fingerprint (:mod:`repro.sql.normalize`), the
receiver context it was mediated for, whether mediation ran at all, and the
**generation counters** of the two knowledge stores a cached artifact could
otherwise read stale:

* ``catalog_generation`` — bumped by the catalog on wrapper/relation
  (re)registration and by the engine on source invalidation;
* ``knowledge_generation`` — the :class:`~repro.coin.system.CoinSystem`
  roll-up of domain model, contexts, elevations and conversions.

Because the generations are part of the *key*, invalidation needs no
callbacks: any dictionary or knowledge change makes every previously cached
entry unreachable, and the LRU bound retires it.  :meth:`PlanCache.prune`
exists for housekeeping (dropping unreachable generations eagerly).

:class:`PlanCache` itself is value-agnostic — the pipeline stores
``MediatedPlan`` objects in one instance and ``MediationResult`` objects in
another — and thread-safe, matching the server's concurrent sessions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional


@dataclass(frozen=True)
class PlanCacheKey:
    """The canonical identity of one cached mediation/planning product."""

    fingerprint: str
    receiver_context: str
    mediate: bool
    catalog_generation: int
    knowledge_generation: int
    #: Cardinality-feedback epoch the artifact was priced under.  Advances
    #: only on *material* estimation errors (see
    #: :mod:`repro.engine.feedback`), so refined estimates reach cached and
    #: prepared statements without churning warm plans for small workloads.
    #: Mediation products don't price anything and keep the default.
    feedback_epoch: int = 0


@dataclass
class PlanCacheStatistics:
    """Counters describing one cache instance's traffic."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class PlanCache:
    """Bounded LRU of pipeline artifacts keyed by :class:`PlanCacheKey`.

    Generic over values on purpose: the pipeline keeps one instance for
    fully-planned ``MediatedPlan`` objects and one for bare mediation
    results.  All operations are O(1) except :meth:`prune`/:meth:`clear`,
    which walk the (bounded) key set.
    """

    def __init__(self, capacity: int = 128):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.statistics = PlanCacheStatistics()

    # -- access -----------------------------------------------------------------

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.statistics.misses += 1
                return None
            self._entries.move_to_end(key)
            self.statistics.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.statistics.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1

    # -- invalidation --------------------------------------------------------------

    def prune(self, catalog_generation: Optional[int] = None,
              knowledge_generation: Optional[int] = None,
              feedback_epoch: Optional[int] = None) -> int:
        """Drop entries whose generations no longer match the live counters.

        Stale entries are already unreachable (the generations are part of
        the key); pruning just frees their slots eagerly.  Returns the number
        of dropped entries.
        """
        with self._lock:
            doomed = [
                key for key in self._entries
                if isinstance(key, PlanCacheKey) and (
                    (catalog_generation is not None
                     and key.catalog_generation != catalog_generation)
                    or (knowledge_generation is not None
                        and key.knowledge_generation != knowledge_generation)
                    or (feedback_epoch is not None
                        and key.feedback_epoch != feedback_epoch)
                )
            ]
            for key in doomed:
                del self._entries[key]
            self.statistics.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of dropped entries."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.statistics.invalidations += count
            return count

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def snapshot(self) -> Dict[str, int]:
        data = self.statistics.snapshot()
        data["entries"] = len(self)
        data["capacity"] = self.capacity
        return data
