"""Planning and optimization of multi-source queries.

The planner decomposes each SELECT branch of a (mediated) statement into

* per-binding **source requests** — pushing selections and projections down to
  each source as far as its capabilities allow, and
* a **local join pipeline** — a cost-ordered sequence of joins over the
  staged source results, with the remaining (cross-source) conditions
  attached to the steps that can evaluate them.

Join orders are chosen adaptively: cardinalities come from the cost model,
which consults runtime feedback (observed rows per (relation, predicate)
shape and per join set — :mod:`repro.engine.feedback`) before textbook
defaults.  Small branches run a left-deep dynamic program over the equi-join
graph and keep its order only when it beats the greedy baseline; larger
branches stay greedy.  ``join_order="syntax"`` (FROM-clause order) and
``"worst"`` (cost-maximizing) exist as baselines for benchmarks and the
equivalence test suite.

When the chosen order makes a staged intermediate small, the planner can
convert a later request into a **bind join** (:class:`BindJoinSpec`): the
executor ships the driver's observed key set as batched ``IN`` lists instead
of fetching the whole relation.

Two switches drive the ablation benchmarks: ``push_selections`` and
``push_projections`` can be disabled to measure how much capability-aware
push-down saves compared to fetching whole relations and doing everything
locally.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanningError
from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.cost import CostEstimate, CostModel
from repro.engine.plan import BindJoinSpec, BranchPlan, JoinStep, QueryPlan, SourceRequest
from repro.sql.printer import to_sql
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Join,
    Node,
    Select,
    SelectItem,
    Star,
    Statement,
    Subquery,
    TableRef,
    Union,
    column_refs,
    conjoin,
    conjuncts,
    is_aggregate_call,
    walk,
)
from repro.sql.parser import DerivedTable


@dataclass
class PlannerConfig:
    """Tunable planner behaviour (ablation switches included)."""

    push_selections: bool = True
    push_projections: bool = True
    prefer_hash_joins: bool = True
    max_branch_tables: int = 12
    #: Push safe LIMIT/OFFSET bounds into branch plans (top-k sorts) and, when
    #: a branch is a single fully-pushed request, into the request SQL itself.
    push_fetch_limits: bool = True
    #: Join-order strategy: "auto" (DP up to ``dp_join_threshold`` relations,
    #: greedy beyond), "dp", "greedy", "syntax" (FROM-clause order, the
    #: baseline) or "worst" (cost-maximizing, for equivalence tests).
    join_order: str = "auto"
    dp_join_threshold: int = 8
    #: Allow converting requests into bind joins (batched IN-list key sets).
    bind_joins: bool = True
    #: Never bind when the driver's estimated key set exceeds this.
    bind_join_max_keys: int = 1000
    #: Keys per shipped IN list (the first key column is chunked).
    bind_join_batch_size: int = 200
    #: Never bind a relation estimated below this — tiny fetches aren't
    #: worth the extra round-trip bookkeeping (and demo workloads stay put).
    bind_join_min_rows: int = 200
    #: Required estimated transfer reduction (unbound rows / bound rows).
    bind_join_min_reduction: float = 5.0


class QueryPlanner:
    """Builds :class:`QueryPlan` objects from statements and catalog metadata."""

    def __init__(self, catalog: Catalog, cost_model: Optional[CostModel] = None,
                 config: Optional[PlannerConfig] = None):
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.config = config or PlannerConfig()
        if self.cost_model.feedback is None:
            self.cost_model.feedback = getattr(catalog, "feedback", None)

    # -- public API -------------------------------------------------------------

    def plan(self, statement: Statement) -> QueryPlan:
        """Plan a SELECT or UNION statement."""
        if isinstance(statement, Union):
            return self.plan_branches(statement.selects, union_all=statement.all,
                                      statement=statement)
        if isinstance(statement, Select):
            return self.plan_branches([statement], statement=statement)
        raise PlanningError(
            f"cannot plan statement of type {type(statement).__name__}"
        )

    def plan_branches(self, selects: Sequence[Select], union_all: bool = False,
                      statement: Optional[Statement] = None) -> QueryPlan:
        """Plan each SELECT branch individually and combine with UNION semantics.

        This is the structured entry point the query pipeline uses: the
        mediator already knows the branch boundaries of the mediated UNION,
        so its :class:`~repro.mediation.rewriter.BranchQuery` selects flow in
        directly — no SQL round trip, no re-discovery of branch structure.

        Branches are planned against a shared request pool: when a branch's
        source request is structurally identical to one an earlier branch
        built (same relation, pushed conditions, residual filters and
        projection — the common conversion joins of a mediated UNION), the
        two branches share one :class:`SourceRequest` object.  The executor's
        scheduler then recognizes the shared round trip without re-rendering
        and re-comparing request SQL, and ``plan.shared_requests`` records
        how much of the UNION was common subplans.
        """
        if not selects:
            raise PlanningError("cannot plan a statement with no SELECT branches")
        request_pool: Dict[tuple, SourceRequest] = {}
        shared = [0]
        branches = [
            self._plan_branch(select, request_pool, shared) for select in selects
        ]
        if statement is None:
            if len(selects) == 1:
                statement = selects[0]
            else:
                statement = Union(tuple(selects), all=union_all)
        total = CostEstimate()
        for branch in branches:
            total = total.add(branch.cost)
        feedback = getattr(self.catalog, "feedback", None)
        return QueryPlan(statement=statement, branches=branches, union_all=union_all,
                         cost=total, shared_requests=shared[0],
                         feedback_epoch=feedback.epoch if feedback is not None else 0)

    # -- branch planning ------------------------------------------------------------

    def _plan_branch(self, select: Select,
                     request_pool: Optional[Dict[tuple, SourceRequest]] = None,
                     shared_counter: Optional[List[int]] = None) -> BranchPlan:
        bindings = self._bindings(select)
        if not bindings:
            raise PlanningError("queries without a FROM clause are not executable by the engine")
        if len(bindings) > self.config.max_branch_tables:
            raise PlanningError(
                f"branch references {len(bindings)} tables; the planner limit is "
                f"{self.config.max_branch_tables}"
            )

        join_conditions, per_binding_conditions, constant_conditions = self._classify_conditions(
            select, bindings
        )
        needed_columns = self._needed_columns(select, bindings)

        ordered_bindings = sorted(bindings)
        requests: List[SourceRequest] = []
        request_index: Dict[str, int] = {}
        for binding in ordered_bindings:
            request = self._build_request(
                binding, bindings[binding],
                per_binding_conditions.get(binding, []),
                needed_columns.get(binding, []),
            )
            if request_pool is not None:
                request = self._pool_request(request, request_pool, shared_counter)
            request_index[binding] = len(requests)
            requests.append(request)

        syntax_order: List[str] = []
        for table in select.tables:
            table_binding = table.binding.lower()
            if table_binding not in syntax_order:
                syntax_order.append(table_binding)

        initial_index, join_steps, post_join = self._order_joins(
            requests, request_index, join_conditions, bindings, syntax_order
        )
        post_join = tuple(list(post_join) + constant_conditions)
        if join_steps:
            self._apply_bind_joins(requests, request_index, join_steps, bindings)

        fetch_limit = self._branch_fetch_limit(select)
        if (fetch_limit is not None and len(requests) == 1 and not post_join
                and not requests[0].local_filters and requests[0].sql is not None):
            limited = self._push_fetch_limit(select, requests[0], fetch_limit, bindings)
            if limited is not None:
                if request_pool is not None:
                    # Re-pool under the limited request's identity so other
                    # branches with the same bound still share the round trip
                    # (no shared_counter: this is the same logical request).
                    limited = self._pool_request(limited, request_pool, None)
                requests[0] = limited

        estimated_rows = requests[initial_index].estimated_result_rows
        cost = CostEstimate()
        for request in requests:
            cost = cost.add(request.cost)
            cost = cost.add(self.cost_model.staging_cost(request.estimated_result_rows))
        for step in join_steps:
            cost = cost.add(step.cost)
            estimated_rows = step.estimated_rows
        cost = cost.add(self.cost_model.local_scan_cost(estimated_rows))

        return BranchPlan(
            select=select,
            requests=requests,
            initial_request=initial_index,
            join_steps=join_steps,
            post_join_conditions=post_join,
            fetch_limit=fetch_limit,
            estimated_rows=estimated_rows,
            cost=cost,
        )

    # -- fetch-limit push-down -------------------------------------------------------

    def _branch_fetch_limit(self, select: Select) -> Optional[int]:
        """The branch's safe row bound, or None when LIMIT does not commute.

        A LIMIT commutes with finalization only when no phase after it can
        change the row count: DISTINCT, GROUP BY, HAVING and aggregates all
        disqualify the branch (they collapse rows after the bound would have
        truncated them).
        """
        if not self.config.push_fetch_limits or select.limit is None:
            return None
        if select.distinct or select.group_by or select.having is not None:
            return None
        if any(
            is_aggregate_call(node)
            for item in select.items
            for node in walk(item.expr)
        ):
            return None
        return select.limit + (select.offset or 0)

    def _push_fetch_limit(self, select: Select, request: SourceRequest,
                          fetch_limit: int, bindings: Dict[str, str],
                          ) -> Optional[SourceRequest]:
        """Rebuild a single-request branch's pushed SQL with its row bound.

        Without ORDER BY any ``fetch_limit`` rows satisfy the branch, so the
        bound is always pushable.  With ORDER BY the source must be able to
        sort, and every key must be a plain column of this binding — the
        source then ships exactly the prefix the engine's final (identical)
        sort would keep.  Output-alias and expression keys stay local.
        """
        entry = self.catalog.entry(request.relation)
        capabilities = entry.capabilities
        order_by = request.sql.order_by
        if select.order_by:
            if not capabilities.order_by:
                return None
            table_binding = request.sql.tables[0].binding
            rebuilt = []
            for item in select.order_by:
                expr = item.expr
                if not isinstance(expr, ColumnRef):
                    return None
                try:
                    binding = self._resolve_binding(expr, bindings)
                except PlanningError:
                    # Unqualified name that is an output alias, not a column.
                    return None
                if binding != request.binding.lower():
                    return None
                rebuilt.append(replace(
                    item, expr=ColumnRef(name=expr.name, table=table_binding)
                ))
            order_by = tuple(rebuilt)
        limited_rows = (
            min(request.estimated_result_rows, fetch_limit)
            if request.estimated_result_rows else fetch_limit
        )
        return replace(
            request,
            sql=replace(request.sql, order_by=order_by, limit=fetch_limit),
            estimated_result_rows=limited_rows,
            cost=self.cost_model.source_query_cost(
                capabilities, request.estimated_base_rows, limited_rows
            ),
        )

    @staticmethod
    def _pool_request(request: SourceRequest, pool: Dict[tuple, SourceRequest],
                      shared_counter: Optional[List[int]]) -> SourceRequest:
        """Reuse a structurally identical request built for an earlier branch.

        The AST nodes are frozen dataclasses, so structural equality (and
        hashability) come for free; anything unhashable simply stays
        branch-private.
        """
        key = (
            request.binding.lower(),
            request.relation.lower(),
            request.sql,
            request.local_filters,
            request.projected_columns,
        )
        try:
            pooled = pool.get(key)
        except TypeError:  # pragma: no cover - defensive: unhashable literal
            return request
        if pooled is not None:
            if shared_counter is not None:
                shared_counter[0] += 1
            return pooled
        pool[key] = request
        return request

    # -- FROM analysis ---------------------------------------------------------------

    def _bindings(self, select: Select) -> Dict[str, str]:
        """binding (lower-cased) -> relation name; explicit JOIN syntax is rejected
        here because mediated queries always use comma-joins (plain conjunctive
        conditions), which keeps condition classification uniform."""
        bindings: Dict[str, str] = {}
        for table in select.tables:
            if isinstance(table, TableRef):
                if not self.catalog.has_relation(table.name):
                    raise PlanningError(f"unknown relation {table.name!r}")
                bindings[table.binding.lower()] = table.name
            elif isinstance(table, (Join, DerivedTable)):
                raise PlanningError(
                    "explicit JOIN syntax and derived tables must be normalized away "
                    "before planning (mediated queries use comma-joins)"
                )
            else:  # pragma: no cover - parser produces only the above
                raise PlanningError(f"unsupported FROM item {table!r}")
        return bindings

    # -- condition classification --------------------------------------------------------

    def _classify_conditions(self, select: Select, bindings: Dict[str, str]):
        join_conditions: List[Tuple[Node, Set[str]]] = []
        per_binding: Dict[str, List[Node]] = {}
        constant_conditions: List[Node] = []

        for condition in conjuncts(select.where):
            referenced = self._referenced_bindings(condition, bindings)
            if any(isinstance(node, Subquery) for node in walk(condition)):
                # Subquery conditions are evaluated after all joins.
                join_conditions.append((condition, set(bindings)))
                continue
            if len(referenced) == 0:
                constant_conditions.append(condition)
            elif len(referenced) == 1:
                per_binding.setdefault(next(iter(referenced)), []).append(condition)
            else:
                join_conditions.append((condition, referenced))
        return join_conditions, per_binding, constant_conditions

    def _referenced_bindings(self, condition: Node, bindings: Dict[str, str]) -> Set[str]:
        referenced: Set[str] = set()
        for ref in column_refs(condition):
            binding = self._resolve_binding(ref, bindings)
            if binding is not None:
                referenced.add(binding)
        return referenced

    def _resolve_binding(self, ref: ColumnRef, bindings: Dict[str, str]) -> Optional[str]:
        if ref.table is not None:
            binding = ref.table.lower()
            if binding not in bindings:
                raise PlanningError(f"column {ref.qualified} references unknown table binding")
            return binding
        candidates = [
            binding
            for binding, relation in bindings.items()
            if self.catalog.schema_of(relation).has(ref.name)
        ]
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise PlanningError(f"column {ref.name!r} does not belong to any table in FROM")
        raise PlanningError(f"column {ref.name!r} is ambiguous across {sorted(candidates)}")

    # -- projection analysis ----------------------------------------------------------------

    def _needed_columns(self, select: Select, bindings: Dict[str, str]) -> Dict[str, List[str]]:
        needed: Dict[str, List[str]] = {binding: [] for binding in bindings}
        has_star = any(isinstance(node, Star) for item in select.items for node in walk(item.expr))
        output_aliases = {item.alias.lower() for item in select.items if item.alias}

        def note(ref: ColumnRef) -> None:
            try:
                binding = self._resolve_binding(ref, bindings)
            except PlanningError:
                # References to output aliases (ORDER BY listings, HAVING total...)
                # are resolved during finalization, not against source columns.
                if ref.table is None and ref.name.lower() in output_aliases:
                    return
                raise
            if binding is None:
                return
            columns = needed[binding]
            if ref.name.lower() not in (column.lower() for column in columns):
                columns.append(ref.name)

        for node in walk(select):
            if isinstance(node, ColumnRef):
                note(node)

        for binding, relation in bindings.items():
            schema = self.catalog.schema_of(relation)
            if has_star or not needed[binding]:
                needed[binding] = list(schema.names)
        return needed

    # -- source requests -------------------------------------------------------------------------

    def _build_request(self, binding: str, relation: str, conditions: Sequence[Node],
                       columns: Sequence[str]) -> SourceRequest:
        entry = self.catalog.entry(relation)
        capabilities = entry.capabilities

        pushable: List[Node] = []
        local: List[Node] = []
        for condition in conditions:
            if self.config.push_selections and capabilities.selection and self._condition_pushable(condition, capabilities):
                pushable.append(condition)
            else:
                local.append(condition)

        project = (
            self.config.push_projections
            and capabilities.projection
            and len(columns) < len(entry.schema)
        )
        projected = tuple(columns) if project else None

        sql: Optional[Select] = None
        if pushable or project or capabilities.selection:
            # Build a pushed-down sub-query whenever the source accepts SQL at
            # all; scan-only sources fall through to a plain fetch.
            if capabilities.selection or capabilities.projection:
                sql = self._request_sql(binding, relation, pushable, columns if project else entry.schema.names)

        transferred_conjuncts = len(pushable) if sql is not None else 0
        fingerprint = ""
        if sql is not None and pushable:
            fingerprint = " AND ".join(sorted(to_sql(conjunct) for conjunct in pushable))
        estimated_result, estimate_source = self.cost_model.request_cardinality(
            relation, entry.estimated_rows, transferred_conjuncts, fingerprint
        )
        cost = self.cost_model.source_query_cost(
            capabilities, entry.estimated_rows, estimated_result,
            wrapper_name=entry.wrapper_name,
        )

        return SourceRequest(
            binding=binding,
            relation=relation,
            wrapper_name=entry.wrapper_name,
            sql=sql,
            local_filters=tuple(local),
            pushed_conjuncts=tuple(pushable) if sql is not None else (),
            projected_columns=projected,
            estimated_base_rows=entry.estimated_rows,
            estimated_result_rows=estimated_result,
            cost=cost,
            predicate_fingerprint=fingerprint,
            estimate_source=estimate_source,
            observed_rows=estimated_result if estimate_source == "feedback" else None,
        )

    def _condition_pushable(self, condition: Node, capabilities) -> bool:
        needs_arithmetic = any(
            (isinstance(node, BinaryOp) and node.op in ("+", "-", "*", "/", "%", "||"))
            or isinstance(node, FunctionCall)
            for node in walk(condition)
        )
        if needs_arithmetic and not capabilities.arithmetic:
            return False
        return True

    def _request_sql(self, binding: str, relation: str, pushed: Sequence[Node],
                     columns: Sequence[str]) -> Select:
        alias = binding if binding.lower() != relation.lower() else None
        table_binding = alias or relation
        items = tuple(
            SelectItem(ColumnRef(name=column, table=table_binding)) for column in columns
        )
        return Select(
            items=items,
            tables=(TableRef(name=relation, alias=alias),),
            where=conjoin(list(pushed)),
        )

    # -- join ordering ----------------------------------------------------------------------------

    def _order_joins(self, requests: List[SourceRequest], request_index: Dict[str, int],
                     join_conditions: List[Tuple[Node, Set[str]]],
                     bindings: Dict[str, str],
                     syntax_order: Optional[Sequence[str]] = None):
        pending = [(condition, set(referenced)) for condition, referenced in join_conditions]
        mode = self.config.join_order
        if mode == "auto":
            mode = "dp" if len(requests) <= self.config.dp_join_threshold else "greedy"
        if len(requests) == 1 or mode == "greedy":
            order = self._greedy_order(requests, pending)
        elif mode == "syntax":
            order = [request_index[binding] for binding in (syntax_order or [])
                     if binding in request_index]
            if len(order) != len(requests):
                order = self._greedy_order(requests, pending)
        elif mode in ("dp", "worst"):
            order = self._dp_order(requests, pending, bindings, worst=(mode == "worst"))
        else:
            raise PlanningError(f"unknown join_order mode {self.config.join_order!r}")
        return self._emit_steps(order, requests, pending, bindings)

    def _greedy_order(self, requests: List[SourceRequest],
                      pending: List[Tuple[Node, Set[str]]]) -> List[int]:
        """Smallest-intermediate-first order, preferring connected candidates."""
        remaining = set(range(len(requests)))
        initial = min(remaining, key=lambda index: (requests[index].estimated_result_rows,
                                                    requests[index].binding))
        remaining.remove(initial)
        joined_bindings = {requests[initial].binding.lower()}
        live = [(condition, set(referenced)) for condition, referenced in pending]
        order = [initial]
        while remaining:
            candidate = self._pick_next(requests, remaining, joined_bindings, live)
            remaining.remove(candidate)
            joined_bindings = joined_bindings | {requests[candidate].binding.lower()}
            live = [entry for entry in live if not entry[1] <= joined_bindings]
            order.append(candidate)
        return order

    def _dp_order(self, requests: List[SourceRequest],
                  pending: List[Tuple[Node, Set[str]]],
                  bindings: Dict[str, str], worst: bool = False) -> List[int]:
        """Left-deep dynamic program over the branch's join graph.

        Enumerates subsets (the branch size is bounded by
        ``dp_join_threshold``), extending each by connected candidates only —
        cartesian products are considered only when no candidate connects,
        mirroring the greedy heuristic.  Cardinalities and join costs come
        from the (feedback-aware) cost model.  With ``worst=False`` the DP
        order is kept only when it is *strictly* cheaper than the greedy
        baseline, so uniform-estimate workloads keep their established plans;
        with ``worst=True`` the cost-maximizing order is returned (the
        adversarial baseline of the equivalence tests).
        """
        n = len(requests)
        greedy = self._greedy_order(requests, pending)
        if n <= 1:
            return greedy
        binding_bit = {requests[i].binding.lower(): i for i in range(n)}
        conds: List[Tuple[int, Optional[Tuple[int, int]]]] = []
        for condition, referenced in pending:
            mask = 0
            for referenced_binding in referenced:
                bit = binding_bit.get(referenced_binding)
                if bit is None:
                    mask = -1
                    break
                mask |= 1 << bit
            if mask < 0:
                continue
            equi: Optional[Tuple[int, int]] = None
            parts = self._equi_join_parts(condition)
            if parts is not None:
                left_ref, right_ref = parts
                try:
                    left_binding = self._resolve_binding(left_ref, bindings)
                    right_binding = self._resolve_binding(right_ref, bindings)
                except PlanningError:
                    left_binding = right_binding = None
                if (left_binding in binding_bit and right_binding in binding_bit
                        and self._hash_safe_key(left_ref, left_binding, bindings)
                        and self._hash_safe_key(right_ref, right_binding, bindings)):
                    equi = (binding_bit[left_binding], binding_bit[right_binding])
            conds.append((mask, equi))
        items = [self._feedback_item(request) for request in requests]

        def transition(mask: int, rows: int, candidate: int):
            new_mask = mask | (1 << candidate)
            applicable = [entry for entry in conds
                          if entry[0] & (1 << candidate) and entry[0] & ~new_mask == 0]
            equi_count = sum(
                1 for _mask, equi in applicable
                if equi is not None and (
                    (equi[0] == candidate and (mask >> equi[1]) & 1)
                    or (equi[1] == candidate and (mask >> equi[0]) & 1))
            )
            hash_join = self.config.prefer_hash_joins and equi_count > 0
            step_cost = self.cost_model.local_join_cost(
                rows, requests[candidate].estimated_result_rows, hash_join
            ).total
            key = self._join_fingerprint(
                [items[i] for i in range(n) if (new_mask >> i) & 1]
            )
            new_rows, _source = self.cost_model.join_rows_estimate(
                key, rows, requests[candidate].estimated_result_rows,
                equi_count, bool(applicable),
            )
            return new_mask, new_rows, step_cost, bool(applicable)

        # mask -> (accumulated cost, estimated rows, left-deep order)
        best: Dict[int, Tuple[float, int, Tuple[int, ...]]] = {}
        for i in range(n):
            best[1 << i] = (0.0, requests[i].estimated_result_rows, (i,))
        full = (1 << n) - 1
        better = (lambda a, b: a > b) if worst else (lambda a, b: a < b)
        for mask in range(1, full):
            state = best.get(mask)
            if state is None:
                continue
            cost, rows, order = state
            moves = [transition(mask, rows, candidate)
                     for candidate in range(n) if not (mask >> candidate) & 1]
            connected = [move for move in moves if move[3]]
            for new_mask, new_rows, step_cost, _connects in (connected or moves):
                total = cost + step_cost
                existing = best.get(new_mask)
                if existing is None or better(total, existing[0]):
                    candidate = (new_mask ^ mask).bit_length() - 1
                    best[new_mask] = (total, new_rows, order + (candidate,))
        final = best.get(full)
        if final is None:  # pragma: no cover - every relation is reachable
            return greedy
        dp_cost, _rows, dp_order = final
        if worst:
            return list(dp_order)

        # Keep the greedy baseline unless the DP order is strictly cheaper:
        # uniform estimates then keep their established (tested) plans.
        greedy_cost = 0.0
        mask = 1 << greedy[0]
        rows = requests[greedy[0]].estimated_result_rows
        for candidate in greedy[1:]:
            mask, rows, step_cost, _connects = transition(mask, rows, candidate)
            greedy_cost += step_cost
        return list(dp_order) if dp_cost < greedy_cost - 1e-9 else greedy

    def _emit_steps(self, order: Sequence[int], requests: List[SourceRequest],
                    pending: List[Tuple[Node, Set[str]]], bindings: Dict[str, str]):
        """Materialize the join steps of a fixed left-deep order."""
        initial = order[0]
        pending = [(condition, set(referenced)) for condition, referenced in pending]
        joined_bindings = {requests[initial].binding.lower()}
        current_rows = requests[initial].estimated_result_rows
        prefix_items = [self._feedback_item(requests[initial])]

        steps: List[JoinStep] = []
        for candidate in order[1:]:
            candidate_binding = requests[candidate].binding.lower()
            new_bindings = joined_bindings | {candidate_binding}

            applicable = [
                (condition, referenced)
                for condition, referenced in pending
                if referenced <= new_bindings
            ]
            pending = [entry for entry in pending if entry not in applicable]
            conditions = tuple(condition for condition, _referenced in applicable)

            equi_keys, residual = self._split_equi_conditions(
                conditions, joined_bindings, candidate_binding, bindings
            )
            hash_join = self.config.prefer_hash_joins and bool(equi_keys)
            if not hash_join:
                equi_keys, residual = (), conditions
            prefix_items.append(self._feedback_item(requests[candidate]))
            feedback_key = self._join_fingerprint(prefix_items)
            estimated, estimate_source = self.cost_model.join_rows_estimate(
                feedback_key, current_rows, requests[candidate].estimated_result_rows,
                len(equi_keys), bool(conditions),
            )
            cost = self.cost_model.local_join_cost(
                current_rows, requests[candidate].estimated_result_rows, hash_join
            )
            steps.append(JoinStep(
                request_index=candidate,
                conditions=conditions,
                hash_join=hash_join,
                equi_keys=equi_keys,
                residual_conditions=residual,
                estimated_rows=estimated,
                cost=cost,
                feedback_key=feedback_key,
                estimate_source=estimate_source,
            ))
            joined_bindings = new_bindings
            current_rows = estimated

        post_join = tuple(condition for condition, _referenced in pending)
        return initial, steps, post_join

    @staticmethod
    def _feedback_item(request: SourceRequest) -> str:
        return f"{request.relation.lower()}|{request.predicate_fingerprint}"

    @staticmethod
    def _join_fingerprint(items: Sequence[str]) -> str:
        """Order-insensitive digest of a joined (relation, predicate) set.

        The output cardinality of joining a set of filtered relations does
        not depend on the join order, so the fingerprint sorts the items —
        feedback recorded under one order prices every order of the same set.
        """
        digest = hashlib.sha256("&&".join(sorted(items)).encode("utf-8"))
        return digest.hexdigest()[:16]

    # -- bind joins --------------------------------------------------------------------------------

    def _apply_bind_joins(self, requests: List[SourceRequest],
                          request_index: Dict[str, int],
                          join_steps: List[JoinStep],
                          bindings: Dict[str, str]) -> int:
        """Convert profitable requests into bind joins, in join order.

        A step's staged request qualifies when the source accepts pushed
        selections, every equi key's intermediate side resolves to one
        already-staged *driver* binding, the driver's estimated key set is
        small, and skipping the unbound fetch saves at least
        ``bind_join_min_reduction`` in estimated transferred rows.  Drivers
        may themselves be bound (the chain follows join order, so it is
        acyclic).  The local HashJoin stays in place: the bound fetch is a
        superset of the rows the join keeps.
        """
        config = self.config
        if not (config.bind_joins and config.push_selections):
            return 0
        applied = 0
        for step in join_steps:
            request = requests[step.request_index]
            if (request.bind is not None or request.sql is None
                    or request.sql.limit is not None
                    or not step.hash_join or not step.equi_keys):
                continue
            entry = self.catalog.entry(request.relation)
            if not entry.capabilities.selection:
                continue
            driver_bindings: Set[str] = set()
            resolvable = True
            for intermediate_ref, _staged_ref in step.equi_keys:
                try:
                    driver_binding = self._resolve_binding(intermediate_ref, bindings)
                except PlanningError:
                    resolvable = False
                    break
                if driver_binding is None:
                    resolvable = False
                    break
                driver_bindings.add(driver_binding)
            if not resolvable or len(driver_bindings) != 1:
                continue
            driver_binding = next(iter(driver_bindings))
            driver_request = requests[request_index[driver_binding]]
            estimated_keys = driver_request.estimated_result_rows
            if estimated_keys <= 0 or estimated_keys > config.bind_join_max_keys:
                continue
            unbound_rows = request.estimated_result_rows
            if unbound_rows < config.bind_join_min_rows:
                continue
            bound_rows = max(1, min(step.estimated_rows, unbound_rows))
            if unbound_rows < config.bind_join_min_reduction * bound_rows:
                continue
            spec = BindJoinSpec(
                driver_index=request_index[driver_binding],
                driver_binding=driver_request.binding,
                driver_columns=tuple(ref.name for ref, _ in step.equi_keys),
                bound_columns=tuple(ref.name for _, ref in step.equi_keys),
                batch_size=max(1, config.bind_join_batch_size),
                estimated_keys=estimated_keys,
                estimated_unbound_rows=unbound_rows,
            )
            batches = -(-estimated_keys // spec.batch_size)
            base_cost = self.cost_model.source_query_cost(
                entry.capabilities, request.estimated_base_rows, bound_rows,
                wrapper_name=request.wrapper_name,
            )
            cost = CostEstimate(
                source_execution=base_cost.source_execution
                + entry.capabilities.query_overhead * max(batches - 1, 0),
                communication=base_cost.communication,
            )
            requests[step.request_index] = replace(
                request, bind=spec, estimated_result_rows=bound_rows, cost=cost,
            )
            applied += 1
        return applied

    def _split_equi_conditions(self, conditions: Sequence[Node], joined_bindings: Set[str],
                               candidate_binding: str, bindings: Dict[str, str],
                               ) -> Tuple[Tuple[Tuple[ColumnRef, ColumnRef], ...], Tuple[Node, ...]]:
        """Partition a join step's conditions into oriented equi-join key pairs
        (intermediate side, staged side) and residual conditions.

        Every qualifying ``a.x = b.y`` conjunct becomes part of the composite
        hash key instead of degrading into a per-pair residual check.
        """
        equi_keys: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Node] = []
        for condition in conditions:
            parts = self._equi_join_parts(condition)
            oriented: Optional[Tuple[ColumnRef, ColumnRef]] = None
            if parts is not None:
                left_ref, right_ref = parts
                try:
                    left_binding = self._resolve_binding(left_ref, bindings)
                    right_binding = self._resolve_binding(right_ref, bindings)
                except PlanningError:  # pragma: no cover - classified earlier
                    left_binding = right_binding = None
                if not (
                    self._hash_safe_key(left_ref, left_binding, bindings)
                    and self._hash_safe_key(right_ref, right_binding, bindings)
                ):
                    left_binding = right_binding = None
                if left_binding in joined_bindings and right_binding == candidate_binding:
                    oriented = (left_ref, right_ref)
                elif right_binding in joined_bindings and left_binding == candidate_binding:
                    oriented = (right_ref, left_ref)
            if oriented is not None:
                equi_keys.append(oriented)
            else:
                residual.append(condition)
        return tuple(equi_keys), tuple(residual)

    def _hash_safe_key(self, ref: ColumnRef, binding: Optional[str],
                       bindings: Dict[str, str]) -> bool:
        """True when the column's declared type makes hash-bucket equality
        coincide exactly with SQL equality.

        INTEGER/FLOAT/STRING qualify (numeric float-coercion matches the
        bucket normalization, strings compare exactly).  BOOLEAN does not —
        SQL equality coerces booleans against any number (``TRUE = 2`` is
        true), which buckets cannot reproduce — and ANY may hold such values,
        so both stay in the residual where they are evaluated per pair.
        """
        if binding is None:
            return False
        from repro.relational.types import DataType

        try:
            attribute_type = self.catalog.schema_of(bindings[binding]).attribute(ref.name).type
        except Exception:
            return False
        return attribute_type in (DataType.INTEGER, DataType.FLOAT, DataType.STRING)

    def _pick_next(self, requests: List[SourceRequest], remaining: Set[int],
                   joined_bindings: Set[str],
                   pending: List[Tuple[Node, Set[str]]]) -> int:
        def connects(index: int) -> bool:
            binding = requests[index].binding.lower()
            return any(
                binding in referenced and referenced <= (joined_bindings | {binding})
                for _condition, referenced in pending
            )

        connected = [index for index in remaining if connects(index)]
        candidates = connected or sorted(remaining)
        return min(candidates, key=lambda index: (requests[index].estimated_result_rows,
                                                  requests[index].binding))

    # -- helpers shared with the executor ----------------------------------------------------------

    @staticmethod
    def _equi_join_parts(condition: Node) -> Optional[Tuple[ColumnRef, ColumnRef]]:
        """Return (left, right) column refs when the condition is ``a.x = b.y``."""
        if (
            isinstance(condition, BinaryOp)
            and condition.op == "="
            and isinstance(condition.left, ColumnRef)
            and isinstance(condition.right, ColumnRef)
        ):
            return condition.left, condition.right
        return None
