"""The multi-database access engine façade.

"The multi-database access engine constitutes a front-end of dictionary and
query services to the multiple wrapped sources."

:class:`MultiDatabaseEngine` bundles the catalog (dictionary services), the
planner (query services: planning and optimization) and the execution
controller, and is the component the mediation server drives: mediated queries
go in, relational answers and execution reports come out.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union as TUnion

from repro.errors import EngineError
from repro.engine.catalog import Catalog
from repro.engine.cost import CostModel
from repro.engine.executor import (
    DEFAULT_MAX_CONCURRENT_REQUESTS,
    EngineResult,
    ExecutionController,
)
from repro.engine.resilience import Deadline, HealthProber, ResiliencePolicy
from repro.engine.plan import QueryPlan
from repro.engine.request_cache import SourceResultCache
from repro.engine.planner import PlannerConfig, QueryPlanner
from repro.relational.relation import Relation
from repro.relational.storage import TemporaryStore
from repro.sql.ast import Select, Statement, Union
from repro.sql.parser import parse
from repro.wrappers.wrapper import Wrapper


@dataclass
class EngineStatistics:
    """Aggregate counters over the life of an engine instance.

    Increments go through the ``record_*`` methods, which hold a lock:
    concurrent server sessions execute statements on the same engine, and
    unguarded ``+=`` on these façade counters loses updates.
    """

    statements_executed: int = 0
    plans_built: int = 0
    source_requests: int = 0
    #: Round trips actually issued to sources (after dedup and cache hits).
    source_round_trips: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    rows_transferred: int = 0
    rows_returned: int = 0
    #: Statements served through an explicit cursor, the rows they streamed,
    #: and fetches early-terminated streams cancelled before dispatch.
    streams_opened: int = 0
    rows_streamed: int = 0
    cancelled_fetches: int = 0
    #: Resilience counters folded from per-statement reports: retried
    #: fetches, fetches that failed for good, breaker activity, and branches
    #: dropped by partial-answer degradation.
    source_retries: int = 0
    failed_requests: int = 0
    breaker_trips: int = 0
    breaker_rejections: int = 0
    degraded_branches: int = 0
    #: Adaptive-optimizer counters folded from per-statement reports:
    #: bound requests executed, IN-list batches shipped, key values shipped,
    #: rows actually fetched by bound requests, and rows a whole-relation
    #: fetch would have transferred that the bind join avoided.
    bind_joins: int = 0
    bind_batches: int = 0
    bind_keys_shipped: int = 0
    bind_rows_fetched: int = 0
    bind_rows_avoided: int = 0
    #: Memory accounting folded from per-statement reports: operator spills
    #: to temporary storage, bytes spilled, and the largest per-statement
    #: operator-memory peak observed.
    spill_count: int = 0
    spilled_bytes: int = 0
    peak_memory_bytes: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def record_plan(self) -> None:
        with self._lock:
            self.plans_built += 1

    def record_stream_opened(self) -> None:
        with self._lock:
            self.streams_opened += 1

    def record_execution(self, report) -> None:
        """Fold one execution report's totals into the aggregate counters.

        The report's own lock is taken first (and released before ours, so
        the order stays flat): a late fetch worker or a concurrent monitor
        snapshot may still touch the report while the fold reads it.
        """
        with report.lock:
            source_requests = len(report.requests)
            rows_transferred = sum(
                request.rows_returned for request in report.requests
                if not request.dedup_hit and not request.cache_hit
            )
            source_round_trips = report.distinct_requests - report.cache_hits
            dedup_hits = report.dedup_hits
            cache_hits = report.cache_hits
            rows_returned = report.result_rows
            rows_streamed = report.rows_streamed
            cancelled_fetches = report.cancelled_fetches
            spill_count = report.spill_count
            spilled_bytes = report.spilled_bytes
            peak_memory_bytes = report.peak_memory_bytes
        resilience = report.resilience.snapshot()
        optimizer = report.optimizer
        with self._lock:
            self.statements_executed += 1
            self.source_requests += source_requests
            self.source_round_trips += source_round_trips
            self.dedup_hits += dedup_hits
            self.cache_hits += cache_hits
            self.rows_transferred += rows_transferred
            self.rows_returned += rows_returned
            self.rows_streamed += rows_streamed
            self.cancelled_fetches += cancelled_fetches
            self.source_retries += resilience["retries"]
            self.failed_requests += resilience["failed_requests"]
            self.breaker_trips += resilience["breaker_trips"]
            self.breaker_rejections += resilience["breaker_rejections"]
            self.degraded_branches += len(resilience["degraded_branches"])
            self.bind_joins += optimizer.bind_joins
            self.bind_batches += optimizer.bind_batches
            self.bind_keys_shipped += optimizer.bind_keys_shipped
            self.bind_rows_fetched += optimizer.bind_rows_fetched
            self.bind_rows_avoided += optimizer.bind_rows_avoided
            self.spill_count += spill_count
            self.spilled_bytes += spilled_bytes
            if peak_memory_bytes > self.peak_memory_bytes:
                self.peak_memory_bytes = peak_memory_bytes

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "statements_executed": self.statements_executed,
                "plans_built": self.plans_built,
                "source_requests": self.source_requests,
                "source_round_trips": self.source_round_trips,
                "dedup_hits": self.dedup_hits,
                "cache_hits": self.cache_hits,
                "rows_transferred": self.rows_transferred,
                "rows_returned": self.rows_returned,
                "streams_opened": self.streams_opened,
                "rows_streamed": self.rows_streamed,
                "cancelled_fetches": self.cancelled_fetches,
                "source_retries": self.source_retries,
                "failed_requests": self.failed_requests,
                "breaker_trips": self.breaker_trips,
                "breaker_rejections": self.breaker_rejections,
                "degraded_branches": self.degraded_branches,
                "bind_joins": self.bind_joins,
                "bind_batches": self.bind_batches,
                "bind_keys_shipped": self.bind_keys_shipped,
                "bind_rows_fetched": self.bind_rows_fetched,
                "bind_rows_avoided": self.bind_rows_avoided,
                "spill_count": self.spill_count,
                "spilled_bytes": self.spilled_bytes,
                "peak_memory_bytes": self.peak_memory_bytes,
            }


class MultiDatabaseEngine:
    """Dictionary + query services over a set of wrapped sources."""

    def __init__(self, catalog: Optional[Catalog] = None,
                 cost_model: Optional[CostModel] = None,
                 planner_config: Optional[PlannerConfig] = None,
                 temp_store: Optional[TemporaryStore] = None,
                 request_cache: Optional[SourceResultCache] = None,
                 max_concurrent_requests: int = DEFAULT_MAX_CONCURRENT_REQUESTS,
                 deduplicate_requests: bool = True,
                 memory_budget_bytes: Optional[int] = None,
                 resilience: Optional[ResiliencePolicy] = None):
        self.catalog = catalog if catalog is not None else Catalog()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.planner = QueryPlanner(self.catalog, self.cost_model, planner_config)
        self.controller = ExecutionController(
            self.catalog, temp_store,
            request_cache=request_cache,
            max_concurrent_requests=max_concurrent_requests,
            deduplicate=deduplicate_requests,
            memory_budget_bytes=memory_budget_bytes,
            resilience=resilience,
        )
        self.statistics = EngineStatistics()

    @property
    def request_cache(self) -> Optional[SourceResultCache]:
        return self.controller.request_cache

    # -- registration ------------------------------------------------------------

    def register_wrapper(self, wrapper: Wrapper, estimate_rows: bool = True) -> None:
        """Register a wrapper and catalog its relations."""
        self.catalog.register_wrapper(wrapper, estimate_rows=estimate_rows)
        # A (re)registered wrapper means fresh data behind its name: any
        # memoized results for it are no longer trustworthy — and wrapper-level
        # invalidations (e.g. WebWrapper.invalidate after a site change) must
        # reach this engine's cache too.
        self.invalidate_source_cache(wrapper=wrapper.name)

        # Subscribe via weakref: a long-lived wrapper must not pin every
        # engine it was ever registered to (returning False prunes the
        # listener once this engine is gone).
        engine_ref = weakref.ref(self)

        def _cache_invalidator(name: str) -> bool:
            engine = engine_ref()
            if engine is None:
                return False
            engine.invalidate_source_cache(wrapper=name)
            return True

        wrapper.add_invalidation_listener(_cache_invalidator)

    def invalidate_source_cache(self, wrapper: Optional[str] = None,
                                relation: Optional[str] = None) -> int:
        """Drop memoized source results (all, per wrapper, or per relation).

        Invalidation also advances the catalog generation: it is the signal
        that source data changed, and anything keyed on the generation
        (cached plans, prepared queries) must re-derive rather than trust
        estimates and artifacts from before the change.
        """
        self.catalog.bump_generation()
        if self.controller.request_cache is None:
            return 0
        return self.controller.request_cache.invalidate(wrapper=wrapper, relation=relation)

    # -- dictionary services ----------------------------------------------------------

    def list_sources(self) -> List[str]:
        return self.catalog.list_sources()

    def list_relations(self, source: Optional[str] = None) -> List[str]:
        return self.catalog.list_relations(source)

    def describe_relation(self, relation: str) -> List[Dict[str, object]]:
        return self.catalog.describe_relation(relation)

    # -- query services ------------------------------------------------------------------

    def plan(self, statement: TUnion[str, Statement]) -> QueryPlan:
        """Plan a statement without executing it."""
        parsed = self._parse(statement)
        plan = self.planner.plan(parsed)
        self.statistics.record_plan()
        return plan

    def plan_branches(self, selects: Sequence[Select], union_all: bool = False,
                      statement: Optional[Statement] = None) -> QueryPlan:
        """Plan already-separated SELECT branches (the pipeline's entry point).

        The mediator hands its branch list straight to the planner — no UNION
        re-parse, no re-discovery of branch boundaries — and identical
        requests across branches are shared at plan time.
        """
        plan = self.planner.plan_branches(selects, union_all=union_all,
                                          statement=statement)
        self.statistics.record_plan()
        return plan

    def execute(self, statement: TUnion[str, Statement, QueryPlan],
                timeout_seconds: Optional[float] = None,
                on_source_error: str = "fail",
                deadline: Optional[Deadline] = None) -> EngineResult:
        """Plan (if needed) and execute a statement, returning the full result.

        ``timeout_seconds`` bounds the statement's wall clock (fetch waits,
        retry backoff and finalization all count against it); pass an
        existing ``deadline`` instead to share one bound across several
        executions (the CQA executor does).  ``on_source_error="partial"``
        answers from the surviving branches when a source stays dead.
        """
        if isinstance(statement, QueryPlan):
            plan = statement
        else:
            plan = self.plan(statement)
        if deadline is None:
            deadline = self.controller.resilience.deadline(timeout_seconds)
        # Drain through a stream with the fold attached to close, so a failed
        # statement still books its retries, failed requests and breaker
        # rejections — the streaming path already accounts this way.
        stream = self.controller.execute_stream(plan, deadline=deadline,
                                                on_source_error=on_source_error)
        stream.on_close(self.statistics.record_execution)
        try:
            relation = stream.to_relation()
            return EngineResult(relation=relation, plan=plan, report=stream.report)
        finally:
            stream.close()

    def execute_stream(self, statement: TUnion[str, Statement, QueryPlan],
                       timeout_seconds: Optional[float] = None,
                       on_source_error: str = "fail",
                       deadline: Optional[Deadline] = None):
        """Plan (if needed) and open a pull-based cursor over the result.

        Returns a :class:`~repro.engine.stream.ResultStream`; the engine's
        aggregate statistics fold the execution report in when the stream
        finishes (exhaustion or :meth:`~repro.engine.stream.ResultStream.close`).
        ``timeout_seconds`` / ``on_source_error`` behave as in
        :meth:`execute`; the deadline also covers streaming finalization,
        so a stalled consumer-side pull fails rather than hangs.
        """
        if isinstance(statement, QueryPlan):
            plan = statement
        else:
            plan = self.plan(statement)
        if deadline is None:
            deadline = self.controller.resilience.deadline(timeout_seconds)
        stream = self.controller.execute_stream(plan, deadline=deadline,
                                                on_source_error=on_source_error)
        self.statistics.record_stream_opened()
        stream.on_close(self.statistics.record_execution)
        return stream

    def source_health(self) -> Dict[str, object]:
        """Breaker states and rolling per-wrapper health statistics."""
        return self.controller.resilience.snapshot()

    def build_health_prober(self, interval_seconds: float = 1.0) -> HealthProber:
        """A prober rediscovering recovered sources without sacrificing queries.

        Each registered wrapper gets a cheap probe (fetching its first
        exported relation) that the prober runs only while the wrapper's
        circuit breaker sits half-open — a probe success closes the breaker
        proactively instead of waiting for the next statement to risk a
        request against it.  Call :meth:`HealthProber.run_once` from a
        control loop or :meth:`HealthProber.start` for a daemon thread.
        """
        prober = HealthProber(self.controller.resilience,
                              interval_seconds=interval_seconds)
        for wrapper in self.catalog.wrappers:
            relations = wrapper.relation_names()
            if not relations:
                continue
            prober.register(
                wrapper.name,
                lambda w=wrapper, r=relations[0]: w.fetch(r),
            )
        return prober

    def query(self, statement: TUnion[str, Statement]) -> Relation:
        """Execute and return only the answer relation."""
        return self.execute(statement).relation

    def explain(self, statement: TUnion[str, Statement]) -> str:
        """A human-readable plan rendering (what the demo UI shows as EXPLAIN)."""
        return self.plan(statement).explain()

    # -- helpers ------------------------------------------------------------------------------

    @staticmethod
    def _parse(statement: TUnion[str, Statement]) -> Statement:
        if isinstance(statement, str):
            statement = parse(statement)
        if not isinstance(statement, (Select, Union)):
            raise EngineError(
                f"the engine executes SELECT/UNION statements, not {type(statement).__name__}"
            )
        return statement
