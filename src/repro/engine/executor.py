"""Execution controller: runs query plans across wrappers and local operators.

"Controlling the execution of the resulting query execution plan and executing
the necessary local operations (e.g. joins across sources)."

The controller executes a plan in two phases.

**Phase 1 — federated request scheduling.**  The source requests of *all*
branches are collected up front, canonicalized into request keys (wrapper +
pushed SQL / FETCH target, see :mod:`repro.engine.request_cache`), and
deduplicated: N branches asking one wrapper for byte-identical requests cost
one round trip.  The distinct set is then resolved against the (optional)
source-result cache, and the remaining fetches are dispatched concurrently on
a bounded thread pool — wall clock approaches the slowest source instead of
the sum of all round trips.  Results are handed back to branches in plan
order, so answers and reports are deterministic regardless of completion
order.

**Phase 2 — local processing, per branch.**  Each branch

1. stages its (shared) fetched relations in temporary storage, applying any
   residual per-binding filters locally;
2. joins the staged intermediates in the planned order with hash or
   nested-loop physical operators;
3. applies residual cross-source conditions;
4. finishes the SELECT (projection, aggregation, ordering, limit) with the
   local SQL processor;

and finally the branch results combine with UNION (ALL) semantics.

Since the streaming rework, both phases are driven by a pull-based
:class:`~repro.engine.stream.ResultStream`: fetches are dispatched
asynchronously, branches are staged and finalized lazily as the consumer
pulls rows, and a shared :class:`~repro.relational.budget.MemoryBudget`
bounds operator memory (spilling `Sort`/`Distinct`/`HashJoin` state to
temporary files when exceeded).  :meth:`ExecutionController.execute` is a
thin eager wrapper that drains the stream, so materialized callers see the
historical behaviour unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ExecutionError, RequestFailedError
from repro.engine.catalog import Catalog
from repro.engine.plan import JoinStep, QueryPlan, SourceRequest
from repro.engine.request_cache import RequestKey, SourceResultCache, request_key
from repro.engine.resilience import (
    Deadline,
    ResiliencePolicy,
    ResilienceReport,
    validate_on_source_error,
)
from repro.relational.budget import MemoryBudget
from repro.relational.operators import (
    Filter,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    TableScan,
)
from repro.relational.relation import Relation
from repro.relational.storage import TemporaryStore
from repro.sql.ast import BinaryOp, ColumnRef, Node, conjoin

#: Default bound on concurrently in-flight source requests per statement.
DEFAULT_MAX_CONCURRENT_REQUESTS = 8


@dataclass
class RequestExecution:
    """What actually happened for one source request.

    One entry is recorded per *plan* request (branch × binding), in plan
    order.  When several plan requests share one round trip, the entry that
    first used the shared fetch carries its ``fetch_seconds``; the others are
    marked ``dedup_hit`` (and ``cache_hit`` when the fetch was answered from
    the source-result cache without any round trip at all).
    ``elapsed_seconds`` covers this entry's own work: local filtering and
    staging, plus the shared fetch for the entry that triggered it.
    """

    binding: str
    wrapper_name: str
    request: str
    rows_returned: int
    rows_after_local_filters: int
    elapsed_seconds: float
    branch: int = 0
    dedup_hit: bool = False
    cache_hit: bool = False
    #: Time the fetch spent queued behind the concurrency bound.
    wait_seconds: float = 0.0
    #: Wrapper round-trip time of the shared fetch this entry relied on.
    fetch_seconds: float = 0.0


@dataclass
class OperatorStats:
    """Row/time counters of one local physical operator.

    ``elapsed_seconds`` is cumulative in the EXPLAIN ANALYZE sense: it covers
    the operator *and* everything beneath it in the pipeline, because it is
    measured around the operator's row production."""

    branch: int
    operator: str
    detail: str
    rows_out: int = 0
    elapsed_seconds: float = 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "branch": self.branch,
            "operator": self.operator,
            "detail": self.detail,
            "rows_out": self.rows_out,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


class _InstrumentedOperator(PhysicalOperator):
    """Transparent wrapper counting rows and production time of its child."""

    def __init__(self, child: PhysicalOperator, stats: OperatorStats):
        self.child = child
        self.stats = stats

    @property
    def operator_name(self) -> str:  # type: ignore[override]
        return self.child.operator_name

    @property
    def schema(self):
        return self.child.schema

    @property
    def children(self):
        return self.child.children

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def explain(self, indent: int = 0) -> str:
        return self.child.explain(indent)

    def __iter__(self):
        stats = self.stats
        iterator = iter(self.child)
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.elapsed_seconds += time.perf_counter() - started
                return
            stats.elapsed_seconds += time.perf_counter() - started
            stats.rows_out += 1
            yield row


@dataclass
class OptimizerReport:
    """Adaptive-optimizer outcome of one statement.

    Join orders and estimate provenance come from the plan; the bind-join
    counters are filled in by the stream as bound requests actually ship
    their batched ``IN``-list key sets.
    """

    #: Feedback epoch the executed plan was priced under.
    feedback_epoch: int = 0
    #: Per branch, the binding join order (initial first).
    join_orders: List[List[str]] = field(default_factory=list)
    #: How many plan estimates came from runtime feedback vs defaults
    #: (source requests and join steps combined).
    estimates_from_feedback: int = 0
    estimates_from_defaults: int = 0
    #: Bind-join accounting: bound requests executed, IN-list batches
    #: shipped, key values shipped, rows actually fetched by bound requests,
    #: rows the planner expected an unbound fetch to transfer minus those
    #: fetched (clamped at zero), estimated bytes that saved, and bound
    #: requests skipped entirely because the driver produced no keys.
    bind_joins: int = 0
    bind_batches: int = 0
    bind_keys_shipped: int = 0
    bind_rows_fetched: int = 0
    bind_rows_avoided: int = 0
    bind_bytes_saved: int = 0
    bind_empty_key_skips: int = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "feedback_epoch": self.feedback_epoch,
            "join_orders": [list(order) for order in self.join_orders],
            "estimates_from_feedback": self.estimates_from_feedback,
            "estimates_from_defaults": self.estimates_from_defaults,
            "bind_joins": self.bind_joins,
            "bind_batches": self.bind_batches,
            "bind_keys_shipped": self.bind_keys_shipped,
            "bind_rows_fetched": self.bind_rows_fetched,
            "bind_rows_avoided": self.bind_rows_avoided,
            "bind_bytes_saved": self.bind_bytes_saved,
            "bind_empty_key_skips": self.bind_empty_key_skips,
        }


@dataclass
class ExecutionReport:
    """Execution trace of one statement: per-request facts plus totals.

    Mutations arrive from several threads — fetch workers append request
    entries while the consumer thread folds streaming/memory totals and a
    server thread may snapshot mid-flight — so the list/dict fields are
    guarded by ``lock``: mutation sites hold it (``record_request`` or a
    ``with report.lock`` block) and :meth:`snapshot` takes it too, making
    every snapshot a consistent point-in-time copy.
    """

    requests: List[RequestExecution] = field(default_factory=list)
    branch_rows: List[int] = field(default_factory=list)
    result_rows: int = 0
    elapsed_seconds: float = 0.0
    temp_storage: Dict[str, int] = field(default_factory=dict)
    operator_stats: List[OperatorStats] = field(default_factory=list)
    #: Scheduler outcome: how many distinct round trips the plan's requests
    #: collapsed into, and how they were served.
    distinct_requests: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    #: Peak number of fetches simultaneously in flight on the pool.
    max_in_flight: int = 0
    #: Pool submission order (one binding per pending fetch).  When the
    #: catalog's per-wrapper EWMA latency profiles are mature the scheduler
    #: submits the expected-slowest fetch first so the statement's long pole
    #: starts earliest; ``dispatch_policy`` records whether profiles
    #: ("latency") or plan order ("plan") decided it.
    dispatch_order: List[str] = field(default_factory=list)
    dispatch_policy: str = "plan"
    #: Streaming counters: rows actually pulled through the cursor, the wall
    #: clock until the first of them, and fetches a closed/limit-satisfied
    #: stream cancelled before they were ever issued.
    rows_streamed: int = 0
    first_row_seconds: float = 0.0
    cancelled_fetches: int = 0
    #: Memory accounting: the configured operator budget (0 = unbounded), the
    #: observed operator peak, bytes staged in temporary storage, and what
    #: spilled to secondary storage when the budget was exceeded.
    memory_limit_bytes: int = 0
    peak_memory_bytes: int = 0
    staged_bytes: int = 0
    spill_count: int = 0
    spilled_rows: int = 0
    spilled_bytes: int = 0
    #: Consistent-query-answering outcome, populated only for statements run
    #: under ``consistency="certain"``/``"possible"``: mode, strategy
    #: (rewrite / fallback / clean), conflict clusters touched, repairs
    #: enumerated, raw row count, and how many raw rows certainty dropped.
    consistency: Optional[Dict[str, object]] = None
    #: Fault-tolerance outcome: fetch attempts, retries, breaker activity,
    #: degraded branches and deadline headroom (see
    #: :class:`~repro.engine.resilience.ResilienceReport`).
    resilience: ResilienceReport = field(default_factory=ResilienceReport)
    #: Adaptive-optimizer outcome: join orders, estimate provenance and
    #: bind-join transfer accounting.
    optimizer: OptimizerReport = field(default_factory=OptimizerReport)
    #: Trace id of the statement's span tree, when tracing sampled it.
    trace_id: Optional[str] = None
    #: Guards the mutable collections/counters above against concurrent
    #: snapshots (see the class docstring).
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                 compare=False)

    def record_request(self, entry: RequestExecution) -> None:
        with self.lock:
            self.requests.append(entry)

    @property
    def rows_transferred(self) -> int:
        """Rows actually shipped from sources: dedup'd and cached request
        entries reused rows that already crossed the wire, so only the entry
        that triggered a real round trip counts its rows."""
        return sum(
            request.rows_returned for request in self.requests
            if not request.dedup_hit and not request.cache_hit
        )

    @property
    def source_round_trips(self) -> int:
        """Round trips actually issued: distinct requests minus cache hits."""
        return self.distinct_requests - self.cache_hits

    def snapshot(self) -> Dict[str, object]:
        with self.lock:
            requests = list(self.requests)
            snapshot: Dict[str, object] = {
                "requests": len(requests),
                "rows_transferred": sum(
                    request.rows_returned for request in requests
                    if not request.dedup_hit and not request.cache_hit
                ),
                "branch_rows": list(self.branch_rows),
                "result_rows": self.result_rows,
                "elapsed_seconds": round(self.elapsed_seconds, 6),
                "temp_storage": dict(self.temp_storage),
                "operators": [stats.snapshot() for stats in self.operator_stats],
                "scheduler": {
                    "distinct_requests": self.distinct_requests,
                    "source_round_trips": self.distinct_requests - self.cache_hits,
                    "dedup_hits": self.dedup_hits,
                    "cache_hits": self.cache_hits,
                    "max_in_flight": self.max_in_flight,
                    "dispatch_order": list(self.dispatch_order),
                    "dispatch_policy": self.dispatch_policy,
                    "wait_seconds": round(
                        sum(request.wait_seconds for request in requests), 6
                    ),
                    "fetch_seconds": round(
                        sum(request.fetch_seconds for request in requests), 6
                    ),
                },
                "streaming": {
                    "rows_streamed": self.rows_streamed,
                    "first_row_seconds": round(self.first_row_seconds, 6),
                    "cancelled_fetches": self.cancelled_fetches,
                },
                "memory": {
                    "limit_bytes": self.memory_limit_bytes,
                    "peak_bytes": self.peak_memory_bytes,
                    "staged_bytes": self.staged_bytes,
                    "spill_count": self.spill_count,
                    "spilled_rows": self.spilled_rows,
                    "spilled_bytes": self.spilled_bytes,
                },
            }
            if self.trace_id is not None:
                snapshot["trace_id"] = self.trace_id
            consistency = (dict(self.consistency)
                           if self.consistency is not None else None)
        # The sub-reports carry their own locks; taking them outside ours
        # keeps the lock order flat (never nested the other way around).
        snapshot["resilience"] = self.resilience.snapshot()
        snapshot["optimizer"] = self.optimizer.snapshot()
        if consistency is not None:
            snapshot["consistency"] = consistency
        return snapshot


@dataclass
class EngineResult:
    """A query answer plus the plan and execution report that produced it."""

    relation: Relation
    plan: QueryPlan
    report: ExecutionReport


class _InFlightGauge:
    """Thread-safe high-water mark of concurrently running fetches."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current = 0
        self.peak = 0

    def __enter__(self) -> "_InFlightGauge":
        with self._lock:
            self._current += 1
            if self._current > self.peak:
                self.peak = self._current
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._current -= 1


@dataclass
class _FetchOutcome:
    """The shared result of one distinct source round trip (or cache hit).

    ``frozen`` marks relations that are private copies (the source-result
    cache hands out a fresh copy per hit): their row lists can be staged by
    reference.  Relations straight from a wrapper may be live views of the
    source's table and must be copied once when staged.

    ``error`` is set — and ``relation`` is None — when the fetch failed for
    good (retries exhausted, permanent error, open breaker): a failed
    outcome is never banked into the source-result cache and never updates
    catalog estimates, whether it is consumed by a branch or discovered at
    ``close()`` time.
    """

    relation: Optional[Relation]
    request_text: str
    cache_hit: bool = False
    frozen: bool = False
    fetch_seconds: float = 0.0
    wait_seconds: float = 0.0
    error: Optional[BaseException] = None
    attempts: int = 1


#: Memoized combined error classes: original error type → context-rich type.
_REQUEST_ERROR_TYPES: Dict[type, type] = {}


def request_failed_error(request: SourceRequest,
                         error: BaseException) -> RequestFailedError:
    """The scheduler's terminal fetch error, with full request context.

    The returned error names the wrapper, the relation and the pushed SQL /
    FETCH text, *and* remains an instance of the original error's type
    (``RequestFailedError`` is mixed in as an additional base), so handlers
    catching e.g. :class:`~repro.errors.SourceUnavailableError` keep working
    while gaining the request context in the message.
    """
    message = (
        f"source request failed on wrapper {request.wrapper_name!r} "
        f"(relation {request.relation!r}, request: {request.request_text}): "
        f"{error}"
    )
    base = type(error)
    if issubclass(base, RequestFailedError):
        return base(message)
    combined = _REQUEST_ERROR_TYPES.get(base)
    if combined is None:
        try:
            combined = type(
                f"RequestFailed[{base.__name__}]", (RequestFailedError, base), {}
            )
            combined(message)  # probe: the base must accept a lone message
        except Exception:
            combined = RequestFailedError
        _REQUEST_ERROR_TYPES[base] = combined
    return combined(message)


class ExecutionController:
    """Interprets :class:`QueryPlan` objects against the catalog's wrappers.

    ``max_concurrent_requests`` bounds the fetch thread pool (1 = serial
    dispatch).  ``deduplicate=False`` disables request coalescing *and* the
    cache — every plan request costs its own round trip, re-enacting the
    pre-scheduler behaviour for baselines and ablations.
    """

    def __init__(self, catalog: Catalog, temp_store: Optional[TemporaryStore] = None,
                 request_cache: Optional[SourceResultCache] = None,
                 max_concurrent_requests: int = DEFAULT_MAX_CONCURRENT_REQUESTS,
                 deduplicate: bool = True,
                 memory_budget_bytes: Optional[int] = None,
                 resilience: Optional[ResiliencePolicy] = None):
        self.catalog = catalog
        self.temp_store = temp_store or TemporaryStore("engine-temp")
        self.request_cache = request_cache
        self.max_concurrent_requests = max(1, int(max_concurrent_requests))
        self.deduplicate = deduplicate
        #: Per-statement operator memory budget (None = unbounded).  Sorts,
        #: distincts and hash-join build sides spill to temporary files
        #: rather than exceed it.
        self.memory_budget_bytes = memory_budget_bytes
        #: Retry policy, per-wrapper circuit breakers and source health —
        #: shared across this controller's statements so breaker state and
        #: health statistics persist between them.
        self.resilience = resilience if resilience is not None else ResiliencePolicy()

    # -- public API -------------------------------------------------------------

    def execute(self, plan: QueryPlan, deadline: Optional[Deadline] = None,
                on_source_error: str = "fail") -> EngineResult:
        """Plan interpretation, eagerly: drain the stream into a relation."""
        stream = self.execute_stream(plan, deadline=deadline,
                                     on_source_error=on_source_error)
        try:
            relation = stream.to_relation()
            return EngineResult(relation=relation, plan=plan, report=stream.report)
        finally:
            stream.close()

    def execute_stream(self, plan: QueryPlan, deadline: Optional[Deadline] = None,
                       on_source_error: str = "fail"):
        """Open a pull-based cursor over the plan's result.

        Source fetches are dispatched concurrently up front (or lazily, when
        the pool is bounded to one request), but branches are staged,
        joined and finalized only as the consumer pulls rows — closing the
        stream early cancels fetches that were never consumed and releases
        staged temporaries.  Every distinct fetch runs under the controller's
        resilience policy (retries, breakers) and the optional statement
        ``deadline``; ``on_source_error="partial"`` drops branches whose
        sources stay dead instead of failing the statement.  Returns a
        :class:`~repro.engine.stream.ResultStream`.
        """
        from repro.engine.stream import ResultStream

        return ResultStream(self, plan, deadline=deadline,
                            on_source_error=validate_on_source_error(on_source_error))

    # -- request scheduling -------------------------------------------------------

    def _plan_key(self, request: SourceRequest, branch_index: int,
                  request_index: int) -> RequestKey:
        if self.deduplicate:
            return request_key(request)
        # Baseline mode: make every plan request its own round trip.
        return RequestKey(
            wrapper=request.wrapper_name.lower(),
            relation=request.relation.lower(),
            text=f"{request.request_text} #branch{branch_index}.{request_index}",
        )

    # -- source requests ---------------------------------------------------------------

    def _stage_request(self, request: SourceRequest, report: ExecutionReport,
                       branch_index: int, outcome: _FetchOutcome,
                       first_use: bool) -> Tuple[Relation, str]:
        """Phase 2: qualify, locally filter, and stage one shared fetch result.

        Returns the staged relation and its temporary-store handle (the
        stream drops the handle when it closes).  Staging copies rows at most
        once: a filtered result is materialized by the filter itself, an
        unfiltered fetch is copied once (wrappers may return live views of
        their tables), and a frozen cache copy is staged purely by reference.
        """
        started = time.perf_counter()
        fetched = outcome.relation
        rows_returned = len(fetched)

        qualified = fetched.with_qualifier(request.binding)
        if request.local_filters:
            filtered = Filter(TableScan(qualified), conjoin(list(request.local_filters)))
            staged_relation = filtered.to_relation(name=f"{request.binding}_staged")
        else:
            staged_relation = Relation(qualified.schema, name=f"{request.binding}_staged")
            staged_relation.rows = qualified.rows if outcome.frozen else list(qualified.rows)

        handle = self.temp_store.materialize(
            staged_relation, label=f"{request.binding}_stage", copy=False
        )
        staged = self.temp_store.read(handle)

        staging_elapsed = time.perf_counter() - started
        report.record_request(RequestExecution(
            binding=request.binding,
            wrapper_name=request.wrapper_name,
            request=outcome.request_text,
            rows_returned=rows_returned,
            rows_after_local_filters=len(staged),
            elapsed_seconds=staging_elapsed + (outcome.fetch_seconds if first_use else 0.0),
            branch=branch_index,
            dedup_hit=not first_use,
            cache_hit=outcome.cache_hit and first_use,
            wait_seconds=outcome.wait_seconds if first_use else 0.0,
            # Only the first-use entry carries the shared round trip's time,
            # so summing fetch_seconds over a report never double-counts it.
            fetch_seconds=outcome.fetch_seconds if first_use else 0.0,
        ))
        return staged, handle

    # -- joins ----------------------------------------------------------------------------

    def _join(self, left: PhysicalOperator, right_relation: Relation, step: JoinStep,
              budget: Optional[MemoryBudget] = None) -> PhysicalOperator:
        right = TableScan(right_relation)
        if step.hash_join and step.equi_keys:
            # The planner already oriented the keys (intermediate side, staged
            # side) and split off the residual conjuncts; use all of them as a
            # composite hash key.
            left_keys = [pair[0] for pair in step.equi_keys]
            right_keys = [pair[1] for pair in step.equi_keys]
            if all(self._resolvable(key, left) for key in left_keys) and all(
                self._resolvable(key, right) for key in right_keys
            ):
                return HashJoin(
                    left, right, left_keys, right_keys,
                    residual=conjoin(list(step.residual_conditions)),
                    budget=budget,
                )
        conditions = list(step.conditions)
        if step.hash_join:
            # Plans without key annotations (hand-built steps): derive one key.
            equi, residual = self._split_equi(conditions, left, right)
            if equi is not None:
                left_key, right_key = equi
                return HashJoin(left, right, left_key, right_key,
                                residual=conjoin(residual), budget=budget)
        return NestedLoopJoin(left, right, conjoin(conditions))

    def _split_equi(self, conditions: List[Node], left: PhysicalOperator,
                    right: PhysicalOperator):
        """Find one equi-join condition usable as the hash key; the rest is residual."""
        for index, condition in enumerate(conditions):
            if not (isinstance(condition, BinaryOp) and condition.op == "="):
                continue
            if not (isinstance(condition.left, ColumnRef) and isinstance(condition.right, ColumnRef)):
                continue
            left_ref, right_ref = condition.left, condition.right
            if self._hash_safe(left_ref, left) and self._hash_safe(right_ref, right):
                residual = conditions[:index] + conditions[index + 1 :]
                return (left_ref, right_ref), residual
            if self._hash_safe(right_ref, left) and self._hash_safe(left_ref, right):
                residual = conditions[:index] + conditions[index + 1 :]
                return (right_ref, left_ref), residual
        return None, conditions

    @staticmethod
    def _resolvable(ref: ColumnRef, operator: PhysicalOperator) -> bool:
        try:
            operator.schema.index_of(ref.name, ref.table)
            return True
        except Exception:
            return False

    @staticmethod
    def _hash_safe(ref: ColumnRef, operator: PhysicalOperator) -> bool:
        """Resolvable, and of a type where bucket equality equals SQL equality
        (mirrors the planner's key-type guard for unannotated plans)."""
        from repro.relational.types import DataType

        try:
            attribute = operator.schema.attribute(ref.name, ref.table)
        except Exception:
            return False
        return attribute.type in (DataType.INTEGER, DataType.FLOAT, DataType.STRING)

    @staticmethod
    def _reject_unknown_table(name: str, source: Optional[str]) -> Relation:
        raise ExecutionError(
            f"subqueries over catalog relations (found {name!r}) are not supported "
            "inside the finalization phase"
        )
