"""Execution controller: runs query plans across wrappers and local operators.

"Controlling the execution of the resulting query execution plan and executing
the necessary local operations (e.g. joins across sources)."

The controller executes a plan in two phases.

**Phase 1 — federated request scheduling.**  The source requests of *all*
branches are collected up front, canonicalized into request keys (wrapper +
pushed SQL / FETCH target, see :mod:`repro.engine.request_cache`), and
deduplicated: N branches asking one wrapper for byte-identical requests cost
one round trip.  The distinct set is then resolved against the (optional)
source-result cache, and the remaining fetches are dispatched concurrently on
a bounded thread pool — wall clock approaches the slowest source instead of
the sum of all round trips.  Results are handed back to branches in plan
order, so answers and reports are deterministic regardless of completion
order.

**Phase 2 — local processing, per branch.**  Each branch

1. stages its (shared) fetched relations in temporary storage, applying any
   residual per-binding filters locally;
2. joins the staged intermediates in the planned order with hash or
   nested-loop physical operators;
3. applies residual cross-source conditions;
4. finishes the SELECT (projection, aggregation, ordering, limit) with the
   local SQL processor;

and finally the branch results combine with UNION (ALL) semantics.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.engine.catalog import Catalog
from repro.engine.plan import BranchPlan, JoinStep, QueryPlan, SourceRequest
from repro.engine.request_cache import RequestKey, SourceResultCache, request_key
from repro.relational.operators import (
    Filter,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    TableScan,
)
from repro.relational.query import QueryProcessor
from repro.relational.relation import Relation
from repro.relational.storage import TemporaryStore
from repro.sql.ast import BinaryOp, ColumnRef, Node, conjoin

#: Default bound on concurrently in-flight source requests per statement.
DEFAULT_MAX_CONCURRENT_REQUESTS = 8


@dataclass
class RequestExecution:
    """What actually happened for one source request.

    One entry is recorded per *plan* request (branch × binding), in plan
    order.  When several plan requests share one round trip, the entry that
    first used the shared fetch carries its ``fetch_seconds``; the others are
    marked ``dedup_hit`` (and ``cache_hit`` when the fetch was answered from
    the source-result cache without any round trip at all).
    ``elapsed_seconds`` covers this entry's own work: local filtering and
    staging, plus the shared fetch for the entry that triggered it.
    """

    binding: str
    wrapper_name: str
    request: str
    rows_returned: int
    rows_after_local_filters: int
    elapsed_seconds: float
    branch: int = 0
    dedup_hit: bool = False
    cache_hit: bool = False
    #: Time the fetch spent queued behind the concurrency bound.
    wait_seconds: float = 0.0
    #: Wrapper round-trip time of the shared fetch this entry relied on.
    fetch_seconds: float = 0.0


@dataclass
class OperatorStats:
    """Row/time counters of one local physical operator.

    ``elapsed_seconds`` is cumulative in the EXPLAIN ANALYZE sense: it covers
    the operator *and* everything beneath it in the pipeline, because it is
    measured around the operator's row production."""

    branch: int
    operator: str
    detail: str
    rows_out: int = 0
    elapsed_seconds: float = 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "branch": self.branch,
            "operator": self.operator,
            "detail": self.detail,
            "rows_out": self.rows_out,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


class _InstrumentedOperator(PhysicalOperator):
    """Transparent wrapper counting rows and production time of its child."""

    def __init__(self, child: PhysicalOperator, stats: OperatorStats):
        self.child = child
        self.stats = stats

    @property
    def operator_name(self) -> str:  # type: ignore[override]
        return self.child.operator_name

    @property
    def schema(self):
        return self.child.schema

    @property
    def children(self):
        return self.child.children

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def explain(self, indent: int = 0) -> str:
        return self.child.explain(indent)

    def __iter__(self):
        stats = self.stats
        iterator = iter(self.child)
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.elapsed_seconds += time.perf_counter() - started
                return
            stats.elapsed_seconds += time.perf_counter() - started
            stats.rows_out += 1
            yield row


@dataclass
class ExecutionReport:
    """Execution trace of one statement: per-request facts plus totals."""

    requests: List[RequestExecution] = field(default_factory=list)
    branch_rows: List[int] = field(default_factory=list)
    result_rows: int = 0
    elapsed_seconds: float = 0.0
    temp_storage: Dict[str, int] = field(default_factory=dict)
    operator_stats: List[OperatorStats] = field(default_factory=list)
    #: Scheduler outcome: how many distinct round trips the plan's requests
    #: collapsed into, and how they were served.
    distinct_requests: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    #: Peak number of fetches simultaneously in flight on the pool.
    max_in_flight: int = 0

    @property
    def rows_transferred(self) -> int:
        """Rows actually shipped from sources: dedup'd and cached request
        entries reused rows that already crossed the wire, so only the entry
        that triggered a real round trip counts its rows."""
        return sum(
            request.rows_returned for request in self.requests
            if not request.dedup_hit and not request.cache_hit
        )

    @property
    def source_round_trips(self) -> int:
        """Round trips actually issued: distinct requests minus cache hits."""
        return self.distinct_requests - self.cache_hits

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": len(self.requests),
            "rows_transferred": self.rows_transferred,
            "branch_rows": list(self.branch_rows),
            "result_rows": self.result_rows,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "temp_storage": dict(self.temp_storage),
            "operators": [stats.snapshot() for stats in self.operator_stats],
            "scheduler": {
                "distinct_requests": self.distinct_requests,
                "source_round_trips": self.source_round_trips,
                "dedup_hits": self.dedup_hits,
                "cache_hits": self.cache_hits,
                "max_in_flight": self.max_in_flight,
                "wait_seconds": round(
                    sum(request.wait_seconds for request in self.requests), 6
                ),
                "fetch_seconds": round(
                    sum(request.fetch_seconds for request in self.requests), 6
                ),
            },
        }


@dataclass
class EngineResult:
    """A query answer plus the plan and execution report that produced it."""

    relation: Relation
    plan: QueryPlan
    report: ExecutionReport


class _InFlightGauge:
    """Thread-safe high-water mark of concurrently running fetches."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current = 0
        self.peak = 0

    def __enter__(self) -> "_InFlightGauge":
        with self._lock:
            self._current += 1
            if self._current > self.peak:
                self.peak = self._current
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._current -= 1


@dataclass
class _FetchOutcome:
    """The shared result of one distinct source round trip (or cache hit)."""

    relation: Relation
    request_text: str
    cache_hit: bool = False
    fetch_seconds: float = 0.0
    wait_seconds: float = 0.0


class ExecutionController:
    """Interprets :class:`QueryPlan` objects against the catalog's wrappers.

    ``max_concurrent_requests`` bounds the fetch thread pool (1 = serial
    dispatch).  ``deduplicate=False`` disables request coalescing *and* the
    cache — every plan request costs its own round trip, re-enacting the
    pre-scheduler behaviour for baselines and ablations.
    """

    def __init__(self, catalog: Catalog, temp_store: Optional[TemporaryStore] = None,
                 request_cache: Optional[SourceResultCache] = None,
                 max_concurrent_requests: int = DEFAULT_MAX_CONCURRENT_REQUESTS,
                 deduplicate: bool = True):
        self.catalog = catalog
        self.temp_store = temp_store or TemporaryStore("engine-temp")
        self.request_cache = request_cache
        self.max_concurrent_requests = max(1, int(max_concurrent_requests))
        self.deduplicate = deduplicate

    # -- public API -------------------------------------------------------------

    def execute(self, plan: QueryPlan) -> EngineResult:
        started = time.perf_counter()
        report = ExecutionReport()

        if not plan.branches:
            raise ExecutionError(
                "cannot execute a plan with no branches: the planner produced "
                "an empty UNION (no SELECT branch to evaluate)"
            )

        outcomes = self._dispatch_requests(plan, report)

        consumed_keys: set = set()
        branch_results: List[Relation] = []
        for branch_index, branch in enumerate(plan.branches):
            branch_relation = self._execute_branch(
                branch, report, branch_index, outcomes, consumed_keys
            )
            report.branch_rows.append(len(branch_relation))
            branch_results.append(branch_relation)

        combined = branch_results[0]
        for other in branch_results[1:]:
            combined = combined.union(other, all=plan.union_all)
        # Column names follow the first branch (SQL convention).
        combined = combined.rename(branch_results[0].schema.names)

        report.result_rows = len(combined)
        report.elapsed_seconds = time.perf_counter() - started
        report.temp_storage = self.temp_store.statistics.snapshot()
        return EngineResult(relation=combined, plan=plan, report=report)

    # -- request scheduling -------------------------------------------------------

    def _plan_key(self, request: SourceRequest, branch_index: int,
                  request_index: int) -> RequestKey:
        if self.deduplicate:
            return request_key(request)
        # Baseline mode: make every plan request its own round trip.
        return RequestKey(
            wrapper=request.wrapper_name.lower(),
            relation=request.relation.lower(),
            text=f"{request.request_text} #branch{branch_index}.{request_index}",
        )

    def _dispatch_requests(self, plan: QueryPlan,
                           report: ExecutionReport) -> Dict[RequestKey, _FetchOutcome]:
        """Phase 1: dedup, cache-resolve, and concurrently fetch all requests."""
        distinct: "Dict[RequestKey, SourceRequest]" = {}
        total_units = 0
        for branch_index, branch in enumerate(plan.branches):
            for request_index, request in enumerate(branch.requests):
                total_units += 1
                key = self._plan_key(request, branch_index, request_index)
                if key not in distinct:
                    distinct[key] = request
        report.distinct_requests = len(distinct)
        report.dedup_hits = total_units - len(distinct)

        outcomes: Dict[RequestKey, _FetchOutcome] = {}
        pending: List[RequestKey] = []
        cache = self.request_cache if self.deduplicate else None
        for key, request in distinct.items():
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                outcomes[key] = _FetchOutcome(
                    relation=cached, request_text=request.request_text, cache_hit=True
                )
                report.cache_hits += 1
            else:
                pending.append(key)

        gauge = _InFlightGauge()

        def fetch(key: RequestKey, queued_at: float) -> _FetchOutcome:
            request = distinct[key]
            wrapper = self.catalog.wrappers.get(request.wrapper_name)
            with gauge:
                fetch_started = time.perf_counter()
                if request.sql is not None:
                    fetched = wrapper.query(request.sql)
                else:
                    fetched = wrapper.fetch(request.relation)
                fetch_elapsed = time.perf_counter() - fetch_started
            return _FetchOutcome(
                relation=fetched,
                request_text=request.request_text,
                fetch_seconds=fetch_elapsed,
                wait_seconds=fetch_started - queued_at,
            )

        if self.max_concurrent_requests > 1 and len(pending) > 1:
            workers = min(self.max_concurrent_requests, len(pending))
            with ThreadPoolExecutor(max_workers=workers,
                                    thread_name_prefix="source-fetch") as pool:
                queued_at = time.perf_counter()
                futures: List[Tuple[RequestKey, "Future[_FetchOutcome]"]] = [
                    (key, pool.submit(fetch, key, queued_at)) for key in pending
                ]
                try:
                    # Collect in submission (= plan) order: errors surface
                    # deterministically no matter which fetch fails first.
                    for key, future in futures:
                        outcomes[key] = future.result()
                except BaseException:
                    # Don't charge the sources for an answer that will be
                    # discarded: queued fetches are cancelled (in-flight ones
                    # cannot be interrupted and are awaited by pool exit).
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        else:
            for key in pending:
                outcomes[key] = fetch(key, time.perf_counter())
        report.max_in_flight = gauge.peak

        for key, request in distinct.items():
            outcome = outcomes[key]
            if cache is not None and not outcome.cache_hit:
                cache.put(key, outcome.relation)
            # Keep estimates honest for subsequent planning rounds — once per
            # distinct request, so branch fan-out does not skew the estimate.
            self.catalog.update_estimate(
                request.relation, max(len(outcome.relation), 1)
            )
        return outcomes

    # -- branches -----------------------------------------------------------------

    def _execute_branch(self, branch: BranchPlan, report: ExecutionReport,
                        branch_index: int, outcomes: Dict[RequestKey, _FetchOutcome],
                        consumed_keys: set) -> Relation:
        staged: Dict[int, Relation] = {}
        for index, request in enumerate(branch.requests):
            key = self._plan_key(request, branch_index, index)
            staged[index] = self._stage_request(
                request, report, branch_index, outcomes[key],
                first_use=key not in consumed_keys,
            )
            consumed_keys.add(key)

        def instrument(operator: PhysicalOperator) -> PhysicalOperator:
            stats = OperatorStats(
                branch=branch_index,
                operator=operator.operator_name,
                detail=operator._explain_details(),
            )
            report.operator_stats.append(stats)
            return _InstrumentedOperator(operator, stats)

        pipeline: PhysicalOperator = instrument(TableScan(staged[branch.initial_request]))
        for step in branch.join_steps:
            pipeline = instrument(self._join(pipeline, staged[step.request_index], step))

        if branch.post_join_conditions:
            pipeline = instrument(Filter(pipeline, conjoin(list(branch.post_join_conditions))))

        rows = list(pipeline)
        processor = QueryProcessor(self._reject_unknown_table)
        return processor.finalize_select(branch.select, rows, pipeline.schema)

    # -- source requests ---------------------------------------------------------------

    def _stage_request(self, request: SourceRequest, report: ExecutionReport,
                       branch_index: int, outcome: _FetchOutcome,
                       first_use: bool) -> Relation:
        """Phase 2: qualify, locally filter, and stage one shared fetch result."""
        started = time.perf_counter()
        fetched = outcome.relation
        rows_returned = len(fetched)

        qualified = fetched.with_qualifier(request.binding)
        if request.local_filters:
            filtered = Filter(TableScan(qualified), conjoin(list(request.local_filters)))
            staged_relation = filtered.to_relation(name=f"{request.binding}_staged")
        else:
            staged_relation = Relation(qualified.schema, name=f"{request.binding}_staged")
            staged_relation.rows = list(qualified.rows)

        handle = self.temp_store.materialize(staged_relation, label=f"{request.binding}_stage")
        staged = self.temp_store.read(handle)

        staging_elapsed = time.perf_counter() - started
        report.requests.append(RequestExecution(
            binding=request.binding,
            wrapper_name=request.wrapper_name,
            request=outcome.request_text,
            rows_returned=rows_returned,
            rows_after_local_filters=len(staged),
            elapsed_seconds=staging_elapsed + (outcome.fetch_seconds if first_use else 0.0),
            branch=branch_index,
            dedup_hit=not first_use,
            cache_hit=outcome.cache_hit and first_use,
            wait_seconds=outcome.wait_seconds if first_use else 0.0,
            # Only the first-use entry carries the shared round trip's time,
            # so summing fetch_seconds over a report never double-counts it.
            fetch_seconds=outcome.fetch_seconds if first_use else 0.0,
        ))
        return staged

    # -- joins ----------------------------------------------------------------------------

    def _join(self, left: PhysicalOperator, right_relation: Relation, step: JoinStep) -> PhysicalOperator:
        right = TableScan(right_relation)
        if step.hash_join and step.equi_keys:
            # The planner already oriented the keys (intermediate side, staged
            # side) and split off the residual conjuncts; use all of them as a
            # composite hash key.
            left_keys = [pair[0] for pair in step.equi_keys]
            right_keys = [pair[1] for pair in step.equi_keys]
            if all(self._resolvable(key, left) for key in left_keys) and all(
                self._resolvable(key, right) for key in right_keys
            ):
                return HashJoin(
                    left, right, left_keys, right_keys,
                    residual=conjoin(list(step.residual_conditions)),
                )
        conditions = list(step.conditions)
        if step.hash_join:
            # Plans without key annotations (hand-built steps): derive one key.
            equi, residual = self._split_equi(conditions, left, right)
            if equi is not None:
                left_key, right_key = equi
                return HashJoin(left, right, left_key, right_key, residual=conjoin(residual))
        return NestedLoopJoin(left, right, conjoin(conditions))

    def _split_equi(self, conditions: List[Node], left: PhysicalOperator,
                    right: PhysicalOperator):
        """Find one equi-join condition usable as the hash key; the rest is residual."""
        for index, condition in enumerate(conditions):
            if not (isinstance(condition, BinaryOp) and condition.op == "="):
                continue
            if not (isinstance(condition.left, ColumnRef) and isinstance(condition.right, ColumnRef)):
                continue
            left_ref, right_ref = condition.left, condition.right
            if self._hash_safe(left_ref, left) and self._hash_safe(right_ref, right):
                residual = conditions[:index] + conditions[index + 1 :]
                return (left_ref, right_ref), residual
            if self._hash_safe(right_ref, left) and self._hash_safe(left_ref, right):
                residual = conditions[:index] + conditions[index + 1 :]
                return (right_ref, left_ref), residual
        return None, conditions

    @staticmethod
    def _resolvable(ref: ColumnRef, operator: PhysicalOperator) -> bool:
        try:
            operator.schema.index_of(ref.name, ref.table)
            return True
        except Exception:
            return False

    @staticmethod
    def _hash_safe(ref: ColumnRef, operator: PhysicalOperator) -> bool:
        """Resolvable, and of a type where bucket equality equals SQL equality
        (mirrors the planner's key-type guard for unannotated plans)."""
        from repro.relational.types import DataType

        try:
            attribute = operator.schema.attribute(ref.name, ref.table)
        except Exception:
            return False
        return attribute.type in (DataType.INTEGER, DataType.FLOAT, DataType.STRING)

    @staticmethod
    def _reject_unknown_table(name: str, source: Optional[str]) -> Relation:
        raise ExecutionError(
            f"subqueries over catalog relations (found {name!r}) are not supported "
            "inside the finalization phase"
        )
