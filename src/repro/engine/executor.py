"""Execution controller: runs query plans across wrappers and local operators.

"Controlling the execution of the resulting query execution plan and executing
the necessary local operations (e.g. joins across sources)."

For every branch of a plan the controller

1. issues each source request through the corresponding wrapper (pushed-down
   SQL when available, a plain fetch otherwise), applies any residual
   per-binding filters, and stages the result in the engine's temporary
   storage;
2. joins the staged intermediates in the planned order with hash or
   nested-loop physical operators;
3. applies residual cross-source conditions;
4. finishes the SELECT (projection, aggregation, ordering, limit) with the
   local SQL processor;

and finally combines the branch results with UNION (ALL) semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.engine.catalog import Catalog
from repro.engine.plan import BranchPlan, JoinStep, QueryPlan, SourceRequest
from repro.relational.operators import (
    Filter,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    TableScan,
)
from repro.relational.query import QueryProcessor
from repro.relational.relation import Relation
from repro.relational.storage import TemporaryStore
from repro.sql.ast import BinaryOp, ColumnRef, Node, conjoin
from repro.sql.printer import to_sql


@dataclass
class RequestExecution:
    """What actually happened for one source request."""

    binding: str
    wrapper_name: str
    request: str
    rows_returned: int
    rows_after_local_filters: int
    elapsed_seconds: float


@dataclass
class OperatorStats:
    """Row/time counters of one local physical operator.

    ``elapsed_seconds`` is cumulative in the EXPLAIN ANALYZE sense: it covers
    the operator *and* everything beneath it in the pipeline, because it is
    measured around the operator's row production."""

    branch: int
    operator: str
    detail: str
    rows_out: int = 0
    elapsed_seconds: float = 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "branch": self.branch,
            "operator": self.operator,
            "detail": self.detail,
            "rows_out": self.rows_out,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


class _InstrumentedOperator(PhysicalOperator):
    """Transparent wrapper counting rows and production time of its child."""

    def __init__(self, child: PhysicalOperator, stats: OperatorStats):
        self.child = child
        self.stats = stats

    @property
    def operator_name(self) -> str:  # type: ignore[override]
        return self.child.operator_name

    @property
    def schema(self):
        return self.child.schema

    @property
    def children(self):
        return self.child.children

    @property
    def estimated_rows(self) -> int:
        return self.child.estimated_rows

    def explain(self, indent: int = 0) -> str:
        return self.child.explain(indent)

    def __iter__(self):
        stats = self.stats
        iterator = iter(self.child)
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                stats.elapsed_seconds += time.perf_counter() - started
                return
            stats.elapsed_seconds += time.perf_counter() - started
            stats.rows_out += 1
            yield row


@dataclass
class ExecutionReport:
    """Execution trace of one statement: per-request facts plus totals."""

    requests: List[RequestExecution] = field(default_factory=list)
    branch_rows: List[int] = field(default_factory=list)
    result_rows: int = 0
    elapsed_seconds: float = 0.0
    temp_storage: Dict[str, int] = field(default_factory=dict)
    operator_stats: List[OperatorStats] = field(default_factory=list)

    @property
    def rows_transferred(self) -> int:
        return sum(request.rows_returned for request in self.requests)

    def snapshot(self) -> Dict[str, object]:
        return {
            "requests": len(self.requests),
            "rows_transferred": self.rows_transferred,
            "branch_rows": list(self.branch_rows),
            "result_rows": self.result_rows,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "temp_storage": dict(self.temp_storage),
            "operators": [stats.snapshot() for stats in self.operator_stats],
        }


@dataclass
class EngineResult:
    """A query answer plus the plan and execution report that produced it."""

    relation: Relation
    plan: QueryPlan
    report: ExecutionReport


class ExecutionController:
    """Interprets :class:`QueryPlan` objects against the catalog's wrappers."""

    def __init__(self, catalog: Catalog, temp_store: Optional[TemporaryStore] = None):
        self.catalog = catalog
        self.temp_store = temp_store or TemporaryStore("engine-temp")

    # -- public API -------------------------------------------------------------

    def execute(self, plan: QueryPlan) -> EngineResult:
        started = time.perf_counter()
        report = ExecutionReport()

        branch_results: List[Relation] = []
        for branch_index, branch in enumerate(plan.branches):
            branch_relation = self._execute_branch(branch, report, branch_index)
            report.branch_rows.append(len(branch_relation))
            branch_results.append(branch_relation)

        combined = branch_results[0]
        for other in branch_results[1:]:
            combined = combined.union(other, all=plan.union_all)
        # Column names follow the first branch (SQL convention).
        combined = combined.rename(branch_results[0].schema.names)

        report.result_rows = len(combined)
        report.elapsed_seconds = time.perf_counter() - started
        report.temp_storage = self.temp_store.statistics.snapshot()
        return EngineResult(relation=combined, plan=plan, report=report)

    # -- branches -----------------------------------------------------------------

    def _execute_branch(self, branch: BranchPlan, report: ExecutionReport,
                        branch_index: int = 0) -> Relation:
        staged: Dict[int, Relation] = {}
        for index, request in enumerate(branch.requests):
            staged[index] = self._execute_request(request, report)

        def instrument(operator: PhysicalOperator) -> PhysicalOperator:
            stats = OperatorStats(
                branch=branch_index,
                operator=operator.operator_name,
                detail=operator._explain_details(),
            )
            report.operator_stats.append(stats)
            return _InstrumentedOperator(operator, stats)

        pipeline: PhysicalOperator = instrument(TableScan(staged[branch.initial_request]))
        for step in branch.join_steps:
            pipeline = instrument(self._join(pipeline, staged[step.request_index], step))

        if branch.post_join_conditions:
            pipeline = instrument(Filter(pipeline, conjoin(list(branch.post_join_conditions))))

        rows = list(pipeline)
        processor = QueryProcessor(self._reject_unknown_table)
        return processor.finalize_select(branch.select, rows, pipeline.schema)

    # -- source requests ---------------------------------------------------------------

    def _execute_request(self, request: SourceRequest, report: ExecutionReport) -> Relation:
        wrapper = self.catalog.wrappers.get(request.wrapper_name)
        started = time.perf_counter()

        if request.sql is not None:
            fetched = wrapper.query(request.sql)
            request_text = to_sql(request.sql)
        else:
            fetched = wrapper.fetch(request.relation)
            request_text = f"FETCH {request.relation}"
        rows_returned = len(fetched)

        qualified = fetched.with_qualifier(request.binding)
        if request.local_filters:
            filtered = Filter(TableScan(qualified), conjoin(list(request.local_filters)))
            staged_relation = filtered.to_relation(name=f"{request.binding}_staged")
        else:
            staged_relation = Relation(qualified.schema, name=f"{request.binding}_staged")
            staged_relation.rows = list(qualified.rows)

        handle = self.temp_store.materialize(staged_relation, label=f"{request.binding}_stage")
        staged = self.temp_store.read(handle)
        # Keep estimates honest for subsequent planning rounds.
        self.catalog.update_estimate(request.relation, max(rows_returned, 1))

        report.requests.append(RequestExecution(
            binding=request.binding,
            wrapper_name=request.wrapper_name,
            request=request_text,
            rows_returned=rows_returned,
            rows_after_local_filters=len(staged),
            elapsed_seconds=time.perf_counter() - started,
        ))
        return staged

    # -- joins ----------------------------------------------------------------------------

    def _join(self, left: PhysicalOperator, right_relation: Relation, step: JoinStep) -> PhysicalOperator:
        right = TableScan(right_relation)
        if step.hash_join and step.equi_keys:
            # The planner already oriented the keys (intermediate side, staged
            # side) and split off the residual conjuncts; use all of them as a
            # composite hash key.
            left_keys = [pair[0] for pair in step.equi_keys]
            right_keys = [pair[1] for pair in step.equi_keys]
            if all(self._resolvable(key, left) for key in left_keys) and all(
                self._resolvable(key, right) for key in right_keys
            ):
                return HashJoin(
                    left, right, left_keys, right_keys,
                    residual=conjoin(list(step.residual_conditions)),
                )
        conditions = list(step.conditions)
        if step.hash_join:
            # Plans without key annotations (hand-built steps): derive one key.
            equi, residual = self._split_equi(conditions, left, right)
            if equi is not None:
                left_key, right_key = equi
                return HashJoin(left, right, left_key, right_key, residual=conjoin(residual))
        return NestedLoopJoin(left, right, conjoin(conditions))

    def _split_equi(self, conditions: List[Node], left: PhysicalOperator,
                    right: PhysicalOperator):
        """Find one equi-join condition usable as the hash key; the rest is residual."""
        for index, condition in enumerate(conditions):
            if not (isinstance(condition, BinaryOp) and condition.op == "="):
                continue
            if not (isinstance(condition.left, ColumnRef) and isinstance(condition.right, ColumnRef)):
                continue
            left_ref, right_ref = condition.left, condition.right
            if self._hash_safe(left_ref, left) and self._hash_safe(right_ref, right):
                residual = conditions[:index] + conditions[index + 1 :]
                return (left_ref, right_ref), residual
            if self._hash_safe(right_ref, left) and self._hash_safe(left_ref, right):
                residual = conditions[:index] + conditions[index + 1 :]
                return (right_ref, left_ref), residual
        return None, conditions

    @staticmethod
    def _resolvable(ref: ColumnRef, operator: PhysicalOperator) -> bool:
        try:
            operator.schema.index_of(ref.name, ref.table)
            return True
        except Exception:
            return False

    @staticmethod
    def _hash_safe(ref: ColumnRef, operator: PhysicalOperator) -> bool:
        """Resolvable, and of a type where bucket equality equals SQL equality
        (mirrors the planner's key-type guard for unannotated plans)."""
        from repro.relational.types import DataType

        try:
            attribute = operator.schema.attribute(ref.name, ref.table)
        except Exception:
            return False
        return attribute.type in (DataType.INTEGER, DataType.FLOAT, DataType.STRING)

    @staticmethod
    def _reject_unknown_table(name: str, source: Optional[str]) -> Relation:
        raise ExecutionError(
            f"subqueries over catalog relations (found {name!r}) are not supported "
            "inside the finalization phase"
        )
