"""The top-level façade: a mediated federation of sources.

A :class:`Federation` wires together the pieces a deployment of the prototype
needs — the COIN knowledge system, the wrappers, the multi-database access
engine and the context mediator — and exposes the operation receivers actually
perform: *pose a naive SQL query in my context and get back the correct
answer* (plus, on request, the mediated SQL and an explanation).

This is the object the mediation server (:mod:`repro.server`) serves remotely
and the object the examples and benchmarks script against locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union as TUnion

from repro.errors import MediationError
from repro.coin.system import CoinSystem
from repro.engine.engine import MultiDatabaseEngine
from repro.engine.executor import DEFAULT_MAX_CONCURRENT_REQUESTS, EngineResult
from repro.engine.planner import PlannerConfig
from repro.engine.request_cache import SourceResultCache
from repro.mediation.answers import AnswerTransformer, ColumnAnnotation
from repro.mediation.mediator import ContextMediator
from repro.mediation.rewriter import MediationResult
from repro.relational.relation import Relation
from repro.sql.ast import Select
from repro.wrappers.wrapper import Wrapper


@dataclass
class FederationAnswer:
    """Everything returned for one receiver query."""

    relation: Relation
    mediation: MediationResult
    execution: EngineResult
    annotations: List[ColumnAnnotation] = field(default_factory=list)

    @property
    def mediated_sql(self) -> str:
        return self.mediation.sql

    @property
    def records(self) -> List[Dict[str, object]]:
        return self.relation.records()

    def explain(self) -> str:
        return self.mediation.explain()


class Federation:
    """A mediated federation: knowledge system + wrappers + engine + mediator."""

    def __init__(self, system: CoinSystem, default_receiver_context: Optional[str] = None,
                 planner_config: Optional[PlannerConfig] = None, name: str = "federation",
                 request_cache_size: int = 256,
                 max_concurrent_requests: int = DEFAULT_MAX_CONCURRENT_REQUESTS):
        """Wire up a federation.

        ``request_cache_size`` bounds the source-result cache that lets
        repeated receiver queries skip source round trips entirely (0 disables
        caching — every statement re-fetches).  ``max_concurrent_requests``
        bounds how many source fetches one statement keeps in flight at once
        (1 forces serial dispatch).
        """
        self.name = name
        self.system = system
        self.request_cache = (
            SourceResultCache(request_cache_size) if request_cache_size > 0 else None
        )
        self.engine = MultiDatabaseEngine(
            planner_config=planner_config,
            request_cache=self.request_cache,
            max_concurrent_requests=max_concurrent_requests,
        )
        self.mediator = ContextMediator(system, default_receiver_context)
        self.transformer = AnswerTransformer(system)

    # -- registration ------------------------------------------------------------

    def register_wrapper(self, wrapper: Wrapper, estimate_rows: bool = True) -> None:
        """Make a wrapped source's relations available to queries."""
        self.engine.register_wrapper(wrapper, estimate_rows=estimate_rows)

    # -- cache control -----------------------------------------------------------

    def invalidate_source_cache(self, wrapper: Optional[str] = None,
                                relation: Optional[str] = None) -> int:
        """Drop memoized source results after a source's data changed.

        Sources are autonomous: the federation cannot observe their updates,
        so whoever knows a source changed calls this (all entries, one
        wrapper's, or one relation's).  Returns the number of dropped entries.
        """
        return self.engine.invalidate_source_cache(wrapper=wrapper, relation=relation)

    # -- dictionary services -----------------------------------------------------------

    def list_sources(self) -> List[str]:
        return self.engine.list_sources()

    def list_relations(self, source: Optional[str] = None) -> List[str]:
        return self.engine.list_relations(source)

    def describe_relation(self, relation: str) -> List[Dict[str, object]]:
        return self.engine.describe_relation(relation)

    @property
    def receiver_contexts(self) -> List[str]:
        return self.system.contexts.names

    # -- the core operation -----------------------------------------------------------------

    def query(self, sql: TUnion[str, Select], receiver_context: Optional[str] = None,
              mediate: bool = True) -> FederationAnswer:
        """Answer a receiver query.

        With ``mediate=False`` the query is executed verbatim (the "naive"
        answer the paper contrasts against); otherwise it is first rewritten
        by the context mediator.
        """
        mediation = self.mediator.mediate(sql, receiver_context)
        statement = mediation.mediated if mediate else mediation.original
        execution = self.engine.execute(statement)
        annotations = self.transformer.annotate(
            execution.relation, mediation.column_semantics, mediation.receiver_context
        )
        return FederationAnswer(
            relation=execution.relation,
            mediation=mediation,
            execution=execution,
            annotations=annotations,
        )

    def mediate_only(self, sql: TUnion[str, Select],
                     receiver_context: Optional[str] = None) -> MediationResult:
        """Rewrite a query without executing it (used by the QBE "show SQL" view)."""
        return self.mediator.mediate(sql, receiver_context)

    def explain_plan(self, sql: TUnion[str, Select],
                     receiver_context: Optional[str] = None) -> str:
        """Mediate, plan, and render the execution plan."""
        mediation = self.mediator.mediate(sql, receiver_context)
        return self.engine.explain(mediation.mediated)

    # -- answer post-processing ------------------------------------------------------------------

    def convert_answer(self, answer: FederationAnswer, to_context: str) -> Relation:
        """Re-express an already-computed answer in another receiver context."""
        self._ensure_rate_environment()
        return self.transformer.transform(
            answer.relation,
            answer.mediation.column_semantics,
            answer.mediation.receiver_context,
            to_context,
        )

    def _ensure_rate_environment(self) -> None:
        """Wire the answer transformer's rate lookup to the ancillary source.

        Value-mode currency conversions consult the same exchange-rate relation
        the mediated queries join against; the lookup is built lazily the first
        time an answer conversion needs it.
        """
        if self.transformer.environment.rate_lookup is not None:
            return
        from repro.mediation.answers import environment_from_relation

        for function in self.system.conversions.currency_functions():
            if not self.engine.catalog.has_relation(function.ancillary_relation):
                continue
            wrapper = self.engine.catalog.wrapper_for(function.ancillary_relation)
            rates = wrapper.fetch(function.ancillary_relation)
            self.transformer.environment = environment_from_relation(
                rates, function.from_column, function.to_column, function.rate_column
            )
            return

    # -- effort accounting (scalability / extensibility benchmarks) ------------------------------

    def integration_effort(self) -> Dict[str, int]:
        return self.system.integration_effort()

    def statistics(self) -> Dict[str, Dict[str, int]]:
        stats = {
            "mediator": self.mediator.statistics.snapshot(),
            "engine": self.engine.statistics.snapshot(),
        }
        if self.request_cache is not None:
            stats["request_cache"] = self.request_cache.snapshot()
        return stats
