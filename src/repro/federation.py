"""The top-level façade: a mediated federation of sources.

A :class:`Federation` wires together the pieces a deployment of the prototype
needs — the COIN knowledge system, the wrappers, the multi-database access
engine and the context mediator — and exposes the operation receivers actually
perform: *pose a naive SQL query in my context and get back the correct
answer* (plus, on request, the mediated SQL and an explanation).

Queries flow through the staged :class:`~repro.pipeline.QueryPipeline`:
mediation and planning are compiled once per (statement, receiver context,
catalog/knowledge generation) and memoized, so the warm path of repeated
receiver queries — the dominant serving pattern — performs zero mediation and
zero planning work.  :meth:`Federation.prepare` exposes the same machinery as
an explicit prepared-query handle (mediate+plan once, execute many), which
the server protocol surfaces as ``prepare`` / ``execute_prepared`` /
``close_prepared``.

This is the object the mediation server (:mod:`repro.server`) serves remotely
and the object the examples and benchmarks script against locally.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union as TUnion

from repro.errors import MediationError
from repro.coin.system import CoinSystem
from repro.consistency.constraints import Constraint
from repro.consistency.cqa import (
    DEFAULT_MAX_REPAIRS,
    ConsistentQueryExecutor,
    MaterializedStream,
    validate_mode,
)
from repro.consistency.violations import ViolationReport, ViolationScanner
from repro.engine.engine import MultiDatabaseEngine
from repro.engine.executor import DEFAULT_MAX_CONCURRENT_REQUESTS, EngineResult
from repro.engine.planner import PlannerConfig
from repro.engine.resilience import ResiliencePolicy, validate_on_source_error
from repro.engine.request_cache import SourceResultCache
from repro.mediation.answers import AnswerTransformer, ColumnAnnotation
from repro.mediation.mediator import ContextMediator
from repro.mediation.rewriter import MediationResult
from repro.obs import Observability, statement_fingerprint
from repro.obs.trace import current_span, current_tenant, deactivate_span
from repro.pipeline import MediatedPlan, QueryPipeline
from repro.relational.relation import Relation
from repro.sql.ast import Select
from repro.wrappers.wrapper import Wrapper


@dataclass
class FederationAnswer:
    """Everything returned for one receiver query."""

    relation: Relation
    mediation: MediationResult
    execution: EngineResult
    annotations: List[ColumnAnnotation] = field(default_factory=list)

    @property
    def mediated_sql(self) -> str:
        return self.mediation.sql

    @property
    def records(self) -> List[Dict[str, object]]:
        return self.relation.records()

    def explain(self) -> str:
        return self.mediation.explain()


class FederationCursor:
    """A streaming answer: rows pulled on demand instead of materialized.

    Wraps the engine's :class:`~repro.engine.stream.ResultStream` with the
    mediation metadata a receiver needs (mediated SQL, conflict explanations,
    column annotations).  ``fetchmany``/``fetchone``/``fetchall`` pull rows;
    ``close()`` cancels still-outstanding source fetches, releases staged
    temporaries and the statement's fetch-pool slots mid-query.  Annotations
    and the description are schema-level, so they are available before (and
    without) draining the result.
    """

    def __init__(self, federation: "Federation", prepared: MediatedPlan, stream):
        self.federation = federation
        self.prepared = prepared
        self.stream = stream
        self._annotations: Optional[List[ColumnAnnotation]] = None

    # -- metadata ----------------------------------------------------------------

    @property
    def mediation(self) -> MediationResult:
        return self.prepared.mediation

    @property
    def mediated_sql(self) -> str:
        return self.prepared.mediation.sql

    @property
    def schema(self):
        return self.stream.schema

    @property
    def description(self) -> List[Tuple]:
        """DB-API style 7-tuples for the result columns."""
        return [
            (attribute.name, attribute.type.value, None, None, None, None, None)
            for attribute in self.stream.schema
        ]

    @property
    def annotations(self) -> List[ColumnAnnotation]:
        if self._annotations is None:
            self._annotations = self.federation.transformer.annotate(
                Relation(self.stream.schema),
                self.prepared.column_semantics,
                self.prepared.mediation.receiver_context,
            )
        return self._annotations

    @property
    def report(self):
        return self.stream.report

    @property
    def exhausted(self) -> bool:
        return self.stream.exhausted

    # -- fetching ----------------------------------------------------------------

    def fetchone(self):
        return self.stream.fetchone()

    def fetchmany(self, size: int = 1):
        return self.stream.fetchmany(size)

    def fetchall(self):
        return self.stream.fetchall()

    def __iter__(self):
        return iter(self.stream)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.stream.close()

    def __enter__(self) -> "FederationCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class PreparedQuery:
    """A receiver statement compiled once — mediated and planned — for reuse.

    ``execute()`` revalidates the compiled plan against the federation's
    catalog and knowledge generations: while nothing changed, execution skips
    mediation and planning entirely; after a wrapper (re)registration, source
    invalidation or knowledge change, the statement is transparently
    recompiled, so a prepared query can never read a stale dictionary.
    """

    federation: "Federation"
    plan: MediatedPlan
    #: Consistency mode the statement was prepared under ("raw", "certain"
    #: or "possible"); every execution answers in this mode.
    consistency: str = "raw"
    #: Per-execution wall-clock bound (None = unbounded) and source-failure
    #: policy ("fail" | "partial"), fixed at prepare time.
    timeout_seconds: Optional[float] = None
    on_source_error: str = "fail"

    @property
    def sql(self) -> str:
        return self.plan.mediation.original_sql

    @property
    def mediated_sql(self) -> str:
        return self.plan.mediation.sql

    @property
    def receiver_context(self) -> str:
        return self.plan.receiver_context

    @property
    def fingerprint(self) -> str:
        return self.plan.fingerprint

    def execute(self, stream: bool = False):
        """Run the statement: a materialized answer, or (``stream=True``) a
        :class:`FederationCursor` pulling rows on demand."""
        federation = self.federation
        sql_text = self.sql
        tenant = current_tenant()
        root, token = federation._open_statement_root(
            sql_text, consistency=self.consistency, stream=stream,
            prepared=True,
        )
        started = time.perf_counter()
        try:
            self.plan = federation.pipeline.refresh(self.plan)
            if self.consistency != "raw":
                result = federation._run_consistent(
                    self.plan, self.consistency, stream=stream,
                    timeout_seconds=self.timeout_seconds,
                )
            elif stream:
                result = federation._run_stream(
                    self.plan, timeout_seconds=self.timeout_seconds,
                    on_source_error=self.on_source_error,
                )
            else:
                result = federation._run(
                    self.plan, timeout_seconds=self.timeout_seconds,
                    on_source_error=self.on_source_error,
                )
        except BaseException as exc:
            federation._fail_statement(exc, sql_text, started, tenant,
                                       root, token)
            raise
        return federation._conclude_statement(result, sql_text, started,
                                              tenant, root, token)

    def close(self) -> None:
        """Prepared queries hold no external resources; provided for symmetry
        with the server protocol's explicit close."""


class Federation:
    """A mediated federation: knowledge system + wrappers + engine + mediator."""

    def __init__(self, system: CoinSystem, default_receiver_context: Optional[str] = None,
                 planner_config: Optional[PlannerConfig] = None, name: str = "federation",
                 request_cache_size: int = 256,
                 max_concurrent_requests: int = DEFAULT_MAX_CONCURRENT_REQUESTS,
                 plan_cache_size: int = 128,
                 memory_budget_bytes: Optional[int] = None,
                 max_repairs: int = DEFAULT_MAX_REPAIRS,
                 resilience: Optional[ResiliencePolicy] = None,
                 observability: Optional[Observability] = None):
        """Wire up a federation.

        ``request_cache_size`` bounds the source-result cache that lets
        repeated receiver queries skip source round trips entirely (0 disables
        caching — every statement re-fetches).  ``max_concurrent_requests``
        bounds how many source fetches one statement keeps in flight at once
        (1 forces serial dispatch).  ``plan_cache_size`` bounds the mediation
        and plan caches of the query pipeline (0 disables them — every
        statement re-mediates and re-plans).  ``memory_budget_bytes`` bounds
        per-statement operator memory: sorts, distincts and hash-join build
        sides spill to temporary files instead of exceeding it (None =
        unbounded).  ``max_repairs`` bounds the repair enumeration the
        consistent-query-answering fallback may perform before refusing.
        ``resilience`` overrides the engine's fault-tolerance policy (retry
        schedule, breaker thresholds, clock) — the default policy retries
        transient source failures with seeded-jitter backoff and circuit-
        breaks wrappers that keep failing.  ``observability`` is the
        telemetry bundle (tracer + metrics registry + event log); the
        default bundle keeps tracing off (the no-op path) while the metrics
        registry and slow-query log are always live.
        """
        self.name = name
        self.system = system
        self.request_cache = (
            SourceResultCache(request_cache_size) if request_cache_size > 0 else None
        )
        self.engine = MultiDatabaseEngine(
            planner_config=planner_config,
            request_cache=self.request_cache,
            max_concurrent_requests=max_concurrent_requests,
            memory_budget_bytes=memory_budget_bytes,
            resilience=resilience,
        )
        self.mediator = ContextMediator(system, default_receiver_context)
        self.transformer = AnswerTransformer(system)
        self.pipeline = QueryPipeline(
            self.mediator, self.engine,
            plan_cache_size=plan_cache_size,
            mediation_cache_size=plan_cache_size,
        )
        self.cqa = ConsistentQueryExecutor(self.engine, max_repairs=max_repairs)
        #: Built lazily on the first scan; shares the engine's request cache
        #: and runs its scan plans under the federation's memory budget.
        #: Creation is lock-guarded: concurrent first scans must agree on
        #: one scanner (and its report cache / counters).
        self._scanner: Optional[ViolationScanner] = None
        self._scanner_budget = memory_budget_bytes
        self._scanner_lock = threading.Lock()
        #: (wrapper, relation) the answer transformer's rate lookup was built
        #: from; consulted on invalidation so conversions never use stale rates.
        self._rate_environment_source: Optional[Tuple[str, str]] = None
        #: Telemetry bundle shared with the serving stack built on this
        #: federation (gateway, server, transports): one scrape sees all.
        self.observability = (
            observability if observability is not None else Observability()
        )
        self._bind_metrics()

    # -- telemetry ---------------------------------------------------------------

    def _bind_metrics(self) -> None:
        """Register this federation's metric series.

        Cumulative series are *function-backed*: rendered from the existing
        lock-guarded statistics objects at scrape time, so the query hot path
        pays nothing for them.  Only the per-statement event metrics below
        (count/errors/latency) are recorded inline.
        """
        registry = self.observability.metrics
        self._statements_metric = registry.counter(
            "statements_total", "Receiver statements answered (any mode).")
        self._statement_errors_metric = registry.counter(
            "statement_errors_total", "Receiver statements that raised.")
        self._statement_seconds_metric = registry.histogram(
            "statement_seconds", "Receiver statement wall clock, in seconds.")

        engine = self.engine.statistics

        def engine_counter(name: str, help_text: str, attribute: str) -> None:
            registry.counter(name, help_text,
                             function=lambda: getattr(engine, attribute))

        engine_counter("engine_statements_total",
                       "Statements executed by the engine.",
                       "statements_executed")
        engine_counter("engine_source_round_trips_total",
                       "Source round trips actually issued (after dedup/cache).",
                       "source_round_trips")
        engine_counter("engine_dedup_hits_total",
                       "Plan requests coalesced into an already-scheduled fetch.",
                       "dedup_hits")
        engine_counter("engine_cache_hits_total",
                       "Source requests answered from the source-result cache.",
                       "cache_hits")
        engine_counter("engine_rows_transferred_total",
                       "Rows shipped from sources over the wire.",
                       "rows_transferred")
        engine_counter("engine_rows_streamed_total",
                       "Rows pulled through streaming cursors.",
                       "rows_streamed")
        engine_counter("engine_cancelled_fetches_total",
                       "Fetches cancelled by early stream termination.",
                       "cancelled_fetches")
        engine_counter("engine_source_retries_total",
                       "Transient source failures that were retried.",
                       "source_retries")
        engine_counter("engine_failed_requests_total",
                       "Source requests that failed for good.",
                       "failed_requests")
        engine_counter("engine_breaker_trips_total",
                       "Circuit-breaker trips across all wrappers.",
                       "breaker_trips")
        engine_counter("engine_breaker_rejections_total",
                       "Fetches rejected fast by an open breaker.",
                       "breaker_rejections")
        engine_counter("engine_degraded_branches_total",
                       "Branches dropped by partial-answer degradation.",
                       "degraded_branches")
        engine_counter("engine_bind_joins_total",
                       "Bound requests executed as batched IN-list fetches.",
                       "bind_joins")
        engine_counter("engine_bind_rows_avoided_total",
                       "Rows a whole-relation fetch would have shipped that "
                       "bind joins avoided.",
                       "bind_rows_avoided")
        engine_counter("memory_spills_total",
                       "Operator spills to temporary storage.",
                       "spill_count")
        engine_counter("memory_spilled_bytes_total",
                       "Bytes spilled to temporary storage.",
                       "spilled_bytes")
        registry.gauge(
            "memory_peak_bytes",
            "Largest per-statement operator-memory peak observed.",
            function=lambda: engine.peak_memory_bytes,
        )

        pipeline_stats = self.pipeline.statistics

        def pipeline_counter(name: str, help_text: str, attribute: str) -> None:
            registry.counter(name, help_text,
                             function=lambda: getattr(pipeline_stats, attribute))

        pipeline_counter("pipeline_prepares_total",
                         "Statements taken through the compilation pipeline.",
                         "prepares")
        pipeline_counter("pipeline_plan_hits_total",
                         "Plan-cache hits (zero mediation + planning work).",
                         "plan_hits")
        pipeline_counter("pipeline_plan_misses_total",
                         "Plan-cache misses (full mediate + plan).",
                         "plan_misses")
        pipeline_counter("pipeline_mediation_hits_total",
                         "Mediation-cache hits.", "mediation_hits")
        pipeline_counter("pipeline_mediation_misses_total",
                         "Mediation-cache misses.", "mediation_misses")
        pipeline_counter("pipeline_feedback_replans_total",
                         "Recompilations forced by a cardinality-feedback "
                         "epoch bump.",
                         "feedback_replans")

        feedback = getattr(self.engine.catalog, "feedback", None)
        if feedback is not None:
            feedback.bind_metrics(registry)
        if self.request_cache is not None:
            cache = self.request_cache
            registry.gauge(
                "request_cache_entries",
                "Entries currently held by the source-result cache.",
                function=lambda: cache.snapshot().get("entries", 0),
            )

        registry.gauge(
            "memory_budget_bytes",
            "Configured per-statement operator memory budget (0 = unbounded).",
        ).set(float(self.engine.controller.memory_budget_bytes or 0))

    def _account_statement(self, sql_text: str, started: float,
                           tenant: Optional[str] = None,
                           report=None, trace_id: Optional[str] = None,
                           error: Optional[BaseException] = None) -> None:
        """Fold one finished statement into metrics and the slow-query log."""
        elapsed = time.perf_counter() - started
        self._statements_metric.inc()
        if error is not None:
            self._statement_errors_metric.inc()
        self._statement_seconds_metric.observe(elapsed)
        self.observability.log.statement_finished(
            elapsed, sql_text, tenant=tenant, trace_id=trace_id,
            report=report,
            error=f"{type(error).__name__}: {error}" if error is not None else None,
        )

    # -- registration ------------------------------------------------------------

    def register_wrapper(self, wrapper: Wrapper, estimate_rows: bool = True) -> None:
        """Make a wrapped source's relations available to queries."""
        self.engine.register_wrapper(wrapper, estimate_rows=estimate_rows)

    def register_constraint(self, constraint: Constraint) -> Constraint:
        """Declare an integrity constraint over catalogued relations.

        Registration bumps the catalog generation, so cached plans, prepared
        statements and memoized violation reports compiled before the
        declaration transparently recompile/rescan.
        """
        return self.engine.catalog.register_constraint(constraint)

    # -- violation scanning --------------------------------------------------------

    @property
    def scanner(self) -> ViolationScanner:
        with self._scanner_lock:
            if self._scanner is None:
                self._scanner = ViolationScanner(
                    self.engine, memory_budget_bytes=self._scanner_budget
                )
            return self._scanner

    def scan_violations(self, relations: Optional[List[str]] = None,
                        use_cache: bool = True,
                        timeout_seconds: Optional[float] = None) -> ViolationReport:
        """Scan declared constraints for violations (memoized per generation).

        ``timeout_seconds`` bounds the whole scan — every constraint's scan
        plans share one deadline, so a hung source fails the scan instead of
        hanging it.
        """
        return self.scanner.scan(relations, use_cache=use_cache,
                                 timeout_seconds=timeout_seconds)

    # -- cache control -----------------------------------------------------------

    def invalidate_source_cache(self, wrapper: Optional[str] = None,
                                relation: Optional[str] = None) -> int:
        """Drop memoized source results after a source's data changed.

        Sources are autonomous: the federation cannot observe their updates,
        so whoever knows a source changed calls this (all entries, one
        wrapper's, or one relation's).  Returns the number of dropped entries.

        Invalidation also bumps the catalog generation (stale plans become
        unreachable) and, when it covers the ancillary exchange-rate relation,
        resets the answer transformer's rate lookup so subsequent answer
        conversions re-resolve fresh rates.
        """
        dropped = self.engine.invalidate_source_cache(wrapper=wrapper, relation=relation)
        self._maybe_reset_rate_environment(wrapper, relation)
        return dropped

    def _maybe_reset_rate_environment(self, wrapper: Optional[str],
                                      relation: Optional[str]) -> None:
        if self._rate_environment_source is None:
            return
        rate_wrapper, rate_relation = self._rate_environment_source
        if wrapper is not None and wrapper.lower() != rate_wrapper.lower():
            return
        if relation is not None and relation.lower() != rate_relation.lower():
            return
        from repro.coin.conversion import ConversionEnvironment

        self.transformer.environment = ConversionEnvironment()
        self._rate_environment_source = None

    # -- dictionary services -----------------------------------------------------------

    def list_sources(self) -> List[str]:
        return self.engine.list_sources()

    def list_relations(self, source: Optional[str] = None) -> List[str]:
        return self.engine.list_relations(source)

    def describe_relation(self, relation: str) -> List[Dict[str, object]]:
        return self.engine.describe_relation(relation)

    @property
    def receiver_contexts(self) -> List[str]:
        return self.system.contexts.names

    # -- the core operation -----------------------------------------------------------------

    def query(self, sql: TUnion[str, Select], receiver_context: Optional[str] = None,
              mediate: bool = True, stream: bool = False, consistency: str = "raw",
              timeout_seconds: Optional[float] = None,
              on_source_error: str = "fail"):
        """Answer a receiver query.

        With ``mediate=False`` the query is executed verbatim (the "naive"
        answer the paper contrasts against) — a fast path that skips conflict
        detection and abduction entirely; otherwise it is rewritten by the
        context mediator.  Either way the compiled pipeline product is
        memoized, so repeating a statement against an unchanged federation
        costs only execution.

        With ``stream=True`` the answer is a :class:`FederationCursor`
        instead of a materialized :class:`FederationAnswer`: rows are pulled
        with ``fetchmany``/``fetchone``, first rows arrive while slower
        branches are still fetching, and closing the cursor early cancels
        outstanding source round trips.

        ``consistency`` selects how declared key constraints are honoured:
        ``"raw"`` (default) answers over the instances as-is, ``"certain"``
        returns only rows true in *every* repair of the key-violating
        sources, ``"possible"`` rows true in at least one (both use set
        semantics; see PERFORMANCE.md, "Consistency and repairs").

        ``timeout_seconds`` bounds the statement's total wall clock — fetch
        waits, retry backoff and (streaming) finalization all count against
        one deadline.  ``on_source_error="partial"`` degrades instead of
        failing when a source stays dead after retries: the answer comes
        from the surviving branches and every dropped branch is listed in
        the execution report's ``resilience`` block (see PERFORMANCE.md,
        "Fault tolerance and graceful degradation").
        """
        validate_mode(consistency)
        self._validate_execution_options(consistency, on_source_error)
        sql_text = sql if isinstance(sql, str) else str(sql)
        tenant = current_tenant()
        root, token = self._open_statement_root(sql_text, consistency=consistency,
                                                stream=stream)
        started = time.perf_counter()
        try:
            prepared = self.pipeline.prepare(sql, receiver_context, mediate=mediate)
            if consistency != "raw":
                result = self._run_consistent(prepared, consistency, stream=stream,
                                              timeout_seconds=timeout_seconds)
            elif stream:
                result = self._run_stream(prepared, timeout_seconds=timeout_seconds,
                                          on_source_error=on_source_error)
            else:
                result = self._run(prepared, timeout_seconds=timeout_seconds,
                                   on_source_error=on_source_error)
        except BaseException as exc:
            self._fail_statement(exc, sql_text, started, tenant, root, token)
            raise
        return self._conclude_statement(result, sql_text, started, tenant,
                                        root, token)

    def _open_statement_root(self, sql_text: str, **attributes):
        """Open a root span when this call is the statement's edge.

        Root-span ownership: an edge that already opened a statement span
        (the mediation server, the in-process service) wins — its span is
        the ambient one — and a bare local call opens its own root.
        Returns ``(root, token)``, both None when tracing is off or an
        ambient span exists.
        """
        if not self.observability.tracer.enabled or current_span().recording:
            return None, None
        root = self.observability.tracer.start_trace(
            "statement", fingerprint=statement_fingerprint(sql_text),
            **attributes)
        if not root.recording:
            return None, None
        return root, root.activate()

    def _fail_statement(self, exc: BaseException, sql_text: str, started: float,
                        tenant: Optional[str], root, token) -> None:
        trace_id = current_span().trace_id
        if root is not None:
            deactivate_span(token)
            root.finish(error=exc)
        self._account_statement(sql_text, started, tenant=tenant,
                                trace_id=trace_id, error=exc)

    def _conclude_statement(self, result, sql_text: str, started: float,
                            tenant: Optional[str], root, token):
        if isinstance(result, FederationCursor):
            # The statement is not over until the cursor closes: the root
            # span and the statement accounting ride the stream's close.
            if root is not None:
                deactivate_span(token)
                result.stream.on_close(lambda report, _root=root: _root.finish())
            result.stream.on_close(
                lambda report, _sql=sql_text, _started=started, _tenant=tenant:
                    self._account_statement(_sql, _started, tenant=_tenant,
                                            report=report.snapshot,
                                            trace_id=report.trace_id)
            )
        else:
            report = result.execution.report
            if root is not None:
                deactivate_span(token)
                root.finish()
            self._account_statement(sql_text, started, tenant=tenant,
                                    report=report.snapshot,
                                    trace_id=report.trace_id)
        return result

    def prepare(self, sql: TUnion[str, Select], receiver_context: Optional[str] = None,
                mediate: bool = True, consistency: str = "raw",
                timeout_seconds: Optional[float] = None,
                on_source_error: str = "fail") -> PreparedQuery:
        """Compile a receiver statement once for repeated execution."""
        validate_mode(consistency)
        self._validate_execution_options(consistency, on_source_error)
        plan = self.pipeline.prepare(sql, receiver_context, mediate=mediate)
        return PreparedQuery(federation=self, plan=plan, consistency=consistency,
                             timeout_seconds=timeout_seconds,
                             on_source_error=on_source_error)

    @staticmethod
    def _validate_execution_options(consistency: str, on_source_error: str) -> None:
        validate_on_source_error(on_source_error)
        if consistency != "raw" and on_source_error == "partial":
            # Certain/possible answers quantify over *all* repairs of *all*
            # constrained sources; silently dropping a source would turn a
            # certainty claim into a guess.
            raise MediationError(
                "on_source_error='partial' cannot be combined with "
                f"consistency={consistency!r}: partial answers void the "
                "certainty quantification"
            )

    def _run_stream(self, prepared: MediatedPlan,
                    timeout_seconds: Optional[float] = None,
                    on_source_error: str = "fail") -> FederationCursor:
        # The execute span is activated around stream construction so the
        # stream captures it as the parent of its fetch/stream spans; it
        # stays open (rows are still being pulled) until the cursor closes.
        span = current_span().child("execute", stream=True,
                                    branches=len(prepared.plan.branches))
        token = span.activate() if span.recording else None
        try:
            stream = self.engine.execute_stream(prepared.plan,
                                                timeout_seconds=timeout_seconds,
                                                on_source_error=on_source_error)
        except BaseException as exc:
            span.finish(error=exc)
            raise
        finally:
            deactivate_span(token)
        if span.recording:
            stream.report.trace_id = span.trace_id
            stream.on_close(lambda report, _span=span: _span.finish())
        return FederationCursor(federation=self, prepared=prepared, stream=stream)

    def _run_consistent(self, prepared: MediatedPlan, consistency: str,
                        stream: bool = False,
                        timeout_seconds: Optional[float] = None):
        """Answer in certain/possible mode via the CQA executor.

        Consistent answers are group- or repair-quantified, so they
        materialize before the first row can leave; ``stream=True`` still
        returns a :class:`FederationCursor` (over the materialized rows) so
        cursor-shaped consumers work identically in every mode.
        """
        span = current_span().child("execute", consistency=consistency,
                                    branches=len(prepared.plan.branches))
        token = span.activate() if span.recording else None
        try:
            execution = self.cqa.execute(prepared, consistency,
                                         timeout_seconds=timeout_seconds)
        except BaseException as exc:
            span.finish(error=exc)
            raise
        finally:
            deactivate_span(token)
        if span.recording:
            execution.report.trace_id = span.trace_id
            span.annotate(rows=len(execution.relation))
        span.finish()
        if stream:
            return FederationCursor(
                federation=self, prepared=prepared,
                stream=MaterializedStream(execution.relation, execution.report),
            )
        annotations = self.transformer.annotate(
            execution.relation,
            prepared.mediation.column_semantics,
            prepared.mediation.receiver_context,
        )
        return FederationAnswer(
            relation=execution.relation,
            mediation=prepared.mediation,
            execution=execution,
            annotations=annotations,
        )

    def _run(self, prepared: MediatedPlan,
             timeout_seconds: Optional[float] = None,
             on_source_error: str = "fail") -> FederationAnswer:
        span = current_span().child("execute",
                                    branches=len(prepared.plan.branches))
        token = span.activate() if span.recording else None
        try:
            execution = self.engine.execute(prepared.plan,
                                            timeout_seconds=timeout_seconds,
                                            on_source_error=on_source_error)
        except BaseException as exc:
            span.finish(error=exc)
            raise
        finally:
            deactivate_span(token)
        if span.recording:
            execution.report.trace_id = span.trace_id
            span.annotate(rows=len(execution.relation))
        span.finish()
        annotations = self.transformer.annotate(
            execution.relation,
            prepared.mediation.column_semantics,
            prepared.mediation.receiver_context,
        )
        return FederationAnswer(
            relation=execution.relation,
            mediation=prepared.mediation,
            execution=execution,
            annotations=annotations,
        )

    def mediate_only(self, sql: TUnion[str, Select],
                     receiver_context: Optional[str] = None) -> MediationResult:
        """Rewrite a query without executing it (used by the QBE "show SQL" view)."""
        return self.pipeline.mediate(sql, receiver_context)

    def explain_plan(self, sql: TUnion[str, Select],
                     receiver_context: Optional[str] = None) -> str:
        """Mediate, plan, and render the execution plan."""
        return self.pipeline.prepare(sql, receiver_context).plan.explain()

    def service(self, gateway=None):
        """An in-process serving facade over this federation.

        Returns a :class:`~repro.server.service.FederatedQueryService`:
        statements run under an admission gateway and streaming answers are
        :class:`~repro.server.service.ResultHandle` objects holding one of
        the gateway's bounded stream permits.  ``gateway`` may be a shared
        :class:`~repro.server.gateway.AdmissionGateway`, a
        :class:`~repro.server.gateway.GatewayConfig`, or None for defaults.
        """
        # Imported lazily: repro.server imports this module.
        from repro.server.service import FederatedQueryService

        return FederatedQueryService(self, gateway)

    # -- answer post-processing ------------------------------------------------------------------

    def convert_answer(self, answer: FederationAnswer, to_context: str) -> Relation:
        """Re-express an already-computed answer in another receiver context."""
        self._ensure_rate_environment()
        return self.transformer.transform(
            answer.relation,
            answer.mediation.column_semantics,
            answer.mediation.receiver_context,
            to_context,
        )

    def _ensure_rate_environment(self) -> None:
        """Wire the answer transformer's rate lookup to the ancillary source.

        Value-mode currency conversions consult the same exchange-rate relation
        the mediated queries join against; the lookup is built lazily the first
        time an answer conversion needs it and rebuilt after the rate relation
        is invalidated (see :meth:`invalidate_source_cache`).
        """
        if self.transformer.environment.rate_lookup is not None:
            return
        from repro.mediation.answers import environment_from_relation

        for function in self.system.conversions.currency_functions():
            if not self.engine.catalog.has_relation(function.ancillary_relation):
                continue
            wrapper = self.engine.catalog.wrapper_for(function.ancillary_relation)
            rates = wrapper.fetch(function.ancillary_relation)
            self.transformer.environment = environment_from_relation(
                rates, function.from_column, function.to_column, function.rate_column
            )
            self._rate_environment_source = (wrapper.name, function.ancillary_relation)
            return

    # -- health probing -------------------------------------------------------------------------

    def health_prober(self, interval_seconds: float = 1.0):
        """A background prober for this federation's sources.

        Drives half-open circuit-breaker probes from the engine's health
        registry so a recovered source is rediscovered proactively instead
        of by sacrificing the next receiver query; see
        :meth:`~repro.engine.engine.MultiDatabaseEngine.build_health_prober`.
        """
        return self.engine.build_health_prober(interval_seconds)

    # -- effort accounting (scalability / extensibility benchmarks) ------------------------------

    def integration_effort(self) -> Dict[str, int]:
        return self.system.integration_effort()

    def statistics(self) -> Dict[str, Dict[str, int]]:
        stats = {
            "mediator": self.mediator.statistics.snapshot(),
            "engine": self.engine.statistics.snapshot(),
            "pipeline": self.pipeline.snapshot(),
            "source_health": self.engine.source_health(),
            "observability": self.observability.snapshot(),
        }
        if self.request_cache is not None:
            stats["request_cache"] = self.request_cache.snapshot()
        if self._scanner is not None:
            stats["violation_scanner"] = self._scanner.snapshot()
        return stats
