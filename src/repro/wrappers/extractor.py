"""Regular-expression extraction of records from page content."""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ExtractionError
from repro.relational.types import DataType
from repro.wrappers.spec import ExportedRelation, ExtractionRule


def extract_tuples(rule: ExtractionRule, content: str) -> List[Dict[str, str]]:
    """Apply a TUPLE rule: every non-overlapping match yields one raw record."""
    pattern = rule.compiled()
    records = []
    for match in pattern.finditer(content):
        record = {name: value for name, value in match.groupdict().items() if value is not None}
        if record:
            records.append(record)
    return records


def extract_fields(rule: ExtractionRule, content: str) -> Dict[str, str]:
    """Apply a FIELD rule: the first match contributes page-level context values."""
    match = rule.compiled().search(content)
    if match is None:
        return {}
    return {name: value for name, value in match.groupdict().items() if value is not None}


def merge_page_records(tuple_records: List[Dict[str, str]],
                       field_context: Dict[str, str]) -> List[Dict[str, str]]:
    """Combine TUPLE records with FIELD context extracted from the same page.

    * With TUPLE records, the context is merged into each (tuple values win on
      conflicts — a page-level default never overrides an explicit cell).
    * With only FIELD context, the page yields a single record.
    * With neither, the page yields nothing.
    """
    if tuple_records:
        return [{**field_context, **record} for record in tuple_records]
    if field_context:
        return [dict(field_context)]
    return []


def coerce_record(record: Dict[str, str], relation: ExportedRelation,
                  strict: bool = False) -> Optional[List[Any]]:
    """Convert a raw (string-valued) record into a typed row of the exported view.

    Missing attributes become NULL.  Ill-typed values either raise
    (``strict=True``) or cause the record to be dropped (``strict=False``,
    the forgiving default appropriate for scraping semi-structured pages).
    """
    row: List[Any] = []
    for name, data_type in relation.attributes:
        raw = record.get(name)
        if raw is None:
            row.append(None)
            continue
        cleaned = clean_text(raw)
        try:
            row.append(_convert(cleaned, data_type))
        except (ValueError, TypeError) as exc:
            if strict:
                raise ExtractionError(
                    f"cannot convert {raw!r} to {data_type.value} for attribute {name!r}"
                ) from exc
            return None
    return row


def clean_text(text: str) -> str:
    """Strip tags and collapse whitespace in an extracted snippet."""
    without_tags = re.sub(r"<[^>]+>", " ", text)
    return re.sub(r"\s+", " ", without_tags).strip()


def _convert(text: str, data_type: DataType) -> Any:
    if text == "":
        return None
    if data_type is DataType.INTEGER:
        return int(float(text.replace(",", "")))
    if data_type is DataType.FLOAT:
        return float(text.replace(",", ""))
    if data_type is DataType.BOOLEAN:
        lowered = text.lower()
        if lowered in ("true", "yes", "1"):
            return True
        if lowered in ("false", "no", "0"):
            return False
        raise ValueError(f"not a boolean: {text!r}")
    return text
