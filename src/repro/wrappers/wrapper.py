"""Wrappers: the uniform SQL/relational interface over every source.

"Wrappers provide a uniform protocol for accessing corresponding sources and
constitute the interface between the mediator processes and the sources.  The
wrappers are not merely communication gateways [...], but they also provide a
SQL interface to any source including the Web-sites and deliver answers to the
queries in a relational table format."

Two wrapper families are implemented:

* :class:`RelationalWrapper` — fronts a SQL-capable source
  (:class:`~repro.sources.memory.MemorySQLSource`); pushed-down SQL is
  forwarded verbatim when the source's capabilities allow it, otherwise the
  wrapper falls back to fetching base relations and evaluating the query
  locally (so the engine never has to special-case a weak source).
* :class:`WebWrapper` — compiled from a declarative :class:`WrapperSpec`;
  answering a query triggers (or reuses a cache of) a crawl of the web site
  through the transition network, materializes the exported relation, and
  evaluates the SQL against it locally.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.errors import CapabilityError, WrapperError
from repro.relational.query import QueryProcessor
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.base import Source, SourceCapabilities
from repro.sources.memory import MemorySQLSource
from repro.sources.web import SimulatedWebSite
from repro.sql.ast import Select, Statement, TableRef, Union, walk
from repro.sql.parser import parse
from repro.wrappers.extractor import coerce_record
from repro.wrappers.network import CrawlReport, TransitionNetworkExecutor
from repro.wrappers.spec import WrapperSpec


class Wrapper:
    """Base class: a named SQL endpoint exporting one or more relations."""

    def __init__(self, name: str, capabilities: SourceCapabilities):
        self.name = name
        self.capabilities = capabilities
        self._invalidation_listeners: List = []

    # -- invalidation ------------------------------------------------------------

    def add_invalidation_listener(self, listener) -> None:
        """Register ``listener(wrapper_name)`` to fire when this wrapper's
        data is known to have changed.

        Engines subscribe their source-result caches here, so a wrapper-level
        invalidation (e.g. :meth:`WebWrapper.invalidate`) also drops any
        engine-level memoized results for this wrapper.  A listener that
        returns ``False`` declares itself dead and is removed.
        """
        self._invalidation_listeners.append(listener)

    def notify_invalidated(self) -> None:
        """Tell every registered listener this wrapper's data changed."""
        self._invalidation_listeners = [
            listener for listener in list(self._invalidation_listeners)
            if listener(self.name) is not False
        ]

    # -- metadata ---------------------------------------------------------------

    def relation_names(self) -> List[str]:
        raise NotImplementedError

    def schema_of(self, relation: str) -> Schema:
        raise NotImplementedError

    @property
    def source_statistics(self):
        """The backing source's :class:`~repro.sources.base.SourceStatistics`.

        ``None`` when the wrapper has no single backing source; the engine's
        resilience layer uses this to book failures and retries against the
        source that caused them.
        """
        return None

    # -- data access ---------------------------------------------------------------

    def fetch(self, relation: str) -> Relation:
        """Return the full extent of one exported relation."""
        raise NotImplementedError

    def query(self, statement) -> Relation:
        """Execute a SELECT/UNION mentioning only this wrapper's relations."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------------

    def _parse(self, statement) -> Statement:
        if isinstance(statement, str):
            return parse(statement)
        return statement

    def _tables_in(self, statement: Statement) -> List[str]:
        names: List[str] = []
        selects = statement.selects if isinstance(statement, Union) else (statement,)
        for select in selects:
            for table in select.tables:
                for node in walk(table):
                    if isinstance(node, TableRef):
                        names.append(node.name)
        return names

    def _check_tables(self, statement: Statement) -> None:
        known = {name.lower() for name in self.relation_names()}
        for table in self._tables_in(statement):
            if table.lower() not in known:
                raise WrapperError(
                    f"wrapper {self.name!r} does not export relation {table!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class RelationalWrapper(Wrapper):
    """Wrapper over a SQL-capable source with capability-aware push-down."""

    def __init__(self, source: MemorySQLSource, name: Optional[str] = None):
        super().__init__(name or source.name, source.capabilities)
        self.source = source

    # -- metadata ---------------------------------------------------------------

    def relation_names(self) -> List[str]:
        return self.source.relation_names()

    def schema_of(self, relation: str) -> Schema:
        return self.source.schema_of(relation)

    @property
    def source_statistics(self):
        return self.source.statistics

    # -- data access ---------------------------------------------------------------

    def fetch(self, relation: str) -> Relation:
        return self.source.fetch(relation)

    def query(self, statement) -> Relation:
        statement = self._parse(statement)
        self._check_tables(statement)
        if self._pushable(statement):
            return self.source.execute_sql(statement)
        # Fallback: fetch the base relations and evaluate locally.
        tables = {name: self.source.fetch(name) for name in set(self._tables_in(statement))}
        processor = QueryProcessor.over_tables(tables)
        return processor.execute(statement)

    # -- capability analysis ------------------------------------------------------

    def _pushable(self, statement: Statement) -> bool:
        capabilities = self.capabilities
        selects = statement.selects if isinstance(statement, Union) else (statement,)
        if isinstance(statement, Union) and not capabilities.union:
            return False
        for select in selects:
            if len(set(self._tables_in(select))) > 1 and not capabilities.join:
                return False
            if select.where is not None and not capabilities.selection:
                return False
            if (select.group_by or select.having is not None) and not capabilities.aggregation:
                return False
            if select.order_by and not capabilities.order_by:
                return False
        return True


class WebWrapper(Wrapper):
    """Wrapper over a simulated web site, compiled from a declarative spec."""

    def __init__(self, site: SimulatedWebSite, spec: WrapperSpec, name: Optional[str] = None,
                 cache_results: bool = True, strict: bool = False):
        super().__init__(name or site.name, site.capabilities)
        self.site = site
        self.spec = spec
        self.cache_results = cache_results
        self.strict = strict
        self._cache: Optional[Relation] = None
        #: The engine dispatches source requests from a thread pool; two
        #: distinct queries against this wrapper must not crawl concurrently.
        self._materialize_lock = threading.Lock()
        self.last_report: Optional[CrawlReport] = None

    # -- metadata ---------------------------------------------------------------

    def relation_names(self) -> List[str]:
        return [self.spec.relation.name]

    def schema_of(self, relation: str) -> Schema:
        if relation.lower() != self.spec.relation.name.lower():
            raise WrapperError(f"wrapper {self.name!r} does not export relation {relation!r}")
        return self.spec.relation.schema

    @property
    def source_statistics(self):
        return self.site.statistics

    # -- materialization ----------------------------------------------------------

    def materialize(self, force: bool = False) -> Relation:
        """Crawl the site (or reuse the cache) and build the exported relation.

        A failed crawl (site outage, page-budget exhaustion, strict
        extraction errors) propagates with the serialization lock released —
        the retrying scheduler (or a concurrent query) can crawl again
        immediately — and with :attr:`last_report` still describing the last
        *successful* crawl; a half-crawled report is never published.
        Failure/retry accounting lands in :attr:`source_statistics` via the
        engine's resilience layer.
        """
        if self._cache is not None and self.cache_results and not force:
            return self._cache
        with self._materialize_lock:
            # Re-check under the lock: a concurrent caller may have finished
            # the crawl while this one waited.
            if self._cache is not None and self.cache_results and not force:
                return self._cache
            executor = TransitionNetworkExecutor(self.spec, self.site)
            raw_records, report = executor.crawl()
            relation = Relation(self.spec.relation.schema,
                                name=self.spec.relation.name)
            for record in raw_records:
                row = coerce_record(record, self.spec.relation, strict=self.strict)
                if row is not None:
                    relation.append(row)
            # Publish results only after the whole extraction succeeded.
            self.last_report = report
            if self.cache_results:
                self._cache = relation
            return relation

    def invalidate(self) -> None:
        """Drop the cached crawl (e.g. when the site is known to have changed).

        Also notifies subscribed engines so their source-result caches drop
        this wrapper's memoized answers — the next query re-crawls.
        """
        self._cache = None
        self.notify_invalidated()

    # -- data access ---------------------------------------------------------------

    def fetch(self, relation: str) -> Relation:
        if relation.lower() != self.spec.relation.name.lower():
            raise WrapperError(f"wrapper {self.name!r} does not export relation {relation!r}")
        return self.materialize()

    def query(self, statement) -> Relation:
        statement = self._parse(statement)
        self._check_tables(statement)
        table = self.materialize()
        processor = QueryProcessor.over_tables({self.spec.relation.name: table})
        return processor.execute(statement)


class WrapperRegistry:
    """All wrappers known to a mediation server, with relation-level lookup."""

    def __init__(self, wrappers: Sequence[Wrapper] = ()):
        self._wrappers: Dict[str, Wrapper] = {}
        for wrapper in wrappers:
            self.register(wrapper)

    def register(self, wrapper: Wrapper) -> Wrapper:
        self._wrappers[wrapper.name.lower()] = wrapper
        return wrapper

    def get(self, name: str) -> Wrapper:
        try:
            return self._wrappers[name.lower()]
        except KeyError as exc:
            raise WrapperError(f"unknown wrapper {name!r}") from exc

    def has(self, name: str) -> bool:
        return name.lower() in self._wrappers

    @property
    def names(self) -> List[str]:
        return sorted(wrapper.name for wrapper in self._wrappers.values())

    def __iter__(self):
        return iter(self._wrappers.values())

    def __len__(self) -> int:
        return len(self._wrappers)

    def find_relation(self, relation: str) -> List[Wrapper]:
        """Every wrapper exporting a relation with the given name."""
        matches = []
        for wrapper in self._wrappers.values():
            if relation.lower() in (name.lower() for name in wrapper.relation_names()):
                matches.append(wrapper)
        return matches
