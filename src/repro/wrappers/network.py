"""Execution of the transition network over a (simulated) web site.

Starting from the spec's start URL/state, the executor fetches pages, applies
the extraction rules attached to the page's state, and follows the outgoing
links that match a transition's pattern, tagging the targets with the
transition's target state.  The crawl is breadth-first, visits each
(URL, state) pair at most once, and is bounded by ``spec.max_pages``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import WrapperError
from repro.sources.web import SimulatedWebSite
from repro.wrappers.extractor import extract_fields, extract_tuples, merge_page_records
from repro.wrappers.spec import WrapperSpec


@dataclass
class CrawlReport:
    """What a crawl did: visited pages, per-state counts, extracted record count."""

    pages_visited: int = 0
    records_extracted: int = 0
    pages_by_state: Dict[str, int] = field(default_factory=dict)
    visited_urls: List[str] = field(default_factory=list)


class TransitionNetworkExecutor:
    """Runs a :class:`WrapperSpec`'s transition network against one web site."""

    def __init__(self, spec: WrapperSpec, site: SimulatedWebSite):
        spec.validate()
        self.spec = spec
        self.site = site

    def crawl(self) -> Tuple[List[Dict[str, str]], CrawlReport]:
        """Crawl the site and return (raw string records, crawl report)."""
        report = CrawlReport()
        records: List[Dict[str, str]] = []
        queue: deque = deque([(self.spec.start_url, self.spec.start_state)])
        seen: Set[Tuple[str, str]] = set()

        while queue:
            if report.pages_visited >= self.spec.max_pages:
                raise WrapperError(
                    f"crawl exceeded the page budget of {self.spec.max_pages} pages"
                )
            url, state = queue.popleft()
            key = (url, state)
            if key in seen:
                continue
            seen.add(key)

            page = self.site.fetch_page(url)
            report.pages_visited += 1
            report.pages_by_state[state] = report.pages_by_state.get(state, 0) + 1
            report.visited_urls.append(url)

            # Extraction.
            page_records = self._extract(state, page.content)
            records.extend(page_records)
            report.records_extracted += len(page_records)

            # Transitions.
            links = page.find_links()
            for transition in self.spec.transitions_from(state):
                pattern = transition.compiled()
                for link in links:
                    if pattern.search(link):
                        queue.append((link, transition.target))

        return records, report

    def _extract(self, state: str, content: str) -> List[Dict[str, str]]:
        tuple_records: List[Dict[str, str]] = []
        field_context: Dict[str, str] = {}
        for rule in self.spec.rules_for(state):
            if rule.mode == "tuple":
                tuple_records.extend(extract_tuples(rule, content))
            else:
                field_context.update(extract_fields(rule, content))
        return merge_page_records(tuple_records, field_context)
