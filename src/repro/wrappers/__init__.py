"""Wrappers: uniform SQL access to relational sources and web sites.

See :mod:`repro.wrappers.spec` for the declarative wrapping language
([Qu96]), :mod:`repro.wrappers.network` for the transition-network crawler
and :mod:`repro.wrappers.wrapper` for the wrapper classes the engine calls.
"""

from repro.wrappers.spec import (
    ExportedRelation,
    ExtractionRule,
    Transition,
    WrapperSpec,
    make_table_spec,
    parse_wrapper_spec,
)
from repro.wrappers.extractor import clean_text, coerce_record, extract_fields, extract_tuples
from repro.wrappers.network import CrawlReport, TransitionNetworkExecutor
from repro.wrappers.wrapper import (
    RelationalWrapper,
    WebWrapper,
    Wrapper,
    WrapperRegistry,
)

__all__ = [
    "ExportedRelation",
    "ExtractionRule",
    "Transition",
    "WrapperSpec",
    "make_table_spec",
    "parse_wrapper_spec",
    "clean_text",
    "coerce_record",
    "extract_fields",
    "extract_tuples",
    "CrawlReport",
    "TransitionNetworkExecutor",
    "RelationalWrapper",
    "WebWrapper",
    "Wrapper",
    "WrapperRegistry",
]
