"""The declarative web-wrapping specification language ([Qu96]).

The paper describes the wrapping technology as "a high level declarative
language for the specification of what information can be extracted.  A
program in this specification language defines a transition network
corresponding to the possible transitions from one Web-page to another, and
regular expressions corresponding to what information is located on a page."

This module defines the abstract syntax of that language
(:class:`WrapperSpec` with its states, transitions and extraction rules) and
a parser for its concrete textual form.  A specification for the
exchange-rate site of Figure 2 looks like::

    EXPORT rates(fromCur string, toCur string, rate float)
    START index.html STATE index
    TRANSITION index -> quotes FOLLOW "rates/.*\\.html"
    EXTRACT quotes TUPLE "<tr><td>(?P<fromCur>[A-Z]{3})</td><td>(?P<toCur>[A-Z]{3})</td><td>(?P<rate>[0-9.]+)</td></tr>"

Meaning: start crawling at ``index.html`` (state ``index``); from pages in
state ``index`` follow every link matching ``rates/.*\\.html`` into state
``quotes``; on each ``quotes`` page, every match of the TUPLE pattern yields
one row of the exported relation ``rates``.

Two rule kinds exist:

* ``TUPLE`` — ``re.finditer`` over the page; every match's named groups form
  one record;
* ``FIELD`` — ``re.search`` over the page; the named groups become *page
  context* merged into every record extracted from the same page (and a page
  with only FIELD rules yields exactly one record) — this is how detail-page
  sites ("one company per page") are wrapped.
"""

from __future__ import annotations

import re
import shlex
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WrapperSpecError
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType


@dataclass(frozen=True)
class ExportedRelation:
    """The relational view a wrapper exports."""

    name: str
    attributes: Tuple[Tuple[str, DataType], ...]

    @property
    def schema(self) -> Schema:
        return Schema(Attribute(name=name, type=data_type) for name, data_type in self.attributes)

    @property
    def attribute_names(self) -> List[str]:
        return [name for name, _type in self.attributes]


@dataclass(frozen=True)
class Transition:
    """Follow links matching ``link_pattern`` from pages in ``source`` state."""

    source: str
    target: str
    link_pattern: str

    def compiled(self) -> "re.Pattern[str]":
        try:
            return re.compile(self.link_pattern)
        except re.error as exc:
            raise WrapperSpecError(f"bad link pattern {self.link_pattern!r}: {exc}") from exc


@dataclass(frozen=True)
class ExtractionRule:
    """A regular-expression extraction applied to pages of one state."""

    state: str
    pattern: str
    #: ``tuple`` (finditer, one record per match) or ``field`` (search, page context).
    mode: str = "tuple"

    def compiled(self) -> "re.Pattern[str]":
        try:
            return re.compile(self.pattern, re.DOTALL)
        except re.error as exc:
            raise WrapperSpecError(f"bad extraction pattern {self.pattern!r}: {exc}") from exc

    @property
    def group_names(self) -> List[str]:
        return list(self.compiled().groupindex)


@dataclass
class WrapperSpec:
    """A complete wrapper program: exported view + transition network + rules."""

    relation: ExportedRelation
    start_url: str
    start_state: str
    transitions: List[Transition] = field(default_factory=list)
    rules: List[ExtractionRule] = field(default_factory=list)
    #: Maximum number of pages a single crawl may fetch (a safety net).
    max_pages: int = 1000

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises :class:`WrapperSpecError`."""
        if not self.rules:
            raise WrapperSpecError("a wrapper spec needs at least one EXTRACT rule")
        states = {self.start_state}
        for transition in self.transitions:
            transition.compiled()
            states.add(transition.source)
            states.add(transition.target)
        known_attributes = set(self.relation.attribute_names)
        extracted: set = set()
        for rule in self.rules:
            if rule.mode not in ("tuple", "field"):
                raise WrapperSpecError(f"unknown extraction mode {rule.mode!r}")
            if rule.state not in states:
                raise WrapperSpecError(
                    f"extraction rule references unknown state {rule.state!r}"
                )
            groups = set(rule.group_names)
            unknown = groups - known_attributes
            if unknown:
                raise WrapperSpecError(
                    f"extraction rule captures unknown attributes {sorted(unknown)}"
                )
            extracted |= groups
        missing = known_attributes - extracted
        if missing:
            raise WrapperSpecError(
                f"no extraction rule captures attributes {sorted(missing)}"
            )

    # -- convenience ---------------------------------------------------------------

    def transitions_from(self, state: str) -> List[Transition]:
        return [transition for transition in self.transitions if transition.source == state]

    def rules_for(self, state: str) -> List[ExtractionRule]:
        return [rule for rule in self.rules if rule.state == state]

    @property
    def states(self) -> List[str]:
        names = {self.start_state}
        for transition in self.transitions:
            names.add(transition.source)
            names.add(transition.target)
        return sorted(names)


# ---------------------------------------------------------------------------
# Concrete syntax
# ---------------------------------------------------------------------------

_EXPORT_RE = re.compile(r"^EXPORT\s+(\w+)\s*\((.*)\)\s*$", re.IGNORECASE)
_START_RE = re.compile(r"^START\s+(\S+)\s+STATE\s+(\w+)\s*$", re.IGNORECASE)
_TRANSITION_RE = re.compile(
    r"^TRANSITION\s+(\w+)\s*->\s*(\w+)\s+FOLLOW\s+(.+)$", re.IGNORECASE
)
_EXTRACT_RE = re.compile(r"^EXTRACT\s+(\w+)\s+(TUPLE|FIELD)\s+(.+)$", re.IGNORECASE)
_MAXPAGES_RE = re.compile(r"^MAXPAGES\s+(\d+)\s*$", re.IGNORECASE)


def _unquote(text: str) -> str:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    return text


def parse_wrapper_spec(text: str) -> WrapperSpec:
    """Parse the textual wrapper-specification language into a :class:`WrapperSpec`."""
    relation: Optional[ExportedRelation] = None
    start_url: Optional[str] = None
    start_state: Optional[str] = None
    transitions: List[Transition] = []
    rules: List[ExtractionRule] = []
    max_pages = 1000

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue

        match = _EXPORT_RE.match(line)
        if match:
            relation = _parse_export(match.group(1), match.group(2), line_number)
            continue

        match = _START_RE.match(line)
        if match:
            start_url, start_state = match.group(1), match.group(2)
            continue

        match = _TRANSITION_RE.match(line)
        if match:
            transitions.append(
                Transition(match.group(1), match.group(2), _unquote(match.group(3)))
            )
            continue

        match = _EXTRACT_RE.match(line)
        if match:
            rules.append(
                ExtractionRule(match.group(1), _unquote(match.group(3)), match.group(2).lower())
            )
            continue

        match = _MAXPAGES_RE.match(line)
        if match:
            max_pages = int(match.group(1))
            continue

        raise WrapperSpecError(f"line {line_number}: cannot parse {raw_line!r}")

    if relation is None:
        raise WrapperSpecError("missing EXPORT declaration")
    if start_url is None or start_state is None:
        raise WrapperSpecError("missing START declaration")

    spec = WrapperSpec(
        relation=relation,
        start_url=start_url,
        start_state=start_state,
        transitions=transitions,
        rules=rules,
        max_pages=max_pages,
    )
    spec.validate()
    return spec


def _parse_export(name: str, attribute_text: str, line_number: int) -> ExportedRelation:
    attributes: List[Tuple[str, DataType]] = []
    for chunk in attribute_text.split(","):
        parts = chunk.split()
        if not parts:
            continue
        if len(parts) > 2:
            raise WrapperSpecError(
                f"line {line_number}: bad attribute declaration {chunk.strip()!r}"
            )
        attribute_name = parts[0].strip()
        type_name = parts[1].strip() if len(parts) == 2 else "string"
        attributes.append((attribute_name, DataType.from_name(type_name)))
    if not attributes:
        raise WrapperSpecError(f"line {line_number}: EXPORT declares no attributes")
    return ExportedRelation(name=name, attributes=tuple(attributes))


def make_table_spec(relation_name: str, attributes: Sequence[Tuple[str, str]],
                    start_url: str = "index.html",
                    link_pattern: str = r".*\.html",
                    cell_pattern: Optional[str] = None,
                    max_pages: int = 1000) -> WrapperSpec:
    """Programmatic helper building the common "index page → table pages" spec.

    ``attributes`` are (name, type) pairs in table-column order; the generated
    TUPLE pattern matches one ``<tr>`` with one ``<td>`` per attribute.
    """
    if cell_pattern is None:
        cells = "".join(
            rf"<td>(?P<{name}>[^<]*)</td>\s*" for name, _type in attributes
        )
        cell_pattern = rf"<tr>\s*{cells}</tr>"
    exported = ExportedRelation(
        name=relation_name,
        attributes=tuple((name, DataType.from_name(type_name)) for name, type_name in attributes),
    )
    spec = WrapperSpec(
        relation=exported,
        start_url=start_url,
        start_state="index",
        transitions=[Transition("index", "data", link_pattern)],
        rules=[ExtractionRule("data", cell_pattern, "tuple")],
        max_pages=max_pages,
    )
    spec.validate()
    return spec
