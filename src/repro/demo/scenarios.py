"""Pre-wired federations: the paper's example and larger demo scenarios.

Every builder returns a ready-to-query :class:`~repro.federation.Federation`
(plus scenario-specific hooks used by benchmarks), so examples, tests and
benchmarks never repeat the wiring boilerplate.

* :func:`build_paper_federation` — the two relational sources, the exchange
  web source and the contexts of Figure 2 / Section 3 (experiment E1);
* :func:`build_scalability_federation` — *n* autonomous financial sources,
  each with its own reporting convention (experiments E3/E4);
* :func:`build_financial_analysis_federation` — the profit-&-loss /
  market-intelligence scenario sketched in the conclusion (experiment E9),
  combining databases, a stock-price web site and the exchange-rate service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coin.context import (
    ConstantValue,
    Context,
    ContextRegistry,
    Guard,
    ModifierCase,
)
from repro.coin.conversion import build_financial_conversions
from repro.coin.domain import build_financial_domain_model
from repro.coin.elevation import ElevationRegistry
from repro.coin.system import CoinSystem
from repro.demo.datasets import (
    PAPER_QUERY,
    SCENARIO_CURRENCIES,
    SCENARIO_SCALE_FACTORS,
    company_names,
    financials_rows,
    paper_r1,
    paper_r2,
    stock_price_records,
)
from repro.federation import Federation
from repro.sources.exchange import DEFAULT_RATES, build_exchange_rate_site
from repro.sources.memory import MemorySQLSource
from repro.sources.web import build_detail_site
from repro.wrappers.spec import make_table_spec
from repro.wrappers.wrapper import RelationalWrapper, WebWrapper

#: Name of the exchange-rate relation as catalogued in every scenario.
EXCHANGE_RELATION = "r3"

#: The wrapper specification text for the exchange-rate web site, written in
#: the declarative wrapping language of [Qu96].
EXCHANGE_WRAPPER_SPEC = r"""
# Wrapper for the currency-exchange ancillary web source (Figure 2, "r3").
EXPORT r3(fromCur string, toCur string, rate float)
START index.html STATE index
TRANSITION index -> quotes FOLLOW "rates/.*\.html"
EXTRACT quotes TUPLE "<tr><td>(?P<fromCur>[A-Z]{3})</td><td>(?P<toCur>[A-Z]{3})</td><td>(?P<rate>[0-9.]+)</td></tr>"
"""


def build_exchange_wrapper(rates: Optional[Dict[Tuple[str, str], float]] = None,
                           relation_name: str = EXCHANGE_RELATION) -> WebWrapper:
    """The exchange-rate web site wrapped through its declarative specification."""
    from repro.wrappers.spec import parse_wrapper_spec

    site = build_exchange_rate_site(rates)
    spec_text = EXCHANGE_WRAPPER_SPEC.replace(f"EXPORT {EXCHANGE_RELATION}(",
                                              f"EXPORT {relation_name}(")
    spec = parse_wrapper_spec(spec_text)
    return WebWrapper(site, spec, name="exchange")


# ---------------------------------------------------------------------------
# E1: the paper's worked example
# ---------------------------------------------------------------------------


@dataclass
class PaperScenario:
    """The Figure-2 federation plus the artifacts the E1 benchmark checks."""

    federation: Federation
    query: str = PAPER_QUERY
    receiver_context: str = "c_receiver"
    source1: MemorySQLSource = None  # type: ignore[assignment]
    source2: MemorySQLSource = None  # type: ignore[assignment]
    exchange_wrapper: WebWrapper = None  # type: ignore[assignment]


def build_paper_coin_system() -> CoinSystem:
    """The domain model, contexts and elevation axioms of the paper example."""
    domain_model = build_financial_domain_model()

    contexts = ContextRegistry()
    # Source 1: currency as reported per row; scale factor 1000 for JPY, else 1.
    c1 = Context("c_source1", "Source 1: per-row currency, JPY figures in thousands")
    c1.declare_attribute("companyFinancials", "currency", "currency")
    c1.declare_cases("companyFinancials", "scaleFactor", [
        ModifierCase(ConstantValue(1000), (Guard("currency", "=", "JPY"),)),
        ModifierCase(ConstantValue(1), (Guard("currency", "<>", "JPY"),)),
    ])
    # Source 2: always USD, scale factor 1.
    c2 = Context("c_source2", "Source 2: USD, scale factor 1")
    c2.declare_constant("companyFinancials", "currency", "USD")
    c2.declare_constant("companyFinancials", "scaleFactor", 1)
    # The receiver wants USD at scale 1.
    receiver = Context("c_receiver", "Receiver: USD, scale factor 1")
    receiver.declare_constant("companyFinancials", "currency", "USD")
    receiver.declare_constant("companyFinancials", "scaleFactor", 1)
    # A second receiver context used by the accessibility benchmark (E5).
    receiver_jpy = Context("c_receiver_jpy", "Receiver: JPY, scale factor 1000")
    receiver_jpy.declare_constant("companyFinancials", "currency", "JPY")
    receiver_jpy.declare_constant("companyFinancials", "scaleFactor", 1000)
    for context in (c1, c2, receiver, receiver_jpy):
        contexts.register(context)

    elevations = ElevationRegistry()
    elevations.elevate("source1", "r1", "c_source1", {
        "cname": "companyName",
        "revenue": "companyFinancials",
        "currency": "currencyType",
    })
    elevations.elevate("source2", "r2", "c_source2", {
        "cname": "companyName",
        "expenses": "companyFinancials",
    })
    elevations.elevate("exchange", EXCHANGE_RELATION, "c_receiver", {
        "rate": "exchangeRate",
    })

    conversions = build_financial_conversions(domain_model, ancillary_relation=EXCHANGE_RELATION)
    system = CoinSystem(domain_model, contexts, elevations, conversions, name="paper-example")
    system.validate()
    return system


def build_paper_federation() -> PaperScenario:
    """The complete Figure-2 federation, ready to answer the Section-3 query."""
    system = build_paper_coin_system()
    federation = Federation(system, default_receiver_context="c_receiver", name="paper-example")

    source1 = MemorySQLSource("source1", description="on-line database holding r1")
    source1.add_relation(paper_r1())
    source2 = MemorySQLSource("source2", description="on-line database holding r2")
    source2.add_relation(paper_r2())
    exchange_wrapper = build_exchange_wrapper()

    federation.register_wrapper(RelationalWrapper(source1))
    federation.register_wrapper(RelationalWrapper(source2))
    federation.register_wrapper(exchange_wrapper, estimate_rows=False)

    return PaperScenario(
        federation=federation,
        source1=source1,
        source2=source2,
        exchange_wrapper=exchange_wrapper,
    )


# ---------------------------------------------------------------------------
# E3 / E4: many autonomous sources
# ---------------------------------------------------------------------------


@dataclass
class ScalabilityScenario:
    """A federation of ``n`` financial sources with heterogeneous conventions."""

    federation: Federation
    relations: List[str]
    conventions: Dict[str, Tuple[str, int]]
    companies: List[str]
    receiver_context: str = "c_analyst"

    def pairwise_query(self, left: str, right: str) -> str:
        """The cross-source comparison query used by the benchmarks."""
        return (
            f"SELECT {left}.cname, {left}.revenue FROM {left}, {right} "
            f"WHERE {left}.cname = {right}.cname AND {left}.revenue > {right}.expenses"
        )


def build_scalability_federation(source_count: int, companies_per_source: int = 20,
                                 shared_contexts: bool = False,
                                 seed: int = 13) -> ScalabilityScenario:
    """Build a federation of ``source_count`` autonomous financial sources.

    Each source reports the same companies under its own convention (currency
    and scale factor cycled from the scenario lists).  With
    ``shared_contexts=True`` sources with identical conventions share a single
    context — the "context granularity" ablation of DESIGN.md.
    """
    domain_model = build_financial_domain_model()
    contexts = ContextRegistry()
    elevations = ElevationRegistry()
    conversions = build_financial_conversions(domain_model, ancillary_relation=EXCHANGE_RELATION)

    receiver = Context("c_analyst", "analyst workspace: USD at scale 1")
    receiver.declare_constant("companyFinancials", "currency", "USD")
    receiver.declare_constant("companyFinancials", "scaleFactor", 1)
    contexts.register(receiver)

    companies = company_names(companies_per_source, seed=seed)
    system = CoinSystem(domain_model, contexts, elevations, conversions, name="scalability")
    federation = Federation(system, default_receiver_context="c_analyst", name="scalability")

    relations: List[str] = []
    conventions: Dict[str, Tuple[str, int]] = {}
    context_by_convention: Dict[Tuple[str, int], str] = {}

    for index in range(source_count):
        currency = SCENARIO_CURRENCIES[index % len(SCENARIO_CURRENCIES)]
        scale = SCENARIO_SCALE_FACTORS[index % len(SCENARIO_SCALE_FACTORS)]
        relation = f"fin{index + 1}"
        source_name = f"finsource{index + 1}"
        convention = (currency, scale)

        if shared_contexts and convention in context_by_convention:
            context_name = context_by_convention[convention]
        else:
            context_name = (
                f"c_{currency.lower()}_{scale}" if shared_contexts else f"c_{source_name}"
            )
            if not contexts.has(context_name):
                context = Context(context_name, f"{currency} at scale {scale}")
                context.declare_constant("companyFinancials", "currency", currency)
                context.declare_constant("companyFinancials", "scaleFactor", scale)
                contexts.register(context)
            context_by_convention[convention] = context_name

        rows = financials_rows(companies, currency, scale, seed=seed + index * 101 + 1)
        source = MemorySQLSource(source_name, description=f"{currency}/{scale} financials")
        source.database.register(
            _financials_relation(relation, rows), relation
        )
        federation.register_wrapper(RelationalWrapper(source))
        elevations.elevate(source_name, relation, context_name, {
            "cname": "companyName",
            "revenue": "companyFinancials",
            "expenses": "companyFinancials",
            "currency": "currencyType",
        })
        relations.append(relation)
        conventions[relation] = convention

    federation.register_wrapper(build_exchange_wrapper(), estimate_rows=False)
    elevations.elevate("exchange", EXCHANGE_RELATION, "c_analyst", {"rate": "exchangeRate"})
    system.validate()

    return ScalabilityScenario(
        federation=federation,
        relations=relations,
        conventions=conventions,
        companies=companies,
    )


def _financials_relation(name: str, rows: Sequence[Sequence]) -> "object":
    from repro.relational.relation import relation_from_rows

    return relation_from_rows(
        name,
        ["cname:string", "revenue:float", "expenses:float", "currency:string"],
        rows,
        qualifier=None,
    )


# ---------------------------------------------------------------------------
# E9: financial analysis decision support
# ---------------------------------------------------------------------------


@dataclass
class FinancialAnalysisScenario:
    """Profit & loss analysis over databases, a price web site and exchange rates."""

    federation: Federation
    companies: List[str]
    receiver_contexts: Tuple[str, ...] = ("c_us_analyst", "c_eu_analyst")

    def profit_and_loss_query(self) -> str:
        return (
            "SELECT us.cname, us.revenue - asia.expenses AS operating_margin "
            "FROM usfin us, asiafin asia "
            "WHERE us.cname = asia.cname AND us.revenue - asia.expenses > 0"
        )

    def market_intelligence_query(self) -> str:
        return (
            "SELECT us.cname, us.revenue, prices.price "
            "FROM usfin us, prices "
            "WHERE us.cname = prices.cname AND prices.price > 100"
        )


def build_financial_analysis_federation(company_count: int = 12,
                                        seed: int = 29) -> FinancialAnalysisScenario:
    """The deployment scenario of the paper's conclusion, in miniature.

    Sources: a US financial database (USD, scale 1), an Asian subsidiary
    database (JPY, thousands), a stock-price web site (USD) wrapped from
    per-company detail pages, and the exchange-rate service.  Receivers: a US
    analyst (USD) and a European analyst (EUR, thousands).
    """
    domain_model = build_financial_domain_model()
    contexts = ContextRegistry()
    elevations = ElevationRegistry()
    conversions = build_financial_conversions(domain_model, ancillary_relation=EXCHANGE_RELATION)

    c_us = Context("c_usfin", "US reporting: USD, scale 1")
    c_us.declare_constant("companyFinancials", "currency", "USD")
    c_us.declare_constant("companyFinancials", "scaleFactor", 1)
    c_asia = Context("c_asiafin", "Asian subsidiary: JPY, thousands")
    c_asia.declare_constant("companyFinancials", "currency", "JPY")
    c_asia.declare_constant("companyFinancials", "scaleFactor", 1000)
    c_prices = Context("c_prices", "price site: USD, scale 1")
    c_prices.declare_constant("stockPrice", "currency", "USD")
    c_prices.declare_constant("stockPrice", "scaleFactor", 1)
    c_prices.declare_constant("companyFinancials", "currency", "USD")
    c_prices.declare_constant("companyFinancials", "scaleFactor", 1)

    us_analyst = Context("c_us_analyst", "US analyst: USD, scale 1")
    us_analyst.declare_constant("companyFinancials", "currency", "USD")
    us_analyst.declare_constant("companyFinancials", "scaleFactor", 1)
    us_analyst.declare_constant("stockPrice", "currency", "USD")
    us_analyst.declare_constant("stockPrice", "scaleFactor", 1)
    eu_analyst = Context("c_eu_analyst", "European analyst: EUR, thousands")
    eu_analyst.declare_constant("companyFinancials", "currency", "EUR")
    eu_analyst.declare_constant("companyFinancials", "scaleFactor", 1000)
    eu_analyst.declare_constant("stockPrice", "currency", "EUR")
    eu_analyst.declare_constant("stockPrice", "scaleFactor", 1)

    for context in (c_us, c_asia, c_prices, us_analyst, eu_analyst):
        contexts.register(context)

    companies = company_names(company_count, seed=seed)
    system = CoinSystem(domain_model, contexts, elevations, conversions, name="financial-analysis")
    federation = Federation(system, default_receiver_context="c_us_analyst",
                            name="financial-analysis")

    # US financial database.
    us_rows = financials_rows(companies, "USD", 1, seed=seed + 1)
    us_source = MemorySQLSource("usfin_db", description="US financial reporting database")
    us_source.database.register(_financials_relation("usfin", us_rows), "usfin")
    federation.register_wrapper(RelationalWrapper(us_source))
    elevations.elevate("usfin_db", "usfin", "c_usfin", {
        "cname": "companyName",
        "revenue": "companyFinancials",
        "expenses": "companyFinancials",
        "currency": "currencyType",
    })

    # Asian subsidiary database (JPY, thousands).
    asia_rows = financials_rows(companies, "JPY", 1000, seed=seed + 1)
    asia_source = MemorySQLSource("asiafin_db", description="Asian subsidiary ledger")
    asia_source.database.register(_financials_relation("asiafin", asia_rows), "asiafin")
    federation.register_wrapper(RelationalWrapper(asia_source))
    elevations.elevate("asiafin_db", "asiafin", "c_asiafin", {
        "cname": "companyName",
        "revenue": "companyFinancials",
        "expenses": "companyFinancials",
        "currency": "currencyType",
    })

    # Stock-price web site: one detail page per company, wrapped with FIELD rules.
    records = stock_price_records(companies, seed=seed + 2)
    price_site = build_detail_site("pricesite", "http://quotes-sim.example", "prices",
                                   "cname", records)
    from repro.wrappers.spec import ExportedRelation, ExtractionRule, Transition, WrapperSpec
    from repro.relational.types import DataType

    price_spec = WrapperSpec(
        relation=ExportedRelation("prices", (
            ("cname", DataType.STRING),
            ("price", DataType.FLOAT),
            ("exchange", DataType.STRING),
        )),
        start_url="index.html",
        start_state="index",
        transitions=[Transition("index", "detail", r"prices/.*\.html")],
        rules=[
            ExtractionRule("detail", r"<b>cname:</b>\s*(?P<cname>[^<]+)</p>", "field"),
            ExtractionRule("detail", r"<b>price:</b>\s*(?P<price>[0-9.]+)</p>", "field"),
            ExtractionRule("detail", r"<b>exchange:</b>\s*(?P<exchange>[A-Z]+)</p>", "field"),
        ],
    )
    federation.register_wrapper(WebWrapper(price_site, price_spec, name="pricesite"),
                                estimate_rows=False)
    elevations.elevate("pricesite", "prices", "c_prices", {
        "cname": "companyName",
        "price": "stockPrice",
    })

    # Exchange rates.
    federation.register_wrapper(build_exchange_wrapper(), estimate_rows=False)
    elevations.elevate("exchange", EXCHANGE_RELATION, "c_us_analyst", {"rate": "exchangeRate"})

    system.validate()
    return FinancialAnalysisScenario(federation=federation, companies=companies)
