"""Demo data and pre-wired federations used by examples, tests and benchmarks."""

from repro.demo.datasets import (
    PAPER_EXPECTED_ANSWER,
    PAPER_JPY_TO_USD,
    PAPER_QUERY,
    company_names,
    financials_rows,
    ground_truth_usd,
    paper_r1,
    paper_r2,
    stock_price_records,
)
from repro.demo.scenarios import (
    EXCHANGE_RELATION,
    EXCHANGE_WRAPPER_SPEC,
    FinancialAnalysisScenario,
    PaperScenario,
    ScalabilityScenario,
    build_exchange_wrapper,
    build_financial_analysis_federation,
    build_paper_coin_system,
    build_paper_federation,
    build_scalability_federation,
)

__all__ = [
    "PAPER_EXPECTED_ANSWER",
    "PAPER_JPY_TO_USD",
    "PAPER_QUERY",
    "company_names",
    "financials_rows",
    "ground_truth_usd",
    "paper_r1",
    "paper_r2",
    "stock_price_records",
    "EXCHANGE_RELATION",
    "EXCHANGE_WRAPPER_SPEC",
    "FinancialAnalysisScenario",
    "PaperScenario",
    "ScalabilityScenario",
    "build_exchange_wrapper",
    "build_financial_analysis_federation",
    "build_paper_coin_system",
    "build_paper_federation",
    "build_scalability_federation",
]
