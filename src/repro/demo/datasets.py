"""Demo datasets: the paper's Figure-2 relations plus synthetic extensions.

The Figure-2 snapshot in the scanned paper is partially garbled; the values
used here are the ones consistent with the worked example in Section 3:

* the naive query returns an **empty** answer, and
* the mediated query returns exactly ``('NTT', 9_600_000)`` because
  ``1_000_000 × 1_000 × 0.0096 = 9_600_000 > 5_000_000``.

That fixes R1 = {(IBM, 1,000,000, USD), (NTT, 1,000,000, JPY)} and
R2 = {(IBM, 1,500,000), (NTT, 5,000,000)}, with the exchange-rate source
quoting JPY→USD at 0.0096 (the page itself displays the 104.00 USD→JPY quote,
as in the figure).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.relational.relation import Relation, relation_from_rows

#: Currencies used by the synthetic multi-source scenarios.
SCENARIO_CURRENCIES = ("USD", "JPY", "EUR", "GBP", "SGD", "KRW")

#: Scale factors that sources plausibly report in.
SCENARIO_SCALE_FACTORS = (1, 1000, 1000000)


# ---------------------------------------------------------------------------
# Figure 2 of the paper
# ---------------------------------------------------------------------------


def paper_r1() -> Relation:
    """Source 1's relation: company financials in the currency of the row."""
    return relation_from_rows(
        "r1",
        ["cname:string", "revenue:float", "currency:string"],
        [
            ("IBM", 1_000_000, "USD"),
            ("NTT", 1_000_000, "JPY"),
        ],
        qualifier=None,
    )


def paper_r2() -> Relation:
    """Source 2's relation: expenses, always USD with scale factor 1."""
    return relation_from_rows(
        "r2",
        ["cname:string", "expenses:float"],
        [
            ("IBM", 1_500_000),
            ("NTT", 5_000_000),
        ],
        qualifier=None,
    )


#: The query of Section 3, exactly as the receiver poses it (modulo the OCR
#: artifact "rl" → "r1").
PAPER_QUERY = (
    "SELECT r1.cname, r1.revenue FROM r1, r2 "
    "WHERE r1.cname = r2.cname AND r1.revenue > r2.expenses"
)

#: The answer the paper reports for the mediated query.
PAPER_EXPECTED_ANSWER = [("NTT", 9_600_000.0)]

#: The JPY→USD rate implied by the example.
PAPER_JPY_TO_USD = 0.0096


# ---------------------------------------------------------------------------
# Synthetic company data for the larger scenarios
# ---------------------------------------------------------------------------

_COMPANY_PREFIXES = (
    "Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne", "Tyrell", "Cyberdyne",
    "Wonka", "Hooli", "Vandelay", "Dunder", "Prestige", "Oceanic", "Soylent", "Massive",
)
_COMPANY_SUFFIXES = ("Corp", "Inc", "Ltd", "Group", "Holdings", "Industries", "Systems", "Partners")


def company_names(count: int, seed: int = 7) -> List[str]:
    """Deterministic synthetic company names (no duplicates)."""
    rng = random.Random(seed)
    names: List[str] = []
    index = 0
    while len(names) < count:
        prefix = _COMPANY_PREFIXES[index % len(_COMPANY_PREFIXES)]
        suffix = _COMPANY_SUFFIXES[(index // len(_COMPANY_PREFIXES)) % len(_COMPANY_SUFFIXES)]
        candidate = f"{prefix} {suffix}"
        if candidate in names:
            candidate = f"{candidate} {index}"
        names.append(candidate)
        index += 1
        rng.random()
    return names


def financials_rows(companies: Sequence[str], currency: str, scale_factor: int,
                    seed: int = 11, in_source_currency: bool = True) -> List[Tuple]:
    """Rows (cname, revenue, expenses, currency) expressed in a source's convention.

    Underlying "true" figures are drawn in USD at scale 1 and then converted
    into the source's reporting convention, so different sources describe the
    same companies consistently and mediated answers can be checked against
    ground truth.
    """
    from repro.sources.exchange import DEFAULT_RATES, complete_rates, lookup_rate

    rates = complete_rates(DEFAULT_RATES)
    rng = random.Random(seed)
    rows = []
    for company in companies:
        revenue_usd = rng.randint(1, 500) * 1_000_000
        expenses_usd = int(revenue_usd * rng.uniform(0.5, 1.5))
        if in_source_currency:
            # Divide by the currency->USD quote (rather than multiplying by the
            # USD->currency quote) so that converting back with the same quote,
            # as the mediator does, recovers the USD ground truth exactly even
            # when published quotes are not perfectly reciprocal.
            rate_to_usd = lookup_rate(rates, currency, "USD")
            revenue = revenue_usd / rate_to_usd / scale_factor
            expenses = expenses_usd / rate_to_usd / scale_factor
        else:
            revenue, expenses = revenue_usd, expenses_usd
        rows.append((company, round(revenue, 4), round(expenses, 4), currency))
    return rows


def ground_truth_usd(companies: Sequence[str], seed: int = 11) -> Dict[str, Tuple[int, int]]:
    """The underlying USD figures used by :func:`financials_rows` (same seed)."""
    rng = random.Random(seed)
    truth = {}
    for company in companies:
        revenue_usd = rng.randint(1, 500) * 1_000_000
        expenses_usd = int(revenue_usd * rng.uniform(0.5, 1.5))
        truth[company] = (revenue_usd, expenses_usd)
    return truth


def stock_price_records(companies: Sequence[str], currency: str = "USD",
                        seed: int = 23) -> List[Dict[str, object]]:
    """Per-company stock price records for the simulated price web sites."""
    rng = random.Random(seed)
    records = []
    for company in companies:
        records.append({
            "cname": company,
            "price": round(rng.uniform(5, 500), 2),
            "currency": currency,
            "exchange": rng.choice(["NYSE", "NASDAQ", "TSE", "LSE"]),
        })
    return records
