"""Exception hierarchy for the COIN mediator reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers (the server layer in particular) can distinguish errors originating in
this library from programming errors, and can map them onto protocol-level
error responses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# SQL substrate
# ---------------------------------------------------------------------------


class SQLError(ReproError):
    """Base class of errors raised by the SQL lexer/parser/printer."""


class SQLSyntaxError(SQLError):
    """Raised when a SQL string cannot be tokenized or parsed.

    Carries the position (offset, line, column) at which the problem was
    detected so interactive front ends (QBE, ODBC driver) can report it.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1, column: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        base = super().__str__()
        if self.line >= 0:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class SQLUnsupportedError(SQLError):
    """Raised for SQL constructs outside the prototype's dialect."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class of errors raised by the relational engine."""


class SchemaError(RelationalError):
    """Schema definition or lookup problem (unknown attribute, arity mismatch...)."""


class TypeMismatchError(RelationalError):
    """A value does not conform to the declared attribute type."""


class EvaluationError(RelationalError):
    """An expression could not be evaluated over a row."""


class StorageError(RelationalError):
    """The storage manager could not satisfy a request (unknown table, ...)."""


# ---------------------------------------------------------------------------
# Datalog engine
# ---------------------------------------------------------------------------


class DatalogError(ReproError):
    """Base class of errors raised by the datalog/deductive substrate."""


class UnificationError(DatalogError):
    """Raised when terms cannot be unified and the caller required success."""


class ResolutionError(DatalogError):
    """Raised when SLD resolution is mis-configured (unknown predicate, etc.)."""


# ---------------------------------------------------------------------------
# COIN knowledge model
# ---------------------------------------------------------------------------


class CoinModelError(ReproError):
    """Base class of errors in the COIN knowledge representation."""


class DomainModelError(CoinModelError):
    """Malformed domain model (unknown semantic type, duplicate modifier...)."""


class ContextError(CoinModelError):
    """Malformed or unknown context / context theory."""


class ElevationError(CoinModelError):
    """Malformed elevation axioms (schema/type mismatch...)."""


class ConversionError(CoinModelError):
    """A conversion function is missing or failed to apply."""


# ---------------------------------------------------------------------------
# Mediation
# ---------------------------------------------------------------------------


class MediationError(ReproError):
    """Base class of errors raised by the context mediator."""


class ConflictDetectionError(MediationError):
    """The mediator could not compare contexts for a semantic type."""


class AbductionError(MediationError):
    """The abductive procedure failed (no consistent explanation, etc.)."""


# ---------------------------------------------------------------------------
# Multi-database access engine
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class of errors raised by the multi-database access engine."""


class CatalogError(EngineError):
    """Unknown source or relation in the dictionary/catalog."""


class PlanningError(EngineError):
    """The planner could not produce an executable plan."""


class ExecutionError(EngineError):
    """A plan failed at execution time."""


class DeadlineExceededError(ExecutionError):
    """The statement's deadline (``timeout_seconds``) expired.

    Raised from fetch waits, retry backoff sleeps and streaming finalization
    alike.  A deadline expiry is never downgraded to a partial answer: the
    receiver asked for a time bound, not a subset of the sources.
    """


class OverloadError(ExecutionError):
    """The serving layer shed this request instead of queueing it to death.

    Raised by the admission gateway when a request cannot be served *now*
    without harming requests already admitted: the tenant's token bucket is
    empty (``reason="quota"``), the admission queue is full
    (``"queue_full"``), the projected or actual queue wait would eat the
    request's own deadline (``"deadline"``), the server is draining for
    shutdown (``"draining"``), or the bounded streaming-permit pool is
    exhausted (``"streams"``).

    Shedding is always *retriable*: nothing about the statement is wrong, the
    server just has no capacity for it at this instant — ``transient`` is
    True (so client-side retry machinery classifies it correctly) and
    ``retry_after_seconds``, when known, hints how long to back off (it maps
    to the HTTP ``Retry-After`` header on the tunnel).
    """

    transient = True
    retriable = True

    def __init__(self, message: str, reason: str = "overload",
                 retry_after_seconds=None):
        super().__init__(message)
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds


# ---------------------------------------------------------------------------
# Consistency subsystem
# ---------------------------------------------------------------------------


class ConsistencyError(ReproError):
    """Base class of errors raised by the consistency subsystem."""


class ConstraintError(ConsistencyError):
    """A malformed integrity constraint (unknown relation/column, bad key...)."""


class RepairEnumerationError(ConsistencyError):
    """Consistent query answering gave up: the conflict clusters admit more
    repairs than the configured enumeration bound."""


# ---------------------------------------------------------------------------
# Sources and wrappers
# ---------------------------------------------------------------------------


class SourceError(ReproError):
    """Base class of errors raised by sources."""


class SourceUnavailableError(SourceError):
    """The source is (simulated as) unreachable."""


class CapabilityError(SourceError):
    """A query was sent to a source that cannot evaluate it."""


class WrapperError(ReproError):
    """Base class of errors raised by wrappers."""


class WrapperSpecError(WrapperError):
    """The declarative wrapper specification is malformed."""


class ExtractionError(WrapperError):
    """Regular-expression extraction failed on a page."""


class CircuitOpenError(SourceError):
    """A request was rejected fast because the wrapper's circuit is open.

    After ``failure_threshold`` consecutive failures the engine stops issuing
    round trips to a wrapper for a cooldown period; statements hitting the
    open circuit fail (or degrade, under ``on_source_error="partial"``)
    without burning a round trip or a retry budget.
    """


class RequestFailedError(ExecutionError, SourceError):
    """One source request failed for good, with full request context.

    The scheduler raises this — naming the wrapper, the relation and the
    pushed SQL / FETCH text — after retries were exhausted or the error was
    classified permanent.  It subclasses both :class:`ExecutionError` (a plan
    failed at execution time) and :class:`SourceError` (the proximate cause
    lives at the source), so callers catching either keep working; the
    original source/wrapper error is chained as ``__cause__``.
    """


# ---------------------------------------------------------------------------
# Server / client layer
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class of errors raised by the mediation server."""


class ProtocolError(ServerError):
    """A malformed request or response message."""


class ClientError(ReproError):
    """Base class of errors raised by client-side drivers (ODBC, QBE)."""
