"""The context mediator.

"The mediation engine intercepts a query to the multi-database engine and
rewrites it according to the context knowledge it has about the receiver and
the sources involved."

:class:`ContextMediator` is the façade used by the server layer: it accepts a
receiver's SQL (text or AST) plus the receiver's context name, performs
conflict detection, abductive branch enumeration and query construction, and
returns a :class:`~repro.mediation.rewriter.MediationResult`.  It also keeps
aggregate statistics (queries mediated, branches produced, conflicts detected)
that the benchmarks read.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union as TUnion

from repro.errors import MediationError, SQLUnsupportedError
from repro.coin.system import CoinSystem
from repro.mediation.rewriter import MediationResult, QueryRewriter
from repro.sql.ast import Select, Statement, Union
from repro.sql.parser import parse


@dataclass
class MediatorStatistics:
    """Aggregate counters over the life of a mediator instance.

    Increments go through :meth:`record`, which holds a lock: concurrent
    server sessions mediate on the same instance, and unguarded ``+=`` on
    these façade counters loses updates.
    """

    queries_mediated: int = 0
    branches_produced: int = 0
    conflicts_detected: int = 0
    queries_unchanged: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def record(self, result: MediationResult) -> None:
        """Fold one rewriting's facts into the aggregate counters."""
        with self._lock:
            self.queries_mediated += 1
            self.branches_produced += result.branch_count
            self.conflicts_detected += result.conflict_count
            if not result.is_rewritten:
                self.queries_unchanged += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "queries_mediated": self.queries_mediated,
                "branches_produced": self.branches_produced,
                "conflicts_detected": self.conflicts_detected,
                "queries_unchanged": self.queries_unchanged,
            }


class ContextMediator:
    """Rewrites receiver queries into mediated queries for one federation."""

    def __init__(self, system: CoinSystem, default_receiver_context: Optional[str] = None,
                 max_branches: int = 256):
        self.system = system
        self.default_receiver_context = default_receiver_context
        self.rewriter = QueryRewriter(system, max_branches=max_branches)
        self.statistics = MediatorStatistics()

    # -- public API -------------------------------------------------------------

    def mediate(self, query: TUnion[str, Select], receiver_context: Optional[str] = None) -> MediationResult:
        """Mediate one SELECT query posed in the receiver's context.

        ``query`` may be SQL text or an already-parsed :class:`Select`.
        UNION queries are rejected: receivers pose naive single-block queries;
        unions are what mediation *produces*.
        """
        context_name = self.resolve_context(receiver_context)
        select = self._as_select(query)
        result = self.rewriter.rewrite(select, context_name)
        self.statistics.record(result)
        return result

    def resolve_context(self, receiver_context: Optional[str] = None) -> str:
        """The effective receiver context (explicit or the configured default)."""
        context_name = receiver_context or self.default_receiver_context
        if context_name is None:
            raise MediationError("no receiver context given and no default configured")
        return context_name

    def mediate_to_sql(self, query: TUnion[str, Select],
                       receiver_context: Optional[str] = None) -> str:
        """Convenience wrapper returning only the mediated SQL text."""
        return self.mediate(query, receiver_context).sql

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _as_select(query: TUnion[str, Select, Statement]) -> Select:
        if isinstance(query, str):
            parsed = parse(query)
        else:
            parsed = query
        if isinstance(parsed, Union):
            raise MediationError(
                "receiver queries must be single SELECT statements; "
                "UNION queries are produced, not consumed, by mediation"
            )
        if not isinstance(parsed, Select):
            raise SQLUnsupportedError(
                f"cannot mediate statement of type {type(parsed).__name__}"
            )
        return parsed
