"""Transformation of answers into a receiver's context.

The mediated query already folds conversions into its expressions, so results
arrive in the receiver's context.  Two further needs remain, both covered by
this module:

* a receiver (or an application caching results) may want the same answer
  re-expressed in *another* receiver context without re-running the query —
  e.g. an analyst switching her workspace from USD to EUR;
* the demo front ends annotate result columns with the modifier values of the
  receiver's context ("revenue [USD, scale 1]").

Value-mode conversion functions (:meth:`ConversionFunction.convert_value`) do
the work; exchange rates come from a :class:`ConversionEnvironment`, which the
server layer wires to the same ancillary wrapper the mediated queries join
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ContextError, MediationError
from repro.coin.conversion import ConversionEnvironment
from repro.coin.system import CoinSystem
from repro.relational.relation import Relation


@dataclass
class ColumnAnnotation:
    """Receiver-context metadata for one result column."""

    name: str
    semantic_type: Optional[str]
    modifier_values: Dict[str, Any]

    def label(self) -> str:
        if not self.modifier_values:
            return self.name
        details = ", ".join(f"{modifier}={value}" for modifier, value in sorted(self.modifier_values.items()))
        return f"{self.name} [{details}]"


class AnswerTransformer:
    """Converts result relations between receiver contexts."""

    def __init__(self, system: CoinSystem, environment: Optional[ConversionEnvironment] = None):
        self.system = system
        self.environment = environment or ConversionEnvironment()

    # -- annotations -------------------------------------------------------------

    def annotate(self, relation: Relation, column_semantics: Sequence[Optional[str]],
                 receiver_context: str) -> List[ColumnAnnotation]:
        """Describe every column's semantic type and receiver-context modifiers."""
        annotations = []
        for attribute, semantic_type in zip(relation.schema, column_semantics):
            modifier_values: Dict[str, Any] = {}
            if semantic_type is not None:
                for modifier in self.system.modifiers_of_type(semantic_type):
                    modifier_values[modifier] = self.system.receiver_value(
                        receiver_context, semantic_type, modifier
                    )
            annotations.append(ColumnAnnotation(
                name=attribute.name,
                semantic_type=semantic_type,
                modifier_values=modifier_values,
            ))
        return annotations

    # -- conversion ----------------------------------------------------------------

    def transform(self, relation: Relation, column_semantics: Sequence[Optional[str]],
                  from_context: str, to_context: str) -> Relation:
        """Convert every semantic column of ``relation`` between two receiver contexts.

        Both contexts must assign *static* modifier values to the semantic
        types involved (receiver contexts always do); non-semantic columns are
        passed through unchanged.
        """
        if len(column_semantics) != len(relation.schema):
            raise MediationError(
                "column_semantics must have one entry per result column"
            )
        if from_context == to_context:
            return relation

        converters: List[Optional[Callable[[Any], Any]]] = []
        for semantic_type in column_semantics:
            converters.append(self._column_converter(semantic_type, from_context, to_context))

        result = Relation(relation.schema, name=relation.name)
        for row in relation.rows:
            converted = [
                value if converter is None else converter(value)
                for value, converter in zip(row, converters)
            ]
            result.append(converted, validate=False)
        return result

    def _column_converter(self, semantic_type: Optional[str], from_context: str,
                          to_context: str) -> Optional[Callable[[Any], Any]]:
        if semantic_type is None:
            return None
        modifiers = self.system.modifiers_of_type(semantic_type)
        if not modifiers:
            return None

        steps = []
        for modifier in modifiers:
            from_value = self.system.receiver_value(from_context, semantic_type, modifier)
            to_value = self.system.receiver_value(to_context, semantic_type, modifier)
            if from_value == to_value:
                continue
            function = self.system.conversions.lookup(semantic_type, modifier)
            steps.append((function, from_value, to_value))
        if not steps:
            return None

        def convert(value: Any) -> Any:
            for function, from_value, to_value in steps:
                value = function.convert_value(value, from_value, to_value, self.environment)
            return value

        return convert


def environment_from_rates(rates: Dict) -> ConversionEnvironment:
    """Build a conversion environment from a ``(from, to) -> rate`` mapping."""
    from repro.sources.exchange import complete_rates, lookup_rate

    table = complete_rates(rates)

    def rate_lookup(from_currency: str, to_currency: str) -> float:
        return lookup_rate(table, from_currency, to_currency)

    return ConversionEnvironment(rate_lookup=rate_lookup)


def environment_from_relation(rates_relation: Relation, from_column: str = "fromCur",
                              to_column: str = "toCur",
                              rate_column: str = "rate") -> ConversionEnvironment:
    """Build a conversion environment backed by a rates relation (ancillary wrapper output)."""
    table: Dict = {}
    from_position = rates_relation.schema.index_of(from_column)
    to_position = rates_relation.schema.index_of(to_column)
    rate_position = rates_relation.schema.index_of(rate_column)
    for row in rates_relation.rows:
        table[(row[from_position], row[to_position])] = row[rate_position]
    return environment_from_rates(table)
