"""The context mediation engine: conflict detection, abduction, query rewriting.

The central entry point is :class:`~repro.mediation.mediator.ContextMediator`,
which rewrites a receiver's naive SQL query into the mediated query (a union
of sub-queries, one per consistent combination of context assumptions) using
the knowledge held in a :class:`~repro.coin.system.CoinSystem`.
"""

from repro.mediation.constraints import ConstraintStore
from repro.mediation.conflicts import (
    ConflictAnalysis,
    ModifierResolution,
    SemanticValueRef,
    analyze_modifier,
    analyze_query,
    analyze_value,
    binding_map,
    find_semantic_values,
)
from repro.mediation.abduction import (
    MediationBranch,
    enumerate_branches,
    enumerate_branches_naive,
    order_branches,
)
from repro.mediation.rewriter import BranchQuery, MediationResult, QueryRewriter
from repro.mediation.explain import conflict_summary, explain_mediation
from repro.mediation.answers import (
    AnswerTransformer,
    ColumnAnnotation,
    environment_from_rates,
    environment_from_relation,
)
from repro.mediation.mediator import ContextMediator, MediatorStatistics

__all__ = [
    "ConstraintStore",
    "ConflictAnalysis",
    "ModifierResolution",
    "SemanticValueRef",
    "analyze_modifier",
    "analyze_query",
    "analyze_value",
    "binding_map",
    "find_semantic_values",
    "MediationBranch",
    "enumerate_branches",
    "enumerate_branches_naive",
    "order_branches",
    "BranchQuery",
    "MediationResult",
    "QueryRewriter",
    "conflict_summary",
    "explain_mediation",
    "AnswerTransformer",
    "ColumnAnnotation",
    "environment_from_rates",
    "environment_from_relation",
    "ContextMediator",
    "MediatorStatistics",
]
