"""Detection of potential conflicts between source and receiver contexts.

Mediation starts from a receiver query written "under the assumption there are
no conflicts between sources whatsoever".  This module performs the first half
of the mediation procedure:

1. find the *semantic values* in the query — column references whose columns
   elevate to semantic types that carry modifiers;
2. for each such value and each modifier of its type, compare what the
   source's context theory says with what the receiver's context requires and
   produce the possible *resolutions*: combinations of assumptions (guards
   over source columns) under which the modifier value is known, together with
   the conversion (if any) needed under those assumptions.

The cross product of resolutions across all (value, modifier) pairs — filtered
for consistency by the abductive enumeration in
:mod:`repro.mediation.abduction` — gives the branches of the mediated query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConflictDetectionError, MediationError
from repro.coin.context import AttributeValue, ConstantValue, Guard, ModifierCase
from repro.coin.conversion import Operand
from repro.coin.system import CoinSystem
from repro.sql.ast import ColumnRef, Node, Select, Star, TableRef, walk
from repro.sql.parser import DerivedTable


@dataclass(frozen=True)
class SemanticValueRef:
    """A column reference in the query that denotes a semantic (rich-typed) value."""

    binding: str
    relation: str
    column: str
    semantic_type: str
    source_context: str

    @property
    def key(self) -> Tuple[str, str]:
        """Identity of the value within the query: (binding, column), lower-cased."""
        return (self.binding.lower(), self.column.lower())

    @property
    def qualified(self) -> str:
        return f"{self.binding}.{self.column}"


@dataclass(frozen=True)
class ModifierResolution:
    """One way of fixing one modifier of one semantic value.

    ``guards`` are assumptions over columns of the value's relation (qualified
    with the query binding, e.g. ``r1.currency``); under those assumptions the
    source-side modifier value is ``source`` and the receiver requires
    ``target``.  ``needs_conversion`` is False when the two are known equal.
    """

    value: SemanticValueRef
    modifier: str
    guards: Tuple[Guard, ...]
    source: Operand
    target: Operand
    needs_conversion: bool

    def describe(self) -> str:
        conversion = (
            f"convert {self.source.describe()} -> {self.target.describe()}"
            if self.needs_conversion
            else "no conversion"
        )
        if self.guards:
            assumptions = " and ".join(guard.describe() for guard in self.guards)
            return f"{self.value.qualified}[{self.modifier}]: {conversion} assuming {assumptions}"
        return f"{self.value.qualified}[{self.modifier}]: {conversion}"


@dataclass
class ConflictAnalysis:
    """All resolutions of one (semantic value, modifier) pair."""

    value: SemanticValueRef
    modifier: str
    receiver_value: object
    resolutions: List[ModifierResolution]

    @property
    def has_potential_conflict(self) -> bool:
        return any(resolution.needs_conversion for resolution in self.resolutions)

    @property
    def is_trivial(self) -> bool:
        """True when there is a single, guard-free, conversion-free resolution."""
        return (
            len(self.resolutions) == 1
            and not self.resolutions[0].guards
            and not self.resolutions[0].needs_conversion
        )


# ---------------------------------------------------------------------------
# Step 1: locate semantic values in the query
# ---------------------------------------------------------------------------


def binding_map(select: Select) -> Dict[str, str]:
    """Map every table binding (alias or name) in FROM to its relation name."""
    bindings: Dict[str, str] = {}
    for table in select.tables:
        for node in walk(table):
            if isinstance(node, TableRef):
                bindings[node.binding.lower()] = node.name
            elif isinstance(node, DerivedTable):
                raise MediationError(
                    "derived tables are not supported in queries submitted for mediation"
                )
    return bindings


def find_semantic_values(select: Select, system: CoinSystem) -> Dict[Tuple[str, str], SemanticValueRef]:
    """Locate every semantic value referenced anywhere in the query.

    Only columns whose semantic type carries at least one modifier are
    returned: other columns cannot exhibit context conflicts and are left
    untouched by the rewriting.
    """
    bindings = binding_map(select)
    values: Dict[Tuple[str, str], SemanticValueRef] = {}

    # '*' in the select list cannot be mediated (the mediator would not know
    # which columns need conversion); '*' inside COUNT(*) is harmless.
    for item in select.items:
        if isinstance(item.expr, Star):
            raise MediationError(
                "queries submitted for mediation must list columns explicitly (no '*')"
            )

    for node in walk(select):
        if not isinstance(node, ColumnRef):
            continue
        relation = _relation_for(node, bindings)
        if relation is None:
            continue
        semantic = system.semantic_column(relation, node.name)
        if semantic is None:
            continue
        modifiers = system.modifiers_of_type(semantic.semantic_type)
        if not modifiers:
            continue
        binding = (node.table or relation).lower()
        ref = SemanticValueRef(
            binding=node.table or relation,
            relation=relation,
            column=node.name,
            semantic_type=semantic.semantic_type,
            source_context=semantic.context,
        )
        values.setdefault((binding, node.name.lower()), ref)
    return values


def _relation_for(ref: ColumnRef, bindings: Dict[str, str]) -> Optional[str]:
    if ref.table is not None:
        return bindings.get(ref.table.lower())
    # Unqualified references are resolved only when the query has exactly one table.
    if len(bindings) == 1:
        return next(iter(bindings.values()))
    return None


# ---------------------------------------------------------------------------
# Step 2: per-modifier conflict analysis
# ---------------------------------------------------------------------------


def analyze_value(value: SemanticValueRef, system: CoinSystem,
                  receiver_context: str) -> List[ConflictAnalysis]:
    """Analyze every modifier of one semantic value."""
    analyses = []
    for modifier in system.modifiers_of_type(value.semantic_type):
        analyses.append(analyze_modifier(value, modifier, system, receiver_context))
    return analyses


def analyze_modifier(value: SemanticValueRef, modifier: str, system: CoinSystem,
                     receiver_context: str) -> ConflictAnalysis:
    """Compare source and receiver declarations of one modifier and enumerate resolutions."""
    declaration = system.declaration_for(value.source_context, value.semantic_type, modifier)
    receiver_value = system.receiver_value(receiver_context, value.semantic_type, modifier)
    target = Operand.of_constant(receiver_value)

    resolutions: List[ModifierResolution] = []
    for case in declaration.cases:
        base_guards = tuple(_qualify_guard(guard, value.binding) for guard in case.guards)

        if isinstance(case.value, ConstantValue):
            source = Operand.of_constant(case.value.value)
            needs_conversion = not _values_equal(case.value.value, receiver_value)
            resolutions.append(ModifierResolution(
                value=value,
                modifier=modifier,
                guards=base_guards,
                source=source,
                target=target,
                needs_conversion=needs_conversion,
            ))
            continue

        if isinstance(case.value, AttributeValue):
            column_ref = ColumnRef(name=case.value.column, table=value.binding)
            qualified_column = f"{value.binding}.{case.value.column}"
            # Case A: the column happens to hold the receiver's value — no conversion.
            resolutions.append(ModifierResolution(
                value=value,
                modifier=modifier,
                guards=base_guards + (Guard(qualified_column, "=", receiver_value),),
                source=Operand.of_constant(receiver_value),
                target=target,
                needs_conversion=False,
            ))
            # Case B: it holds some other value — convert from the column's value.
            resolutions.append(ModifierResolution(
                value=value,
                modifier=modifier,
                guards=base_guards + (Guard(qualified_column, "<>", receiver_value),),
                source=Operand.of_expression(column_ref),
                target=target,
                needs_conversion=True,
            ))
            continue

        raise ConflictDetectionError(
            f"unsupported modifier value specification {case.value!r}"
        )  # pragma: no cover - exhaustive over ValueSpec

    return ConflictAnalysis(
        value=value,
        modifier=modifier,
        receiver_value=receiver_value,
        resolutions=resolutions,
    )


def analyze_query(select: Select, system: CoinSystem,
                  receiver_context: str) -> List[ConflictAnalysis]:
    """Locate semantic values and analyze all their modifiers."""
    analyses: List[ConflictAnalysis] = []
    for value in find_semantic_values(select, system).values():
        analyses.extend(analyze_value(value, system, receiver_context))
    # Deterministic order: by value key then modifier name.
    analyses.sort(key=lambda analysis: (analysis.value.key, analysis.modifier))
    return analyses


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _qualify_guard(guard: Guard, binding: str) -> Guard:
    """Prefix a context guard's column with the query binding of its relation."""
    if "." in guard.column:
        return guard
    return Guard(f"{binding}.{guard.column}", guard.op, guard.value)


def _values_equal(left, right) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right
