"""Constraint store for the abductive mediation procedure.

While the abductive procedure enumerates combinations of context assumptions
(which modifier case applies to which value), the constraint store keeps the
assumptions of a candidate branch mutually consistent and minimal.  The
constraints it reasons about are the :class:`~repro.coin.context.Guard`
conditions of the modifier cases: equalities and disequalities between a
source column and a literal.

Rules implemented:

* ``col = a`` and ``col = b`` with ``a != b`` — inconsistent;
* ``col = a`` and ``col <> a`` — inconsistent;
* ``col = a`` entails ``col <> b`` for every ``b != a`` — entailed
  disequalities are dropped from the normalized form (this is why the paper's
  JPY branch carries only ``rl.currency = 'JPY'`` and not also
  ``rl.currency <> 'USD'``);
* duplicates are dropped.

Guards over *different* columns never interact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.coin.context import Guard


def _value_key(value: Any) -> Any:
    """Normalize literals so 1 and 1.0 compare equal but '1' stays distinct."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    return ("s", value)


@dataclass
class _ColumnState:
    """Constraints accumulated for one column."""

    equal: Optional[Any] = None
    equal_key: Optional[Any] = None
    not_equal: Dict[Any, Any] = field(default_factory=dict)  # key -> original value


class ConstraintStore:
    """An incrementally-built, checkable set of column guards."""

    def __init__(self, guards: Iterable[Guard] = ()):
        self._columns: Dict[str, _ColumnState] = {}
        self._consistent = True
        for guard in guards:
            self.add(guard)

    # -- construction -----------------------------------------------------------

    def copy(self) -> "ConstraintStore":
        duplicate = ConstraintStore()
        for column, state in self._columns.items():
            duplicate._columns[column] = _ColumnState(
                equal=state.equal,
                equal_key=state.equal_key,
                not_equal=dict(state.not_equal),
            )
        duplicate._consistent = self._consistent
        return duplicate

    def add(self, guard: Guard) -> bool:
        """Add a guard; returns the store's consistency afterwards."""
        if not self._consistent:
            return False
        state = self._columns.setdefault(guard.column.lower(), _ColumnState())
        key = _value_key(guard.value)

        if guard.op == "=":
            if state.equal_key is not None and state.equal_key != key:
                self._consistent = False
            elif key in state.not_equal:
                self._consistent = False
            else:
                state.equal = guard.value
                state.equal_key = key
        else:  # "<>"
            if state.equal_key is not None and state.equal_key == key:
                self._consistent = False
            elif state.equal_key is None:
                state.not_equal[key] = guard.value
            # else: entailed by the equality, nothing to record.
        return self._consistent

    def add_all(self, guards: Iterable[Guard]) -> bool:
        for guard in guards:
            if not self.add(guard):
                return False
        return True

    # -- queries -------------------------------------------------------------------

    @property
    def is_consistent(self) -> bool:
        return self._consistent

    def entails(self, guard: Guard) -> bool:
        """True when the guard is already implied by the store."""
        if not self._consistent:
            return True  # ex falso quodlibet; callers never rely on this case
        state = self._columns.get(guard.column.lower())
        if state is None:
            return False
        key = _value_key(guard.value)
        if guard.op == "=":
            return state.equal_key == key
        if state.equal_key is not None:
            return state.equal_key != key
        return key in state.not_equal

    def compatible_with(self, guards: Iterable[Guard]) -> bool:
        """True when adding all ``guards`` would keep the store consistent."""
        trial = self.copy()
        return trial.add_all(guards)

    def known_value(self, column: str) -> Optional[Any]:
        """The literal a column is constrained to equal, when there is one."""
        state = self._columns.get(column.lower())
        if state is None:
            return None
        return state.equal

    # -- normalization ----------------------------------------------------------------

    def normalized(self) -> List[Guard]:
        """A minimal, deterministic list of guards equivalent to the store."""
        guards: List[Guard] = []
        for column in sorted(self._columns):
            state = self._columns[column]
            if state.equal_key is not None:
                guards.append(Guard(column, "=", state.equal))
            else:
                for key in sorted(state.not_equal, key=repr):
                    guards.append(Guard(column, "<>", state.not_equal[key]))
        return guards

    def __len__(self) -> int:
        return len(self.normalized())

    def describe(self) -> str:
        if not self._consistent:
            return "<inconsistent>"
        guards = self.normalized()
        if not guards:
            return "<no assumptions>"
        return " and ".join(guard.describe() for guard in guards)
