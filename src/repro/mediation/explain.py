"""Human-readable explanations of a mediation (intensional answers).

The COIN papers emphasize that the framework can answer not only the receiver's
extensional question but also *why* the answer looks the way it does — which
conflicts were detected and how each branch resolves them.  This module turns a
:class:`~repro.mediation.rewriter.MediationResult` into such an explanation,
used by the QBE front end ("show mediation"), the examples and the
accessibility benchmark (E5).
"""

from __future__ import annotations

from typing import List

from repro.mediation.rewriter import MediationResult


def explain_mediation(result: MediationResult) -> str:
    """A multi-line report: detected conflicts, then one section per branch."""
    lines: List[str] = []
    lines.append("=== Context mediation report ===")
    lines.append(f"receiver context : {result.receiver_context}")
    lines.append(f"original query   : {result.original_sql}")
    lines.append("")

    conflicting = [analysis for analysis in result.analyses if analysis.has_potential_conflict]
    trivial = [analysis for analysis in result.analyses if not analysis.has_potential_conflict]

    lines.append(f"semantic values examined : {len({a.value.key for a in result.analyses})}")
    lines.append(f"potential conflicts      : {len(conflicting)}")
    if conflicting:
        for analysis in conflicting:
            source_context = analysis.value.source_context
            lines.append(
                f"  - {analysis.value.qualified} [{analysis.modifier}]: source context "
                f"{source_context!r} may differ from receiver value {analysis.receiver_value!r}"
            )
    if trivial:
        for analysis in trivial:
            lines.append(
                f"  - {analysis.value.qualified} [{analysis.modifier}]: no conflict "
                f"(source and receiver agree on {analysis.receiver_value!r})"
            )
    lines.append("")

    lines.append(f"mediated query has {result.branch_count} branch(es):")
    for index, branch in enumerate(result.branches, start=1):
        lines.append(f"--- branch {index} ---")
        if branch.guards:
            assumptions = " AND ".join(guard.describe() for guard in branch.guards)
            lines.append(f"assumptions : {assumptions}")
        else:
            lines.append("assumptions : none")
        if branch.conversions:
            for resolution in branch.conversions:
                lines.append(f"conversion  : {resolution.describe()}")
        else:
            lines.append("conversion  : none required")
        lines.append(f"sub-query   : {branch.sql}")
    lines.append("")
    lines.append(f"mediated SQL: {result.sql}")
    return "\n".join(lines)


def conflict_summary(result: MediationResult) -> List[str]:
    """One line per detected (value, modifier) conflict — used by the QBE UI."""
    summary = []
    for analysis in result.analyses:
        if analysis.has_potential_conflict:
            summary.append(
                f"{analysis.value.qualified}[{analysis.modifier}] differs from receiver "
                f"value {analysis.receiver_value!r} in context {analysis.value.source_context!r}"
            )
    return summary
