"""Abductive enumeration of the mediated query's branches.

"This rewriting, based on an abductive procedure, is accomplished by
determining what conflicts exist and how they may be resolved by comparing
relevant statements in the respective contexts."

Given the per-modifier :class:`~repro.mediation.conflicts.ConflictAnalysis`
objects, the mediator must pick *one* resolution for every (value, modifier)
pair; each globally consistent combination of picks becomes one branch (one
sub-query of the UNION).  The enumeration is carried out as abduction over the
deductive substrate:

* for every analysis ``i`` and resolution ``k`` a rule
  ``resolved(i) :- choose(i, k)`` is added to a knowledge base;
* ``choose/2`` is declared *abducible*;
* the goal ``resolved(0), resolved(1), ..., resolved(n-1)`` is solved; every
  time the engine assumes a ``choose(i, k)`` literal, the abduction filter
  replays the accumulated guards in a :class:`ConstraintStore` and vetoes the
  assumption if the branch would become inconsistent (e.g. assuming both
  ``r1.currency = 'JPY'`` and ``r1.currency = 'USD'``);
* every solution's abduced set identifies one consistent branch.

The same module provides a naive enumerator without the consistency filter,
used by the ablation benchmark to show how many spurious branches pruning
removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AbductionError
from repro.coin.context import Guard
from repro.datalog.clause import Atom, KnowledgeBase, atom, pos, rule
from repro.datalog.engine import ResolutionConfig, Resolver
from repro.datalog.terms import term_to_python, var
from repro.mediation.conflicts import ConflictAnalysis, ModifierResolution
from repro.mediation.constraints import ConstraintStore


@dataclass
class MediationBranch:
    """One consistent combination of resolutions: one UNION branch to build."""

    resolutions: Tuple[ModifierResolution, ...]
    guards: Tuple[Guard, ...]

    @property
    def conversions(self) -> List[ModifierResolution]:
        return [resolution for resolution in self.resolutions if resolution.needs_conversion]

    @property
    def assumption_count(self) -> int:
        return len(self.guards)

    def describe(self) -> str:
        guard_text = (
            " and ".join(guard.describe() for guard in self.guards)
            if self.guards
            else "no assumptions"
        )
        conversion_text = (
            "; ".join(resolution.describe() for resolution in self.conversions)
            if self.conversions
            else "no conversions"
        )
        return f"[{guard_text}] -> {conversion_text}"


def enumerate_branches(analyses: Sequence[ConflictAnalysis],
                       max_branches: int = 256) -> List[MediationBranch]:
    """Enumerate all consistent branches using the abductive engine."""
    if not analyses:
        return [MediationBranch(resolutions=(), guards=())]

    resolution_table: Dict[Tuple[int, int], ModifierResolution] = {}
    kb = KnowledgeBase(name="mediation-choices")
    for analysis_index, analysis in enumerate(analyses):
        if not analysis.resolutions:
            raise AbductionError(
                f"no resolution available for {analysis.value.qualified}"
                f"[{analysis.modifier}]"
            )
        for resolution_index, resolution in enumerate(analysis.resolutions):
            resolution_table[(analysis_index, resolution_index)] = resolution
            kb.add(rule(
                atom("resolved", analysis_index),
                [atom("choose", analysis_index, resolution_index)],
                label=f"choice:{analysis.value.qualified}.{analysis.modifier}",
            ))

    def abduction_filter(assumed: Atom, abduced: Sequence[Atom], substitution) -> bool:
        """Veto assumptions that make the accumulated guards inconsistent."""
        store = ConstraintStore()
        for prior in abduced:
            key = _choice_key(prior)
            if key is not None:
                store.add_all(resolution_table[key].guards)
        key = _choice_key(assumed)
        if key is None:
            return True
        return store.compatible_with(resolution_table[key].guards)

    config = ResolutionConfig(
        abducibles={("choose", 2)},
        abduction_filter=abduction_filter,
        max_solutions=max_branches + 1,
    )
    resolver = Resolver(kb, config)
    goals = [pos(atom("resolved", index)) for index in range(len(analyses))]

    branches: List[MediationBranch] = []
    for solution in resolver.solve(goals):
        picks: Dict[int, ModifierResolution] = {}
        for assumed in solution.abduced:
            key = _choice_key(assumed)
            if key is not None:
                picks[key[0]] = resolution_table[key]
        resolutions = tuple(picks[index] for index in sorted(picks))
        store = ConstraintStore()
        for resolution in resolutions:
            store.add_all(resolution.guards)
        if not store.is_consistent:  # pragma: no cover - filter prevents this
            continue
        branches.append(MediationBranch(
            resolutions=resolutions,
            guards=tuple(store.normalized()),
        ))

    if len(branches) > max_branches:
        raise AbductionError(
            f"mediation produced more than {max_branches} branches; "
            "the query or the context theories are likely mis-specified"
        )
    return _deduplicate(branches)


def enumerate_branches_naive(analyses: Sequence[ConflictAnalysis],
                             prune: bool = False) -> List[MediationBranch]:
    """Plain cross-product enumeration (ablation baseline).

    With ``prune=False`` every combination of resolutions becomes a branch,
    including mutually inconsistent ones whose sub-queries can never return
    rows; with ``prune=True`` the consistency check is applied after the fact.
    The difference against :func:`enumerate_branches` is measured by
    ``benchmarks/bench_ablation_pruning.py``.
    """
    if not analyses:
        return [MediationBranch(resolutions=(), guards=())]
    branches: List[MediationBranch] = []
    for combination in product(*(analysis.resolutions for analysis in analyses)):
        store = ConstraintStore()
        consistent = store.add_all(guard for resolution in combination for guard in resolution.guards)
        if prune and not consistent:
            continue
        guards = tuple(store.normalized()) if consistent else tuple(
            guard for resolution in combination for guard in resolution.guards
        )
        branches.append(MediationBranch(resolutions=tuple(combination), guards=guards))
    return _deduplicate(branches) if prune else branches


def _choice_key(assumed: Atom) -> Optional[Tuple[int, int]]:
    if assumed.predicate != "choose" or assumed.arity != 2:
        return None
    try:
        analysis_index = term_to_python(assumed.args[0])
        resolution_index = term_to_python(assumed.args[1])
    except ValueError:  # pragma: no cover - choices are always ground
        return None
    return (int(analysis_index), int(resolution_index))


def _deduplicate(branches: List[MediationBranch]) -> List[MediationBranch]:
    """Drop branches whose guard set and conversions coincide with an earlier one."""
    seen = set()
    unique: List[MediationBranch] = []
    for branch in branches:
        signature = (
            tuple((guard.column.lower(), guard.op, repr(guard.value)) for guard in branch.guards),
            tuple(
                (resolution.value.key, resolution.modifier, resolution.needs_conversion,
                 resolution.source.describe(), resolution.target.describe())
                for resolution in branch.resolutions
            ),
        )
        if signature not in seen:
            seen.add(signature)
            unique.append(branch)
    return unique


def order_branches(branches: Sequence[MediationBranch]) -> List[MediationBranch]:
    """Deterministic presentation order: fewest assumptions, then fewest conversions.

    For the paper's example this yields exactly the published order: the
    no-conflict USD branch, then the JPY branch, then the catch-all branch.
    """
    return sorted(
        branches,
        key=lambda branch: (
            len(branch.guards),
            len(branch.conversions),
            tuple(guard.describe() for guard in branch.guards),
        ),
    )
